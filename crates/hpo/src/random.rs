//! Random Search (§II-A): sample uniformly until the budget is exhausted.
//!
//! The paper uses RS as the canonical "ignores history" baseline; it is also
//! the interleave component of [`crate::smac::SmacLite`].

use crate::budget::Budget;
use crate::builder::{OptimizerBuilder, OptimizerCore};
use crate::objective::{
    eval_batch_parallel, eval_batch_serial, finish_run, trace_run_start, BatchObjective, Objective,
    OptOutcome, Optimizer, Quarantine,
};
use crate::space::{Config, SearchSpace};
use automodel_parallel::{seed_stream, Executor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random search.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    core: OptimizerCore,
}

impl OptimizerBuilder for RandomSearch {
    fn core(&self) -> &OptimizerCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut OptimizerCore {
        &mut self.core
    }
}

impl RandomSearch {
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch {
            core: OptimizerCore::new("random-search", seed),
        }
    }

    /// Parallel entry point: propose batches of configurations and score
    /// them concurrently on `executor`.
    ///
    /// Proposal `i` (globally, across batches) is sampled from its own RNG
    /// seeded with `seed_stream(self.seed, i, 0)`, so the proposal stream
    /// depends on neither the batch size nor the thread count. Under an
    /// evaluation-count budget the trial history is therefore byte-identical
    /// at any thread count; wall-clock/target budgets may stop at a
    /// scheduling-dependent point. (The stream differs from the serial
    /// [`Optimizer::optimize`] path, which draws all samples from one
    /// sequential RNG.)
    pub fn optimize_batch(
        &self,
        space: &SearchSpace,
        objective: &dyn BatchObjective,
        budget: &Budget,
        executor: &Executor,
    ) -> Option<OptOutcome> {
        let mut tracker = budget.start();
        let mut trials = Vec::new();
        let mut quarantine = Quarantine::new();
        trace_run_start(&self.core);
        let batch = (executor.threads() * 8).max(8);
        let mut proposed = 0u64;
        while !tracker.exhausted() {
            let configs: Vec<Config> = (0..batch)
                .map(|k| {
                    let mut rng =
                        StdRng::seed_from_u64(seed_stream(self.core.seed, proposed + k as u64, 0));
                    space.sample(&mut rng)
                })
                .collect();
            proposed += batch as u64;
            let scored = eval_batch_parallel(
                configs,
                objective,
                executor,
                &mut tracker,
                &mut trials,
                &mut quarantine,
                &self.core,
            );
            if scored.is_empty() {
                break;
            }
        }
        finish_run(&self.core, &tracker, trials, quarantine)
    }
}

impl Optimizer for RandomSearch {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut rng = StdRng::seed_from_u64(self.core.seed);
        let mut tracker = budget.start();
        let mut trials = Vec::new();
        let mut quarantine = Quarantine::new();
        trace_run_start(&self.core);
        while !tracker.exhausted() {
            let config = space.sample(&mut rng);
            eval_batch_serial(
                vec![config],
                objective,
                &mut tracker,
                &mut trials,
                &mut quarantine,
                &self.core,
            );
        }
        finish_run(&self.core, &tracker, trials, quarantine)
    }

    fn name(&self) -> &'static str {
        "random-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::space::{Config, Domain};
    use crate::testfns::sphere;
    use automodel_parallel::Executor;

    fn space1d() -> SearchSpace {
        SearchSpace::builder()
            .add("x", Domain::float(-5.0, 5.0))
            .build()
            .unwrap()
    }

    #[test]
    fn respects_eval_budget() {
        let space = space1d();
        let mut n = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            n += 1;
            0.0
        });
        let out = RandomSearch::new(1)
            .optimize(&space, &mut obj, &Budget::evals(25))
            .unwrap();
        assert_eq!(out.trials.len(), 25);
        assert_eq!(n, 25);
    }

    #[test]
    fn finds_decent_sphere_optimum() {
        let space = space1d();
        let mut obj = FnObjective(|c: &Config| -sphere(&[c.float_or("x", 0.0)]));
        let out = RandomSearch::new(7)
            .optimize(&space, &mut obj, &Budget::evals(200))
            .unwrap();
        assert!(out.best_score > -0.1, "best = {}", out.best_score);
    }

    #[test]
    fn deterministic_under_seed() {
        let space = space1d();
        let run = |seed| {
            let mut obj = FnObjective(|c: &Config| -sphere(&[c.float_or("x", 0.0)]));
            RandomSearch::new(seed)
                .optimize(&space, &mut obj, &Budget::evals(30))
                .unwrap()
                .best_score
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn zero_budget_yields_none() {
        let space = space1d();
        let mut obj = FnObjective(|_c: &Config| 0.0);
        assert!(RandomSearch::new(1)
            .optimize(&space, &mut obj, &Budget::evals(0))
            .is_none());
    }

    #[test]
    fn optimize_batch_is_thread_count_invariant() {
        let space = space1d();
        let obj = |c: &Config| -sphere(&[c.float_or("x", 0.0)]);
        let run = |threads| {
            let out = RandomSearch::new(5)
                .optimize_batch(&space, &obj, &Budget::evals(40), &Executor::new(threads))
                .unwrap();
            assert_eq!(out.trials.len(), 40);
            out.trials
                .iter()
                .map(|t| format!("{}#{:016x};", t.config, t.score.to_bits()))
                .collect::<String>()
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn target_budget_stops_early() {
        let space = space1d();
        let mut obj = FnObjective(|_c: &Config| 1.0);
        let out = RandomSearch::new(1)
            .optimize(&space, &mut obj, &Budget::evals(100).with_target(0.5))
            .unwrap();
        assert_eq!(out.trials.len(), 1);
    }
}
