//! Shared optimizer plumbing: the state bundle every optimizer embeds
//! ([`OptimizerCore`]), the builder hooks defined once for all of them
//! ([`OptimizerBuilder`]), and the crash-recovery checkpoint hook
//! ([`CheckpointSink`]).
//!
//! Before this module existed, each of the five optimizers carried its
//! own `policy`/`cache`/`tracer` fields and duplicated the four
//! `with_*` builder methods verbatim. Now they embed one
//! [`OptimizerCore`] and implement the two-accessor
//! [`OptimizerBuilder`] trait; the builder methods — including the new
//! [`with_checkpoint`](OptimizerBuilder::with_checkpoint) — are trait
//! defaults, written exactly once (checked by lint L12
//! `optimizer-contract`).
//!
//! ## Checkpointing
//!
//! A [`CheckpointSink`] observes the run at every batch boundary — the
//! only points where the trial history, quarantine, and cache are in a
//! committed, thread-count-invariant state. The sink (in practice
//! `automodel_store`'s `Checkpointer`) persists a [`RunCheckpoint`]
//! view durably and may return a `TraceEvent::Checkpoint` for the
//! tracer. Checkpointing is pure observation: it must never feed back
//! into proposals, so a checkpointed run's trial history is
//! byte-identical to an uncheckpointed one.

use crate::objective::{Quarantine, Trial};
use automodel_parallel::{CacheSnapshot, TrialCache, TrialPolicy};
use automodel_trace::{TraceEvent, Tracer};
use std::fmt;
use std::sync::Arc;

/// A read-only view of one optimizer run's committed state at a batch
/// boundary, handed to the [`CheckpointSink`].
pub struct RunCheckpoint<'a> {
    /// The optimizer's wire name (`"genetic-algorithm"`, …).
    pub optimizer: &'a str,
    /// The optimizer's RNG seed (0 for the seedless grid search).
    pub seed: u64,
    /// The fault plan's seed — the base of the trial retry seed stream.
    pub fault_seed: u64,
    /// The trial history so far; `trials.len()` is the next trial index.
    pub trials: &'a [Trial],
    /// Configs quarantined so far.
    pub quarantine: &'a Quarantine,
    /// The live trial cache (snapshot it to persist).
    pub cache: &'a TrialCache,
    /// Budget consumed so far (recorded evaluations).
    pub evals: u64,
}

/// Receives the run state at every batch boundary and persists it.
///
/// `on_batch` returns the trace event describing a successful write
/// (`TraceEvent::Checkpoint`), or `None` when nothing was written —
/// either by policy (e.g. interval skipping) or because the write
/// failed; persistence failures must be *recorded by the sink*, never
/// panicked, so checkpointing can never take down the run it protects.
pub trait CheckpointSink: Send + Sync + fmt::Debug {
    fn on_batch(&self, state: &RunCheckpoint<'_>) -> Option<TraceEvent>;
}

/// An admission gate consulted immediately before every trial batch is
/// evaluated.
///
/// `before_batch` may *block* — that is its whole purpose: a server
/// scheduling many concurrent runs installs a gate that parks each run
/// until its turn comes, yielding fair round-robin interleaving of
/// batches across sessions. It receives no run state and returns
/// nothing, so it is structurally incapable of feeding information back
/// into proposals: a gated run's trial history is byte-identical to an
/// ungated one (the same purity contract [`CheckpointSink`] carries,
/// enforced here by the narrower signature rather than by convention).
/// Implementations must never panic.
pub trait BatchGate: Send + Sync + fmt::Debug {
    fn before_batch(&self);
}

/// The state every optimizer in this crate shares: its wire name and
/// seed, the trial fault policy, the deterministic trial cache, the
/// tracer, and the optional checkpoint sink.
#[derive(Debug, Clone)]
pub struct OptimizerCore {
    /// Wire name used in run events and experiment reports.
    pub name: &'static str,
    /// RNG seed (0 for the seedless grid search).
    pub seed: u64,
    /// Trial fault-handling policy (retries, penalty, injected faults).
    pub policy: TrialPolicy,
    /// Deterministic trial cache.
    pub cache: Arc<TrialCache>,
    /// Structured-event tracer (disabled by default).
    pub tracer: Arc<Tracer>,
    /// Crash-recovery checkpoint sink (absent by default).
    pub checkpoint: Option<Arc<dyn CheckpointSink>>,
    /// Pre-batch admission gate (absent by default; timing only).
    pub gate: Option<Arc<dyn BatchGate>>,
}

impl OptimizerCore {
    /// The defaults every optimizer constructor starts from: env-gated
    /// cache, disabled tracer, no checkpointing.
    pub fn new(name: &'static str, seed: u64) -> OptimizerCore {
        OptimizerCore {
            name,
            seed,
            policy: TrialPolicy::default(),
            cache: Arc::new(TrialCache::from_env_or_disabled()),
            tracer: Arc::new(Tracer::disabled()),
            checkpoint: None,
            gate: None,
        }
    }
}

/// The builder surface shared by all optimizers. Implementors provide
/// the two accessors; every `with_*` hook is a trait default, so the
/// builder vocabulary exists in exactly one place.
pub trait OptimizerBuilder: Sized {
    fn core(&self) -> &OptimizerCore;
    fn core_mut(&mut self) -> &mut OptimizerCore;

    /// Replace the trial fault-handling policy (retries, penalty,
    /// injected faults).
    fn with_policy(mut self, policy: TrialPolicy) -> Self {
        self.core_mut().policy = policy;
        self
    }

    /// Replace the trial cache (default:
    /// [`TrialCache::from_env_or_disabled`]). Sharing one `Arc` across
    /// runs lets later searches reuse earlier results.
    fn with_cache(mut self, cache: Arc<TrialCache>) -> Self {
        self.core_mut().cache = cache;
        self
    }

    /// Seed the trial cache from a persisted snapshot (see
    /// [`CacheSnapshot`]): restored entries replay as warm hits, so a
    /// warm-started search skips every evaluation a prior run already
    /// paid for while recording a byte-identical trial history. No-op
    /// when the cache is disabled.
    fn with_warm_start(self, snapshot: &CacheSnapshot) -> Self {
        self.core().cache.restore(snapshot);
        self
    }

    /// Attach a tracer (default: disabled). The run then narrates
    /// itself as structured events without perturbing any result byte.
    fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.core_mut().tracer = tracer;
        self
    }

    /// Attach a crash-recovery checkpoint sink, invoked at every batch
    /// boundary with the committed run state. Observation only — the
    /// trial history stays byte-identical with or without it.
    fn with_checkpoint(mut self, sink: Arc<dyn CheckpointSink>) -> Self {
        self.core_mut().checkpoint = Some(sink);
        self
    }

    /// Attach a pre-batch admission gate, invoked (and possibly blocked
    /// in) before every batch is evaluated. Timing only — the trial
    /// history stays byte-identical with or without it.
    fn with_gate(mut self, gate: Arc<dyn BatchGate>) -> Self {
        self.core_mut().gate = Some(gate);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GeneticAlgorithm;
    use crate::objective::Optimizer;
    use automodel_parallel::FaultPlan;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct CountingSink {
        calls: Mutex<Vec<(u64, u64)>>,
    }

    impl CheckpointSink for CountingSink {
        fn on_batch(&self, state: &RunCheckpoint<'_>) -> Option<TraceEvent> {
            self.calls
                .lock()
                .unwrap()
                .push((state.trials.len() as u64, state.evals));
            None
        }
    }

    #[test]
    fn builder_hooks_land_in_the_core() {
        let sink: Arc<CountingSink> = Arc::default();
        let ga = GeneticAlgorithm::new(7)
            .with_policy(
                TrialPolicy::default().with_faults(FaultPlan::with_rates(3, 0.0, 0.1, 0.0)),
            )
            .with_cache(Arc::new(TrialCache::disabled()))
            .with_tracer(Arc::new(Tracer::disabled()))
            .with_checkpoint(sink.clone());
        assert_eq!(ga.core().name, "genetic-algorithm");
        assert_eq!(ga.core().seed, 7);
        assert_eq!(ga.core().policy.faults.seed, 3);
        assert!(!ga.core().cache.is_enabled());
        assert!(ga.core().checkpoint.is_some());
    }

    #[test]
    fn checkpoint_sink_sees_every_batch_boundary() {
        use crate::budget::Budget;
        use crate::objective::FnObjective;
        use crate::space::{Config, Domain, SearchSpace};
        let space = SearchSpace::builder()
            .add("x", Domain::float(-1.0, 1.0))
            .build()
            .unwrap();
        let sink: Arc<CountingSink> = Arc::default();
        let mut obj = FnObjective(|c: &Config| -c.float_or("x", 0.0).abs());
        let out = crate::random::RandomSearch::new(5)
            .with_checkpoint(sink.clone())
            .optimize(&space, &mut obj, &Budget::evals(10))
            .unwrap();
        let calls = sink.calls.lock().unwrap();
        // Serial random search runs one-config batches: one boundary per
        // trial, trial counts strictly increasing, final count = total.
        assert_eq!(calls.len(), 10);
        assert!(calls.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(calls.last().unwrap().0, out.trials.len() as u64);
    }

    #[test]
    fn checkpointing_does_not_change_the_trial_history() {
        use crate::budget::Budget;
        use crate::objective::FnObjective;
        use crate::space::{Config, Domain, SearchSpace};
        let space = SearchSpace::builder()
            .add("x", Domain::float(-2.0, 2.0))
            .build()
            .unwrap();
        let run = |sink: Option<Arc<dyn CheckpointSink>>| {
            let mut obj = FnObjective(|c: &Config| -c.float_or("x", 0.0).abs());
            let mut ga = GeneticAlgorithm::small(4);
            if let Some(sink) = sink {
                ga = ga.with_checkpoint(sink);
            }
            ga.optimize(&space, &mut obj, &Budget::evals(60))
                .unwrap()
                .trials
                .iter()
                .map(|t| format!("{}|{}#{:016x}\n", t.index, t.config, t.score.to_bits()))
                .collect::<String>()
        };
        let plain = run(None);
        let checked = run(Some(Arc::<CountingSink>::default()));
        assert_eq!(plain, checked, "checkpointing must be pure observation");
    }

    #[derive(Debug, Default)]
    struct CountingGate {
        batches: std::sync::atomic::AtomicU64,
    }

    impl BatchGate for CountingGate {
        fn before_batch(&self) {
            self.batches
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn gating_does_not_change_the_trial_history() {
        use crate::budget::Budget;
        use crate::objective::FnObjective;
        use crate::space::{Config, Domain, SearchSpace};
        let space = SearchSpace::builder()
            .add("x", Domain::float(-2.0, 2.0))
            .build()
            .unwrap();
        let run = |gate: Option<Arc<CountingGate>>| {
            let mut obj = FnObjective(|c: &Config| -c.float_or("x", 0.0).abs());
            let mut ga = GeneticAlgorithm::small(4);
            if let Some(gate) = &gate {
                ga = ga.with_gate(gate.clone());
            }
            let history = ga
                .optimize(&space, &mut obj, &Budget::evals(60))
                .unwrap()
                .trials
                .iter()
                .map(|t| format!("{}|{}#{:016x}\n", t.index, t.config, t.score.to_bits()))
                .collect::<String>();
            let batches = gate.map_or(0, |g| g.batches.load(std::sync::atomic::Ordering::Relaxed));
            (history, batches)
        };
        let (plain, _) = run(None);
        let (gated, batches) = run(Some(Arc::default()));
        assert_eq!(plain, gated, "gating must be timing-only");
        assert!(batches > 0, "the gate must see every batch boundary");
    }
}
