//! # automodel-hpo
//!
//! Hyperparameter-optimization substrate for the Auto-Model reproduction.
//!
//! The paper (§II) relies on four classical HPO techniques — Grid Search,
//! Random Search, Bayesian Optimization and Genetic Algorithms — and on the
//! observation that GA suits cheap evaluations while BO suits expensive ones.
//! The Auto-Weka baseline additionally needs a *hierarchical* space (the
//! choice of algorithm is itself a hyperparameter that gates every
//! algorithm-specific subspace) and a SMAC-style model-based optimizer.
//!
//! This crate provides:
//!
//! * [`space`] — typed [`SearchSpace`]s with int/float/categorical/bool
//!   parameters, log scales, and conditional activation (`momentum` is only
//!   active when `solver = sgd`, `J48.*` only when `algorithm = J48`).
//! * [`budget`] — evaluation-count / wall-clock / target-score budgets.
//! * [`fingerprint`] — canonical [`Config`] fingerprints (stable ordering,
//!   NaN-safe float bits, space-aware inactive-param normalization) keying
//!   the deterministic trial cache in `automodel_parallel::cache`.
//! * Optimizers — [`GridSearch`], [`RandomSearch`], [`GeneticAlgorithm`]
//!   (tournament selection, uniform crossover, mutation, elitism),
//!   [`BayesianOptimization`] (GP surrogate, RBF kernel, expected
//!   improvement) and [`SmacLite`] (random-forest surrogate with random
//!   interleaving).
//! * [`testfns`] — standard continuous test functions used by unit tests and
//!   the `hpo_optimizers` criterion bench.
//!
//! All optimizers *maximize* the objective and never propose configurations
//! outside the space (property-tested).

pub mod bo;
pub mod budget;
pub mod builder;
pub mod fidelity;
pub mod fingerprint;
pub mod ga;
pub mod grid;
pub mod hyperband;
pub mod linalg;
pub mod objective;
pub mod random;
pub mod sha;
pub mod smac;
pub mod space;
pub mod testfns;

pub use bo::BayesianOptimization;
pub use budget::{Budget, BudgetTracker};
pub use builder::{BatchGate, CheckpointSink, OptimizerBuilder, OptimizerCore, RunCheckpoint};
pub use fidelity::{BatchFidelityObjective, Fidelity, FidelityObjective};
pub use fingerprint::{canonical_f64_bits, FingerprintError};
pub use ga::{GaConfig, GeneticAlgorithm};
pub use grid::GridSearch;
pub use hyperband::Hyperband;
pub use objective::{
    BatchObjective, FnObjective, Objective, OptOutcome, Optimizer, Quarantine, QuarantineRecord,
    Trial,
};
pub use random::RandomSearch;
pub use sha::{ShaConfig, SuccessiveHalving};
pub use smac::SmacLite;
pub use space::{Condition, Config, Domain, ParamSpec, ParamValue, SearchSpace};

// The executor the `optimize_batch` entry points run on — and the
// fault-containment vocabulary every optimizer speaks — re-exported so
// callers need not depend on `automodel-parallel` directly.
pub use automodel_parallel::{
    seed_stream, CacheSnapshot, CacheStats, CachedTrial, Clock, Executor, FailureKind, FaultPlan,
    ManualClock, MonotonicClock, TrialCache, TrialFailure, TrialOutcome, TrialPolicy,
};

// The structured-tracing vocabulary (see `automodel-trace`): every optimizer
// accepts a `with_tracer(Arc<Tracer>)` and emits a deterministic event
// stream. Re-exported so callers need not depend on `automodel-trace`
// directly.
pub use automodel_trace::{
    decode, encode_line, MemoryHandle, TraceEvent, TraceRecord, TraceSummary, Tracer,
};

/// Optimizers re-exported as a module for qualified use.
pub mod optimizers {
    pub use crate::bo::BayesianOptimization;
    pub use crate::ga::GeneticAlgorithm;
    pub use crate::grid::GridSearch;
    pub use crate::hyperband::Hyperband;
    pub use crate::random::RandomSearch;
    pub use crate::sha::SuccessiveHalving;
    pub use crate::smac::SmacLite;
}
