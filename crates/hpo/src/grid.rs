//! Grid Search (§II-A): evaluate the Cartesian product of per-parameter
//! grids.
//!
//! Continuous parameters are discretized into `levels` points; categorical
//! and boolean parameters enumerate all options. Conditional parameters are
//! handled by repairing each raw grid point against the space, then skipping
//! duplicates (a child grid point under an inactive parent collapses onto the
//! parent-only configuration).

use crate::budget::Budget;
use crate::builder::{OptimizerBuilder, OptimizerCore};
use crate::objective::{
    eval_batch_parallel, eval_batch_serial, finish_run, trace_run_start, BatchObjective, Objective,
    OptOutcome, Optimizer, Quarantine,
};
use crate::space::{Config, SearchSpace};
use automodel_parallel::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Exhaustive grid search.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Grid points per numeric parameter.
    pub levels: usize,
    /// Hard cap on enumerated points (explosion guard).
    pub max_points: usize,
    core: OptimizerCore,
}

impl OptimizerBuilder for GridSearch {
    fn core(&self) -> &OptimizerCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut OptimizerCore {
        &mut self.core
    }
}

impl GridSearch {
    pub fn new(levels: usize) -> GridSearch {
        GridSearch {
            levels,
            max_points: 100_000,
            // Grid search is seedless; the run event records seed 0.
            core: OptimizerCore::new("grid-search", 0),
        }
    }

    /// Enumerate (and dedup) grid points in odometer order; `None` once the
    /// enumeration is done. Shared by the serial and parallel paths so both
    /// visit the identical point sequence.
    fn enumeration(&self, space: &SearchSpace) -> GridEnumeration {
        let per_param: Vec<Vec<crate::space::ParamValue>> = space
            .params()
            .iter()
            .map(|p| p.domain.grid(self.levels))
            .collect();
        let total: usize = per_param.iter().map(Vec::len).product();
        GridEnumeration {
            indices: vec![0usize; per_param.len()],
            per_param,
            remaining: total.min(self.max_points),
            seen: HashSet::new(),
            // Repair only fills params sampled deterministically below.
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Parallel entry point: score batches of grid points concurrently on
    /// `executor`. Points are enumerated in the same odometer order as the
    /// serial path; under an evaluation-count budget the trial history is
    /// byte-identical at any thread count.
    pub fn optimize_batch(
        &self,
        space: &SearchSpace,
        objective: &dyn BatchObjective,
        budget: &Budget,
        executor: &Executor,
    ) -> Option<OptOutcome> {
        let mut tracker = budget.start();
        let mut trials = Vec::new();
        let mut quarantine = Quarantine::new();
        trace_run_start(&self.core);
        let mut points = self.enumeration(space);
        let batch = (executor.threads() * 8).max(8);
        while !tracker.exhausted() {
            let configs: Vec<Config> = (0..batch).map_while(|_| points.next_point(space)).collect();
            if configs.is_empty() {
                break;
            }
            eval_batch_parallel(
                configs,
                objective,
                executor,
                &mut tracker,
                &mut trials,
                &mut quarantine,
                &self.core,
            );
        }
        finish_run(&self.core, &tracker, trials, quarantine)
    }
}

/// Odometer state for grid-point enumeration with conditional-duplicate
/// collapsing.
struct GridEnumeration {
    per_param: Vec<Vec<crate::space::ParamValue>>,
    indices: Vec<usize>,
    remaining: usize,
    seen: HashSet<String>,
    rng: StdRng,
}

impl GridEnumeration {
    fn next_point(&mut self, space: &SearchSpace) -> Option<Config> {
        while self.remaining > 0 {
            self.remaining -= 1;
            let mut raw = Config::new();
            for (spec, (choice, values)) in space
                .params()
                .iter()
                .zip(self.indices.iter().zip(&self.per_param))
            {
                raw.set(spec.name.clone(), values[*choice].clone());
            }
            let config = space.repair(&raw, &mut self.rng);
            // Odometer increment.
            for (i, idx) in self.indices.iter_mut().enumerate() {
                *idx += 1;
                if *idx < self.per_param[i].len() {
                    break;
                }
                *idx = 0;
            }
            let key = format!("{config}");
            if self.seen.insert(key) {
                return Some(config);
            }
        }
        None
    }
}

impl Optimizer for GridSearch {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut tracker = budget.start();
        let mut trials = Vec::new();
        let mut quarantine = Quarantine::new();
        trace_run_start(&self.core);
        let mut points = self.enumeration(space);
        while !tracker.exhausted() {
            let Some(config) = points.next_point(space) else {
                break;
            };
            eval_batch_serial(
                vec![config],
                objective,
                &mut tracker,
                &mut trials,
                &mut quarantine,
                &self.core,
            );
        }
        finish_run(&self.core, &tracker, trials, quarantine)
    }

    fn name(&self) -> &'static str {
        "grid-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::space::{Condition, Config, Domain};

    #[test]
    fn enumerates_full_cartesian_product() {
        let space = SearchSpace::builder()
            .add("a", Domain::int(0, 2))
            .add("b", Domain::cat(&["x", "y"]))
            .build()
            .unwrap();
        let mut count = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            count += 1;
            0.0
        });
        let out = GridSearch::new(5)
            .optimize(&space, &mut obj, &Budget::default())
            .unwrap();
        assert_eq!(out.trials.len(), 6);
        assert_eq!(count, 6);
    }

    #[test]
    fn finds_exact_grid_optimum() {
        let space = SearchSpace::builder()
            .add("x", Domain::float(0.0, 1.0))
            .build()
            .unwrap();
        // Maximum at x=1 (a grid endpoint).
        let mut obj = FnObjective(|c: &Config| c.float_or("x", 0.0));
        let out = GridSearch::new(11)
            .optimize(&space, &mut obj, &Budget::default())
            .unwrap();
        assert_eq!(out.best_score, 1.0);
    }

    #[test]
    fn conditional_duplicates_are_collapsed() {
        let space = SearchSpace::builder()
            .add("mode", Domain::cat(&["plain", "fancy"]))
            .add_if("knob", Domain::int(0, 4), Condition::cat_eq("mode", 1))
            .build()
            .unwrap();
        let mut obj = FnObjective(|_c: &Config| 0.0);
        let out = GridSearch::new(5)
            .optimize(&space, &mut obj, &Budget::default())
            .unwrap();
        // plain (1 config, knob inactive) + fancy × 5 knob values = 6.
        assert_eq!(out.trials.len(), 6);
    }

    #[test]
    fn optimize_batch_visits_the_same_points_as_serial() {
        use automodel_parallel::Executor;
        let space = SearchSpace::builder()
            .add("a", Domain::int(0, 9))
            .add("b", Domain::cat(&["x", "y", "z"]))
            .build()
            .unwrap();
        let score = |c: &Config| c.int_or("a", 0) as f64 - c.cat_or("b", 0) as f64;
        let serial = {
            let mut obj = FnObjective(score);
            GridSearch::new(5)
                .optimize(&space, &mut obj, &Budget::evals(17))
                .unwrap()
        };
        for threads in [1, 2, 8] {
            let out = GridSearch::new(5)
                .optimize_batch(&space, &score, &Budget::evals(17), &Executor::new(threads))
                .unwrap();
            assert_eq!(out.trials.len(), serial.trials.len());
            for (a, b) in out.trials.iter().zip(&serial.trials) {
                assert_eq!(format!("{}", a.config), format!("{}", b.config));
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn respects_budget_cutoff() {
        let space = SearchSpace::builder()
            .add("a", Domain::int(0, 99))
            .build()
            .unwrap();
        let mut obj = FnObjective(|_c: &Config| 0.0);
        let out = GridSearch::new(100)
            .optimize(&space, &mut obj, &Budget::evals(10))
            .unwrap();
        assert_eq!(out.trials.len(), 10);
    }
}
