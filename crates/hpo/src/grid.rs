//! Grid Search (§II-A): evaluate the Cartesian product of per-parameter
//! grids.
//!
//! Continuous parameters are discretized into `levels` points; categorical
//! and boolean parameters enumerate all options. Conditional parameters are
//! handled by repairing each raw grid point against the space, then skipping
//! duplicates (a child grid point under an inactive parent collapses onto the
//! parent-only configuration).

use crate::budget::Budget;
use crate::objective::{Objective, OptOutcome, Optimizer, Trial};
use crate::space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Exhaustive grid search.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Grid points per numeric parameter.
    pub levels: usize,
    /// Hard cap on enumerated points (explosion guard).
    pub max_points: usize,
}

impl GridSearch {
    pub fn new(levels: usize) -> GridSearch {
        GridSearch {
            levels,
            max_points: 100_000,
        }
    }
}

impl Optimizer for GridSearch {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut rng = StdRng::seed_from_u64(0); // repair only fills params sampled deterministically below
        let per_param: Vec<Vec<crate::space::ParamValue>> = space
            .params()
            .iter()
            .map(|p| p.domain.grid(self.levels))
            .collect();
        let total: usize = per_param.iter().map(Vec::len).product();
        let total = total.min(self.max_points);

        let mut tracker = budget.start();
        let mut trials = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut indices = vec![0usize; per_param.len()];
        for _ in 0..total {
            if tracker.exhausted() {
                break;
            }
            let mut raw = Config::new();
            for (spec, (choice, values)) in
                space.params().iter().zip(indices.iter().zip(&per_param))
            {
                raw.set(spec.name.clone(), values[*choice].clone());
            }
            let config = space.repair(&raw, &mut rng);
            let key = format!("{config}");
            if seen.insert(key) {
                let score = objective.evaluate(&config);
                tracker.record(score);
                trials.push(Trial {
                    config,
                    score,
                    index: trials.len(),
                });
            }
            // Odometer increment.
            for (i, idx) in indices.iter_mut().enumerate() {
                *idx += 1;
                if *idx < per_param[i].len() {
                    break;
                }
                *idx = 0;
            }
        }
        OptOutcome::from_trials(trials)
    }

    fn name(&self) -> &'static str {
        "grid-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::space::{Condition, Config, Domain};

    #[test]
    fn enumerates_full_cartesian_product() {
        let space = SearchSpace::builder()
            .add("a", Domain::int(0, 2))
            .add("b", Domain::cat(&["x", "y"]))
            .build()
            .unwrap();
        let mut count = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            count += 1;
            0.0
        });
        let out = GridSearch::new(5)
            .optimize(&space, &mut obj, &Budget::default())
            .unwrap();
        assert_eq!(out.trials.len(), 6);
        assert_eq!(count, 6);
    }

    #[test]
    fn finds_exact_grid_optimum() {
        let space = SearchSpace::builder()
            .add("x", Domain::float(0.0, 1.0))
            .build()
            .unwrap();
        // Maximum at x=1 (a grid endpoint).
        let mut obj = FnObjective(|c: &Config| c.float_or("x", 0.0));
        let out = GridSearch::new(11)
            .optimize(&space, &mut obj, &Budget::default())
            .unwrap();
        assert_eq!(out.best_score, 1.0);
    }

    #[test]
    fn conditional_duplicates_are_collapsed() {
        let space = SearchSpace::builder()
            .add("mode", Domain::cat(&["plain", "fancy"]))
            .add_if("knob", Domain::int(0, 4), Condition::cat_eq("mode", 1))
            .build()
            .unwrap();
        let mut obj = FnObjective(|_c: &Config| 0.0);
        let out = GridSearch::new(5)
            .optimize(&space, &mut obj, &Budget::default())
            .unwrap();
        // plain (1 config, knob inactive) + fancy × 5 knob values = 6.
        assert_eq!(out.trials.len(), 6);
    }

    #[test]
    fn respects_budget_cutoff() {
        let space = SearchSpace::builder()
            .add("a", Domain::int(0, 99))
            .build()
            .unwrap();
        let mut obj = FnObjective(|_c: &Config| 0.0);
        let out = GridSearch::new(100)
            .optimize(&space, &mut obj, &Budget::evals(10))
            .unwrap();
        assert_eq!(out.trials.len(), 10);
    }
}
