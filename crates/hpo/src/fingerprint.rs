//! Canonical [`Config`] fingerprints — the key encoding of the trial
//! cache.
//!
//! A fingerprint must satisfy one law in both directions: **two configs
//! map to the same key if and only if every evaluation path treats them as
//! the same configuration.** Config equality is `BTreeMap` equality over
//! typed values, with one float subtlety: `-0.0 == 0.0` under `PartialEq`,
//! while `NaN != NaN`. The encoding therefore:
//!
//! * walks parameters in the `BTreeMap`'s stable name order;
//! * length-prefixes every name, so no separator character a name might
//!   contain can make two different configs concatenate identically;
//! * tags every value with its type (an `Int(1)` never collides with a
//!   `Cat(1)` or `Bool(true)`);
//! * encodes floats by their canonical bit pattern
//!   ([`canonical_f64_bits`]): every NaN payload collapses to one quiet
//!   NaN and `-0.0` collapses to `+0.0`, so equal-comparing configs get
//!   equal keys and the encoding never panics on any float;
//! * prefixes the parameter count, so a config can never alias a prefix
//!   of a larger one.
//!
//! [`SearchSpace::cache_key`] additionally normalizes away *inactive*
//! conditional parameters (a `momentum` left over from a `solver=sgd`
//! genome must not distinguish two configs that both run with
//! `solver=adam`). Configs that reach evaluation are always
//! repaired/validated and hold exactly their active parameters, so the
//! optimizers use the cheaper [`Config::cache_key`]; the space-aware form
//! is for callers fingerprinting raw, unrepaired configs.

use crate::fidelity::Fidelity;
use crate::space::{Config, ParamValue, SearchSpace};
use std::fmt;
use std::fmt::Write as _;

/// A config could not be fingerprinted against a search space.
///
/// Raised by [`SearchSpace::cache_key`] when the config carries a
/// parameter the space has never declared. Silently dropping such a
/// parameter (the old behaviour) would merge the fingerprints of two
/// configs that may evaluate differently — a cache collision serving one
/// config's score for the other, the exact corruption fingerprints exist
/// to prevent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintError {
    /// Name of the config parameter the space does not declare.
    pub param: String,
}

impl fmt::Display for FingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config parameter '{}' is unknown to the search space; \
             refusing to fingerprint (dropping it could collide two \
             behaviourally different configs)",
            self.param
        )
    }
}

impl std::error::Error for FingerprintError {}

// One canonicalization law for the whole workspace: the trial cache's
// fingerprints and the trace codec's float wire form share the exact
// definition, so a score read back from a trace keys the cache correctly.
pub use automodel_trace::{canonical_f64_bits, CANONICAL_NAN_BITS};

/// Append one typed value. Type tags keep the four variants disjoint; the
/// fixed-width hex float encoding needs no terminator to stay injective.
fn push_value(buf: &mut String, value: &ParamValue) {
    match value {
        ParamValue::Int(i) => {
            let _ = write!(buf, "i{i}");
        }
        ParamValue::Float(x) => {
            let _ = write!(buf, "f{:016x}", canonical_f64_bits(*x));
        }
        ParamValue::Cat(c) => {
            let _ = write!(buf, "c{c}");
        }
        ParamValue::Bool(b) => {
            let _ = write!(buf, "b{}", u8::from(*b));
        }
    }
}

/// Canonical key over exactly the entries of `config`, in stable name
/// order. Injective: distinct configs (up to float canonicalization)
/// produce distinct keys.
fn encode(config: &Config) -> String {
    // ≈ name + 17-char float + punctuation per param.
    let mut buf = String::with_capacity(16 + config.len() * 32);
    let _ = write!(buf, "v1;{};", config.len());
    for (name, value) in config.iter() {
        let _ = write!(buf, "{}:{}=", name.len(), name);
        push_value(&mut buf, value);
        buf.push(';');
    }
    buf
}

impl Config {
    /// Canonical cache fingerprint of this configuration (see the module
    /// docs for the encoding laws). Use [`SearchSpace::cache_key`] when
    /// the config may carry values for *inactive* conditional parameters.
    pub fn cache_key(&self) -> String {
        encode(self)
    }

    /// Canonical fingerprint of this configuration *evaluated at a
    /// fidelity*. A low-fidelity score is a different measurement than a
    /// full-fidelity score of the same config, so the trial cache,
    /// warm-start store and checkpoint sections must key them apart.
    ///
    /// At [`Fidelity::full`] this is exactly [`Config::cache_key`] — the
    /// legacy single-fidelity world and full-fidelity rungs share cache
    /// slots, checkpoints and warm-start artifacts. Any other fidelity
    /// appends a `@f:{num}/{den};k{folds};e{cap}` suffix. Injectivity
    /// holds because the config encoding is uniquely decodable (count-
    /// prefixed, length-prefixed names), so no config encoding can end in
    /// a valid fidelity suffix of another key, and the fidelity itself is
    /// stored gcd-reduced (canonical).
    pub fn cache_key_at(&self, fidelity: &Fidelity) -> String {
        let mut key = encode(self);
        if !fidelity.is_full() {
            let _ = write!(
                key,
                "@f:{}/{};k{};e{}",
                fidelity.num(),
                fidelity.den(),
                fidelity.cv_folds,
                fidelity.epoch_cap
            );
        }
        key
    }
}

impl SearchSpace {
    /// Space-aware canonical fingerprint: like [`Config::cache_key`], but
    /// only *active* parameters contribute. Activity is resolved in one
    /// forward pass over the space (parents are declared before children),
    /// so a stale value behind an inactive condition never distinguishes
    /// two behaviourally equal configs. A parameter the space has never
    /// declared is a [`FingerprintError`], not a silent drop: the space
    /// cannot vouch that such a parameter is inert, so merging keys over
    /// it risks serving one config's cached score for another.
    pub fn cache_key(&self, config: &Config) -> Result<String, FingerprintError> {
        for (name, _) in config.iter() {
            if !self.params().iter().any(|spec| spec.name == *name) {
                return Err(FingerprintError {
                    param: name.clone(),
                });
            }
        }
        let mut active = Config::new();
        for spec in self.params() {
            if self.is_active(spec, &active) {
                if let Some(value) = config.get(&spec.name) {
                    active.set(spec.name.clone(), value.clone());
                }
            }
        }
        Ok(encode(&active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Condition, Domain};

    fn config(pairs: &[(&str, ParamValue)]) -> Config {
        let mut c = Config::new();
        for (k, v) in pairs {
            c.set(*k, v.clone());
        }
        c
    }

    #[test]
    fn equal_configs_have_equal_keys() {
        let a = config(&[
            ("lr", ParamValue::Float(0.125)),
            ("depth", ParamValue::Int(4)),
            ("kernel", ParamValue::Cat(2)),
            ("bagging", ParamValue::Bool(true)),
        ]);
        assert_eq!(a.cache_key(), a.clone().cache_key());
        // Insertion order is irrelevant: the BTreeMap canonicalizes it.
        let b = config(&[
            ("bagging", ParamValue::Bool(true)),
            ("kernel", ParamValue::Cat(2)),
            ("depth", ParamValue::Int(4)),
            ("lr", ParamValue::Float(0.125)),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn type_tags_keep_numerically_equal_values_apart() {
        let int1 = config(&[("x", ParamValue::Int(1))]);
        let cat1 = config(&[("x", ParamValue::Cat(1))]);
        let bool1 = config(&[("x", ParamValue::Bool(true))]);
        let float1 = config(&[("x", ParamValue::Float(1.0))]);
        let keys = [
            int1.cache_key(),
            cat1.cache_key(),
            bool1.cache_key(),
            float1.cache_key(),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "{} vs {}", keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn length_prefixed_names_block_concatenation_aliases() {
        // Without length prefixes, {"ab"=1} and {"a"=..,"b"=..} style pairs
        // can concatenate to the same byte string.
        let a = config(&[("a", ParamValue::Int(1)), ("b", ParamValue::Int(2))]);
        let ab = config(&[("ab", ParamValue::Int(12))]);
        assert_ne!(a.cache_key(), ab.cache_key());
        // Nor may a config alias a prefix of a larger one.
        let a_only = config(&[("a", ParamValue::Int(1))]);
        assert!(!a.cache_key().starts_with(&a_only.cache_key()));
    }

    #[test]
    fn nan_payloads_collapse_and_negative_zero_normalizes() {
        let quiet = config(&[("x", ParamValue::Float(f64::NAN))]);
        let payload = config(&[(
            "x",
            ParamValue::Float(f64::from_bits(0x7ff8_0000_0000_0001)),
        )]);
        let negated = config(&[("x", ParamValue::Float(-f64::NAN))]);
        assert_eq!(quiet.cache_key(), payload.cache_key());
        assert_eq!(quiet.cache_key(), negated.cache_key());

        let pos = config(&[("x", ParamValue::Float(0.0))]);
        let neg = config(&[("x", ParamValue::Float(-0.0))]);
        assert_eq!(pos, neg, "Config PartialEq treats -0.0 == 0.0");
        assert_eq!(pos.cache_key(), neg.cache_key());
        // But a NaN config is not the zero config.
        assert_ne!(quiet.cache_key(), pos.cache_key());
    }

    #[test]
    fn space_key_ignores_inactive_and_rejects_unknown_params() {
        let space = SearchSpace::builder()
            .add("solver", Domain::cat(&["adam", "sgd"]))
            .add_if(
                "momentum",
                Domain::float(0.0, 1.0),
                Condition::cat_eq("solver", 1),
            )
            .build()
            .unwrap();
        // solver=adam ⇒ momentum is inactive; a stale value must not split
        // the key.
        let clean = config(&[("solver", ParamValue::Cat(0))]);
        let stale = config(&[
            ("solver", ParamValue::Cat(0)),
            ("momentum", ParamValue::Float(0.9)),
        ]);
        assert_eq!(
            space.cache_key(&clean).unwrap(),
            space.cache_key(&stale).unwrap()
        );
        // A parameter the space has never declared is an error, never a
        // silent drop (it could collide two behaviourally different
        // configs).
        let alien = config(&[
            ("solver", ParamValue::Cat(0)),
            ("debris", ParamValue::Int(7)),
        ]);
        let err = space.cache_key(&alien).unwrap_err();
        assert_eq!(err.param, "debris");
        assert!(err.to_string().contains("'debris'"), "{err}");
        // With solver=sgd the momentum is active and must distinguish.
        let sgd_a = config(&[
            ("solver", ParamValue::Cat(1)),
            ("momentum", ParamValue::Float(0.9)),
        ]);
        let sgd_b = config(&[
            ("solver", ParamValue::Cat(1)),
            ("momentum", ParamValue::Float(0.5)),
        ]);
        assert_ne!(
            space.cache_key(&sgd_a).unwrap(),
            space.cache_key(&sgd_b).unwrap()
        );
        // On a fully-active config the two forms agree.
        assert_eq!(space.cache_key(&sgd_a).unwrap(), sgd_a.cache_key());
    }

    #[test]
    fn full_fidelity_key_is_the_legacy_key() {
        let c = config(&[("lr", ParamValue::Float(0.125))]);
        assert_eq!(c.cache_key_at(&Fidelity::full()), c.cache_key());
        // An unreduced full fraction is still the identity.
        assert_eq!(c.cache_key_at(&Fidelity::fraction(27, 27)), c.cache_key());
    }

    #[test]
    fn fidelities_split_keys_and_reduced_fractions_merge_them() {
        let c = config(&[("depth", ParamValue::Int(4))]);
        let third = c.cache_key_at(&Fidelity::fraction(1, 3));
        let ninth = c.cache_key_at(&Fidelity::fraction(1, 9));
        assert_ne!(third, ninth);
        assert_ne!(third, c.cache_key());
        // 9/27 reduces to 1/3: same measurement, same key.
        assert_eq!(c.cache_key_at(&Fidelity::fraction(9, 27)), third);
        // Fold/epoch overrides are part of the measurement too.
        assert_ne!(
            c.cache_key_at(&Fidelity::fraction(1, 3).with_cv_folds(2)),
            third
        );
        assert_ne!(
            c.cache_key_at(&Fidelity::fraction(1, 3).with_epoch_cap(40)),
            third
        );
    }

    #[test]
    fn close_floats_do_not_collide_like_the_display_form_does() {
        // Config's Display truncates floats to 4 decimals (fine for
        // quarantine reporting); the cache key must keep full precision.
        let a = config(&[("lr", ParamValue::Float(0.100_04))]);
        let b = config(&[("lr", ParamValue::Float(0.100_044))]);
        assert_eq!(a.to_string(), b.to_string(), "Display collides by design");
        assert_ne!(a.cache_key(), b.cache_key());
    }
}
