//! Hyperband: a grid of successive-halving brackets trading off
//! exploration breadth against starting fidelity.
//!
//! Plain SHA commits to one answer to "how aggressively may a cheap
//! measurement eliminate?" — Hyperband hedges by running every answer:
//! bracket `s` starts `n_s = ⌈(s_max+1)/(s+1) · eta^s⌉` candidates at
//! resource `r_max / eta^s` and halves its way up. The most aggressive
//! bracket (the full SHA ladder) runs first; the last bracket evaluates a
//! handful of configs straight at full fidelity (pure random search).
//! With the default geometry (`eta=3`, `r=1..27`) the four brackets cost
//! 40 + 17 + 8 + 4 = 69 evaluations.
//!
//! Determinism is inherited wholesale from [`run_bracket`]: brackets run
//! in a fixed order, bracket `b`'s candidates draw from proposal streams
//! offset by the total proposed before it, and every rung follows the
//! canonical-bits promotion rule — so the full Hyperband history and
//! trace are byte-identical at any thread count. Trace `RungStart`
//! events carry the bracket number (`0` = most aggressive), so one trace
//! stream narrates the whole grid unambiguously.
//!
//! The returned incumbent prefers *deeper-fidelity* winners across
//! brackets: a bracket's best measured at `1/3` of the rows never beats
//! another's measured at full fidelity, whatever the raw scores; equal
//! fidelities fall back to canonical score bits, then the lower trial
//! index.
//!
//! [`run_bracket`]: crate::sha::run_bracket

use crate::budget::Budget;
use crate::builder::{OptimizerBuilder, OptimizerCore};
use crate::fidelity::{BatchFidelityObjective, Fidelity, FidelityObjective};
use crate::fingerprint::canonical_f64_bits;
use crate::objective::{
    finish_run_with_best, trace_run_start, BatchObjective, Objective, OptOutcome, Optimizer,
    Quarantine,
};
use crate::sha::{run_bracket, BracketBest, BracketSpec, FidelityEval, ShaConfig};
use crate::space::{Config, SearchSpace};
use automodel_parallel::{Executor, TrialOutcome};

/// Hyperband over the shared rung geometry (see the module docs).
#[derive(Debug, Clone)]
pub struct Hyperband {
    core: OptimizerCore,
    cfg: ShaConfig,
}

impl OptimizerBuilder for Hyperband {
    fn core(&self) -> &OptimizerCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut OptimizerCore {
        &mut self.core
    }
}

impl Hyperband {
    /// Hyperband with the default geometry (`eta=3`, `r=1..27`: four
    /// brackets, 69 evaluations).
    pub fn new(seed: u64) -> Hyperband {
        Hyperband::with_geometry(seed, ShaConfig::default())
    }

    /// Hyperband with an explicit rung geometry. `candidates` is ignored
    /// (each bracket derives its own `n_s`).
    ///
    /// # Panics
    /// If the geometry is incoherent (see [`ShaConfig`]).
    pub fn with_geometry(seed: u64, cfg: ShaConfig) -> Hyperband {
        cfg.validate();
        Hyperband {
            core: OptimizerCore::new("hyperband", seed),
            cfg,
        }
    }

    /// The configured rung geometry.
    pub fn geometry(&self) -> &ShaConfig {
        &self.cfg
    }

    /// `s_max`: how many times `eta` divides `r_max / r_min`.
    fn s_max(&self) -> u32 {
        let mut s = 0;
        let mut r = self.cfg.r_min;
        while r < self.cfg.r_max {
            r *= self.cfg.eta;
            s += 1;
        }
        s
    }

    /// The bracket plan, in execution order: `(bracket, n_start, r_start)`.
    pub fn brackets(&self) -> Vec<(u64, u32, u32)> {
        let s_max = self.s_max();
        (0..=s_max)
            .rev()
            .enumerate()
            .map(|(b, s)| {
                let pow = self.cfg.eta.pow(s);
                // n_s = ⌈(s_max+1)/(s+1) · eta^s⌉, in exact integer form.
                let n = ((s_max as u64 + 1) * pow as u64).div_ceil(s as u64 + 1) as u32;
                let r = self.cfg.r_max / pow;
                (b as u64, n, r)
            })
            .collect()
    }

    /// Serial fidelity-aware entry point.
    pub fn optimize_fidelity(
        &self,
        space: &SearchSpace,
        objective: &mut dyn FidelityObjective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        self.run(space, &mut FidelityEval::Serial(objective), budget)
    }

    /// Parallel fidelity-aware entry point; byte-identical to the serial
    /// one at any thread count.
    pub fn optimize_fidelity_batch(
        &self,
        space: &SearchSpace,
        objective: &dyn BatchFidelityObjective,
        budget: &Budget,
        executor: &Executor,
    ) -> Option<OptOutcome> {
        self.run(space, &mut FidelityEval::Batch(objective, executor), budget)
    }

    /// Parallel entry point for fidelity-oblivious objectives.
    pub fn optimize_batch(
        &self,
        space: &SearchSpace,
        objective: &dyn BatchObjective,
        budget: &Budget,
        executor: &Executor,
    ) -> Option<OptOutcome> {
        let adapter = IgnoreFidelityBatch(objective);
        self.run(space, &mut FidelityEval::Batch(&adapter, executor), budget)
    }

    fn run(
        &self,
        space: &SearchSpace,
        eval: &mut FidelityEval<'_>,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut tracker = budget.start();
        let mut trials = Vec::new();
        let mut quarantine = Quarantine::new();
        trace_run_start(&self.core);
        let mut proposed = 0u64;
        let mut best: Option<BracketBest> = None;
        for (bracket, n_start, r_start) in self.brackets() {
            if tracker.exhausted() {
                break;
            }
            let spec = BracketSpec {
                cfg: &self.cfg,
                bracket,
                n_start,
                r_start,
                seed_base: proposed,
            };
            proposed += n_start as u64;
            let bracket_best = run_bracket(
                &self.core,
                &spec,
                space,
                eval,
                &mut tracker,
                &mut trials,
                &mut quarantine,
            );
            best = match (best, bracket_best) {
                (None, b) => b,
                (b, None) => b,
                (Some(a), Some(b)) => Some(if deeper_then_better(&b, &a) { b } else { a }),
            };
        }
        finish_run_with_best(
            &self.core,
            &tracker,
            trials,
            quarantine,
            best.map(|b| b.index),
        )
    }
}

/// Does challenger `b` beat incumbent `a`? Deeper fidelity first (exact
/// integer cross-multiplication — no float division), then canonical
/// score bits, then the earlier trial. Strict: on a complete tie the
/// incumbent (earlier bracket) stands.
fn deeper_then_better(b: &BracketBest, a: &BracketBest) -> bool {
    let depth_b = b.num as u64 * a.den as u64;
    let depth_a = a.num as u64 * b.den as u64;
    if depth_b != depth_a {
        return depth_b > depth_a;
    }
    let sb = f64::from_bits(canonical_f64_bits(b.score));
    let sa = f64::from_bits(canonical_f64_bits(a.score));
    match sb.total_cmp(&sa) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => b.index < a.index,
    }
}

/// Adapter: a fidelity-oblivious [`BatchObjective`] under the Hyperband
/// schedule.
struct IgnoreFidelityBatch<'a>(&'a dyn BatchObjective);

impl BatchFidelityObjective for IgnoreFidelityBatch<'_> {
    fn evaluate_at(&self, config: &Config, _fidelity: &Fidelity) -> TrialOutcome {
        self.0.evaluate_outcome(config)
    }
}

/// Adapter: a fidelity-oblivious serial [`Objective`] under the schedule.
struct IgnoreFidelity<'a>(&'a mut dyn Objective);

impl FidelityObjective for IgnoreFidelity<'_> {
    fn evaluate_at(&mut self, config: &Config, _fidelity: &Fidelity) -> TrialOutcome {
        self.0.evaluate_outcome(config)
    }
}

impl Optimizer for Hyperband {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut adapter = IgnoreFidelity(objective);
        self.run(space, &mut FidelityEval::Serial(&mut adapter), budget)
    }

    fn name(&self) -> &'static str {
        "hyperband"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;

    fn space1d() -> SearchSpace {
        SearchSpace::builder()
            .add("x", Domain::float(-5.0, 5.0))
            .build()
            .unwrap()
    }

    fn history(out: &OptOutcome) -> String {
        out.trials
            .iter()
            .map(|t| format!("{}|{}#{:016x};", t.index, t.config, t.score.to_bits()))
            .collect()
    }

    #[test]
    fn default_bracket_plan_matches_the_hyperband_grid() {
        let hb = Hyperband::new(1);
        assert_eq!(
            hb.brackets(),
            vec![(0, 27, 1), (1, 12, 3), (2, 6, 9), (3, 4, 27)]
        );
        // Total evaluations: 40 + 17 + 8 + 4.
        let obj = |c: &Config, _f: &Fidelity| -c.float_or("x", 0.0).abs();
        let out = hb
            .optimize_fidelity_batch(&space1d(), &obj, &Budget::evals(1000), &Executor::new(1))
            .unwrap();
        assert_eq!(out.trials.len(), 69);
    }

    #[test]
    fn histories_are_thread_count_invariant() {
        let space = space1d();
        let obj =
            |c: &Config, f: &Fidelity| -c.float_or("x", 0.0).abs() * (1.0 + f.den() as f64 / 27.0);
        let hb = Hyperband::new(97);
        let one = hb
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(1000), &Executor::new(1))
            .unwrap();
        for threads in [2, 8] {
            let par = hb
                .optimize_fidelity_batch(
                    &space,
                    &obj,
                    &Budget::evals(1000),
                    &Executor::new(threads),
                )
                .unwrap();
            assert_eq!(history(&one), history(&par), "threads={threads}");
        }
        let serial = {
            let mut o = |c: &Config, f: &Fidelity| obj(c, f);
            hb.optimize_fidelity(&space, &mut o, &Budget::evals(1000))
                .unwrap()
        };
        assert_eq!(history(&one), history(&serial));
    }

    #[test]
    fn incumbent_prefers_deeper_fidelity_across_brackets() {
        // Cheap rungs report wildly inflated scores; the winner must be a
        // full-fidelity measurement regardless.
        let space = space1d();
        let obj = |c: &Config, f: &Fidelity| {
            let base = -c.float_or("x", 0.0).abs();
            if f.is_full() {
                base
            } else {
                base + 1000.0
            }
        };
        let out = Hyperband::new(5)
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(1000), &Executor::new(2))
            .unwrap();
        assert!(out.best_score <= 0.0, "best = {}", out.best_score);
    }

    #[test]
    fn budget_cuts_the_bracket_sequence_deterministically() {
        let space = space1d();
        let obj = |c: &Config, _f: &Fidelity| -c.float_or("x", 0.0).abs();
        let hb = Hyperband::new(11);
        // 50 evals: bracket 0 (40 evals) completes, bracket 1 is cut.
        let a = hb
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(50), &Executor::new(1))
            .unwrap();
        let b = hb
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(50), &Executor::new(8))
            .unwrap();
        assert_eq!(a.trials.len(), 50);
        assert_eq!(history(&a), history(&b));
    }
}
