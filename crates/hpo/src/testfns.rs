//! Standard continuous test functions (all formulated for *minimization*;
//! optimizer tests negate them). Used by unit tests and the
//! `hpo_optimizers` criterion bench.

/// Sphere: `Σ x_i²`, global minimum 0 at the origin.
pub fn sphere(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Rastrigin: `10 n + Σ (x_i² − 10 cos 2π x_i)`, highly multimodal, global
/// minimum 0 at the origin; domain conventionally `[-5.12, 5.12]`.
pub fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|v| v * v - 10.0 * (std::f64::consts::TAU * v).cos())
            .sum::<f64>()
}

/// Branin (2-D): three global minima with value ≈ 0.397887; domain
/// `x ∈ [-5, 10], y ∈ [0, 15]`.
pub fn branin(x: f64, y: f64) -> f64 {
    let a = 1.0;
    let b = 5.1 / (4.0 * std::f64::consts::PI * std::f64::consts::PI);
    let c = 5.0 / std::f64::consts::PI;
    let r = 6.0;
    let s = 10.0;
    let t = 1.0 / (8.0 * std::f64::consts::PI);
    a * (y - b * x * x + c * x - r).powi(2) + s * (1.0 - t) * x.cos() + s
}

/// Rosenbrock: `Σ 100 (x_{i+1} − x_i²)² + (1 − x_i)²`, narrow curved valley,
/// global minimum 0 at `(1, …, 1)`.
pub fn rosenbrock(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minima_are_where_the_textbooks_say() {
        assert_eq!(sphere(&[0.0, 0.0, 0.0]), 0.0);
        assert!(rastrigin(&[0.0, 0.0]).abs() < 1e-12);
        assert_eq!(rosenbrock(&[1.0, 1.0, 1.0]), 0.0);
        assert!((branin(std::f64::consts::PI, 2.275) - 0.397887).abs() < 1e-4);
    }

    #[test]
    fn functions_grow_away_from_minima() {
        assert!(sphere(&[1.0]) > sphere(&[0.5]));
        assert!(rosenbrock(&[0.0, 0.0]) > 0.0);
        assert!(rastrigin(&[2.5, 2.5]) > rastrigin(&[0.0, 0.0]));
    }
}
