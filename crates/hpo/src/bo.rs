//! Bayesian Optimization (§II-A).
//!
//! "BO works by fitting a probabilistic surrogate model to all observations
//! of the target black box function made so far, and then using the
//! predictive distribution of the probabilistic model, to decide which point
//! to evaluate next."
//!
//! Surrogate: a Gaussian process over the space's dense encoding
//! ([`crate::space::SearchSpace::encode`]) with an RBF kernel; the length
//! scale is refit each iteration by maximizing the log marginal likelihood
//! over a small candidate ladder. Acquisition: expected improvement,
//! maximized over a pool of random samples plus local perturbations of the
//! incumbent. Proposals are decoded and repaired, so BO never emits an
//! invalid configuration even on conditional spaces.

use crate::budget::Budget;
use crate::builder::{OptimizerBuilder, OptimizerCore};
use crate::linalg::{cholesky, sq_dist, Cholesky, SquareMatrix};
use crate::objective::{
    eval_batch_serial, finish_run, trace_run_start, Objective, OptOutcome, Optimizer, Quarantine,
    Trial,
};
use crate::space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GP-based Bayesian optimizer.
#[derive(Debug, Clone)]
pub struct BayesianOptimization {
    /// Random initial-design size before the model kicks in.
    pub init_design: usize,
    /// Acquisition candidate pool: random samples per iteration.
    pub random_candidates: usize,
    /// Acquisition candidate pool: perturbations of the incumbent.
    pub local_candidates: usize,
    /// Observation-noise variance of the GP.
    pub noise: f64,
    /// Cap on observations used to fit the GP (best + most recent survive).
    pub max_gp_points: usize,
    core: OptimizerCore,
}

impl OptimizerBuilder for BayesianOptimization {
    fn core(&self) -> &OptimizerCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut OptimizerCore {
        &mut self.core
    }
}

impl BayesianOptimization {
    pub fn new(seed: u64) -> BayesianOptimization {
        BayesianOptimization {
            init_design: 8,
            random_candidates: 256,
            local_candidates: 64,
            noise: 1e-6,
            max_gp_points: 200,
            core: OptimizerCore::new("bayesian-optimization", seed),
        }
    }
}

/// Fitted GP posterior over encoded configs.
struct Gp {
    xs: Vec<Vec<f64>>,
    chol: Cholesky,
    alpha: Vec<f64>,
    length_scale: f64,
    y_mean: f64,
    y_std: f64,
}

fn rbf(a: &[f64], b: &[f64], length_scale: f64) -> f64 {
    (-0.5 * sq_dist(a, b) / (length_scale * length_scale)).exp()
}

impl Gp {
    /// Fit with the given length scale; returns the log marginal likelihood
    /// alongside the model.
    fn fit(xs: &[Vec<f64>], ys: &[f64], length_scale: f64, noise: f64) -> Option<(Gp, f64)> {
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let var = ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-9);
        let yn: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        let mut k = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let v = rbf(&xs[i], &xs[j], length_scale) + if i == j { noise } else { 0.0 };
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        let chol = cholesky(&k)?;
        let alpha = chol.solve(&yn);
        // log p(y) = -0.5 yᵀ α − 0.5 log|K| − n/2 log 2π
        let lml = -0.5 * crate::linalg::dot(&yn, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (std::f64::consts::TAU).ln();
        Some((
            Gp {
                xs: xs.to_vec(),
                chol,
                alpha,
                length_scale,
                y_mean,
                y_std,
            },
            lml,
        ))
    }

    /// Fit over a ladder of length scales, keeping the most likely.
    fn fit_best(xs: &[Vec<f64>], ys: &[f64], noise: f64) -> Option<Gp> {
        const LADDER: [f64; 6] = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0];
        let mut best: Option<(Gp, f64)> = None;
        for &ls in &LADDER {
            if let Some((gp, lml)) = Gp::fit(xs, ys, ls, noise) {
                if best.as_ref().is_none_or(|(_, b)| lml > *b) {
                    best = Some((gp, lml));
                }
            }
        }
        best.map(|(gp, _)| gp)
    }

    /// Posterior mean and standard deviation at `x` (de-standardized).
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| rbf(x, xi, self.length_scale))
            .collect();
        let mean_n = crate::linalg::dot(&kstar, &self.alpha);
        let v = self.chol.solve_lower(&kstar);
        let var_n = (1.0 - crate::linalg::dot(&v, &v)).max(1e-12);
        (mean_n * self.y_std + self.y_mean, var_n.sqrt() * self.y_std)
    }
}

/// Standard normal pdf/cdf for EI.
fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt()
}

fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf (|ε| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of mean/std over the incumbent `best`.
fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / std;
    (mean - best) * big_phi(z) + std * phi(z)
}

impl Optimizer for BayesianOptimization {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut rng = StdRng::seed_from_u64(self.core.seed);
        let mut tracker = budget.start();
        let mut trials: Vec<Trial> = Vec::new();
        let mut quarantine = Quarantine::new();
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();

        // Contained evaluation through the shared batch path (quarantine,
        // cache and trial recording all included): failures score the
        // finite penalty (keeping the GP's training targets finite) and
        // repeat offenders are quarantined so the surrogate never revisits
        // them.
        trace_run_start(&self.core);
        let core = self.core.clone();
        let evaluate = |config: Config,
                        trials: &mut Vec<Trial>,
                        quarantine: &mut Quarantine,
                        xs: &mut Vec<Vec<f64>>,
                        ys: &mut Vec<f64>,
                        tracker: &mut crate::budget::BudgetTracker,
                        objective: &mut dyn Objective| {
            let scored =
                eval_batch_serial(vec![config], objective, tracker, trials, quarantine, &core);
            for (config, score) in scored {
                xs.push(space.encode(&config));
                ys.push(score);
            }
        };

        // Initial design.
        for _ in 0..self.init_design.max(2) {
            if tracker.exhausted() {
                break;
            }
            let c = space.sample(&mut rng);
            evaluate(
                c,
                &mut trials,
                &mut quarantine,
                &mut xs,
                &mut ys,
                &mut tracker,
                objective,
            );
        }

        while !tracker.exhausted() {
            // Trim the GP training set if it outgrew the cap: keep the best
            // quarter plus the most recent.
            let (fit_xs, fit_ys): (Vec<Vec<f64>>, Vec<f64>) = if xs.len() > self.max_gp_points {
                let mut order: Vec<usize> = (0..xs.len()).collect();
                order.sort_by(|&a, &b| ys[b].total_cmp(&ys[a]));
                let keep_best = self.max_gp_points / 4;
                let mut keep: Vec<usize> = order[..keep_best].to_vec();
                let recent_from = xs.len() - (self.max_gp_points - keep_best);
                keep.extend(recent_from..xs.len());
                keep.sort_unstable();
                keep.dedup();
                (
                    keep.iter().map(|&i| xs[i].clone()).collect(),
                    keep.iter().map(|&i| ys[i]).collect(),
                )
            } else {
                (xs.clone(), ys.clone())
            };

            let gp = Gp::fit_best(&fit_xs, &fit_ys, self.noise);
            let best_y = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let incumbent_idx = ys
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                // lint:allow(no-panic-lib): `ys` mirrors `trials`, checked nonempty above
                .unwrap();
            let incumbent = trials[incumbent_idx].config.clone();

            let next = match gp {
                Some(gp) => {
                    let mut best_cand: Option<(Config, f64)> = None;
                    let consider = |c: Config, gp: &Gp, best_cand: &mut Option<(Config, f64)>| {
                        let x = space.encode(&c);
                        let (m, s) = gp.predict(&x);
                        let ei = expected_improvement(m, s, best_y);
                        if best_cand.as_ref().is_none_or(|(_, b)| ei > *b) {
                            *best_cand = Some((c, ei));
                        }
                    };
                    for _ in 0..self.random_candidates {
                        consider(space.sample(&mut rng), &gp, &mut best_cand);
                    }
                    for _ in 0..self.local_candidates {
                        consider(
                            space.neighbor(&incumbent, 0.4, 0.15, &mut rng),
                            &gp,
                            &mut best_cand,
                        );
                    }
                    match best_cand {
                        // EI ≈ 0 everywhere ⇒ the model is saturated; explore.
                        Some((_, ei)) if ei <= 1e-12 => space.sample(&mut rng),
                        Some((c, _)) => c,
                        None => space.sample(&mut rng),
                    }
                }
                // Degenerate kernel matrix ⇒ fall back to random proposal.
                None => space.sample(&mut rng),
            };
            evaluate(
                next,
                &mut trials,
                &mut quarantine,
                &mut xs,
                &mut ys,
                &mut tracker,
                objective,
            );
        }
        finish_run(&self.core, &tracker, trials, quarantine)
    }

    fn name(&self) -> &'static str {
        "bayesian-optimization"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::random::RandomSearch;
    use crate::space::{Condition, Domain};
    use crate::testfns::branin;
    use automodel_parallel::TrialCache;
    use std::sync::Arc;

    fn branin_space() -> SearchSpace {
        SearchSpace::builder()
            .add("x", Domain::float(-5.0, 10.0))
            .add("y", Domain::float(0.0, 15.0))
            .build()
            .unwrap()
    }

    #[test]
    fn erf_matches_reference_points() {
        // A&S 7.1.26 carries ≈1.5e-7 max error.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn ei_is_zero_when_certain_and_worse() {
        assert_eq!(expected_improvement(0.0, 0.0, 1.0), 0.0);
        assert!(expected_improvement(2.0, 0.0, 1.0) > 0.9);
        // Uncertainty adds value even below the incumbent.
        assert!(expected_improvement(0.5, 1.0, 1.0) > 0.0);
    }

    #[test]
    fn gp_interpolates_training_points() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![0.0, 1.0, 0.0];
        let (gp, _) = Gp::fit(&xs, &ys, 0.25, 1e-8).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, s) = gp.predict(x);
            assert!((m - y).abs() < 1e-3, "mean {m} vs {y}");
            assert!(s < 0.05, "std too large at a training point: {s}");
        }
        // Far away the posterior reverts toward the mean with the prior's
        // full standard deviation (y_std of the training targets ≈ 0.471).
        let (_, s) = gp.predict(&[5.0]);
        assert!(s > 0.45, "far-field std = {s}");
    }

    #[test]
    fn bo_beats_random_search_on_branin() {
        let budget = Budget::evals(60);
        let mut bo_obj =
            FnObjective(|c: &Config| -branin(c.float_or("x", 0.0), c.float_or("y", 0.0)));
        let bo = BayesianOptimization::new(3)
            .optimize(&branin_space(), &mut bo_obj, &budget)
            .unwrap();
        // Average random search over a few seeds for a fair comparison.
        let mut rs_scores = Vec::new();
        for seed in 0..5 {
            let mut rs_obj =
                FnObjective(|c: &Config| -branin(c.float_or("x", 0.0), c.float_or("y", 0.0)));
            rs_scores.push(
                RandomSearch::new(seed)
                    .optimize(&branin_space(), &mut rs_obj, &budget)
                    .unwrap()
                    .best_score,
            );
        }
        let rs_mean = rs_scores.iter().sum::<f64>() / rs_scores.len() as f64;
        assert!(
            bo.best_score >= rs_mean,
            "BO {} should beat mean RS {}",
            bo.best_score,
            rs_mean
        );
        // Branin's optimum is ≈ −0.3979; BO with 60 evals should get close.
        assert!(bo.best_score > -1.5, "bo best = {}", bo.best_score);
    }

    #[test]
    fn bo_emits_only_valid_configs_on_conditional_space() {
        let space = SearchSpace::builder()
            .add("mode", Domain::cat(&["a", "b"]))
            .add_if("k", Domain::float(0.0, 1.0), Condition::cat_eq("mode", 1))
            .build()
            .unwrap();
        let mut obj = FnObjective(|c: &Config| c.float_or("k", 0.2));
        let out = BayesianOptimization::new(1)
            .optimize(&space, &mut obj, &Budget::evals(40))
            .unwrap();
        for t in &out.trials {
            space.validate(&t.config).unwrap();
        }
        assert!(out.best_score > 0.8);
    }

    #[test]
    fn bo_respects_eval_budget() {
        let mut n = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            n += 1;
            0.0
        });
        // Counting live objective calls needs dedup off: the model may
        // re-propose the exact incumbent, which the cache would serve.
        BayesianOptimization::new(2)
            .with_cache(Arc::new(TrialCache::disabled()))
            .optimize(&branin_space(), &mut obj, &Budget::evals(15));
        assert_eq!(n, 15);
    }

    #[test]
    fn bo_is_deterministic_under_seed() {
        let run = |seed| {
            let mut obj =
                FnObjective(|c: &Config| -branin(c.float_or("x", 0.0), c.float_or("y", 0.0)));
            BayesianOptimization::new(seed)
                .optimize(&branin_space(), &mut obj, &Budget::evals(25))
                .unwrap()
                .best_score
        };
        assert_eq!(run(4), run(4));
    }
}
