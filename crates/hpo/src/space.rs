//! Typed hyperparameter search spaces with conditional activation.
//!
//! A [`SearchSpace`] is an ordered list of [`ParamSpec`]s. A parameter may
//! carry a [`Condition`]: it is *active* only when its parent parameter takes
//! one of the listed values. Parents must be declared before children, so
//! activity can be resolved in one forward pass. A [`Config`] assigns a
//! [`ParamValue`] to every *active* parameter and nothing else.
//!
//! The same machinery serves three users:
//! * flat spaces for single-algorithm tuning (UDR, Algorithm 5);
//! * the MLP architecture space of Table II (`momentum` gated on
//!   `solver = sgd`);
//! * the hierarchical Auto-Weka CASH space (everything gated on the root
//!   `algorithm` parameter).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Value domain of one hyperparameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// Integer range, inclusive. `log` samples on a log scale (requires lo ≥ 1).
    Int { lo: i64, hi: i64, log: bool },
    /// Float range, inclusive. `log` samples on a log scale (requires lo > 0).
    Float { lo: f64, hi: f64, log: bool },
    /// Categorical options, stored by index.
    Cat { options: Vec<String> },
    /// Boolean flag.
    Bool,
}

impl Domain {
    /// Convenience constructors.
    pub fn int(lo: i64, hi: i64) -> Domain {
        Domain::Int { lo, hi, log: false }
    }
    pub fn int_log(lo: i64, hi: i64) -> Domain {
        Domain::Int { lo, hi, log: true }
    }
    pub fn float(lo: f64, hi: f64) -> Domain {
        Domain::Float { lo, hi, log: false }
    }
    pub fn float_log(lo: f64, hi: f64) -> Domain {
        Domain::Float { lo, hi, log: true }
    }
    pub fn cat(options: &[&str]) -> Domain {
        Domain::Cat {
            options: options.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of encoding dimensions this domain occupies.
    fn encoded_width(&self) -> usize {
        match self {
            Domain::Cat { options } => options.len(),
            _ => 1,
        }
    }

    /// True when `value`'s type and range match the domain.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (self, value) {
            (Domain::Int { lo, hi, .. }, ParamValue::Int(v)) => v >= lo && v <= hi,
            (Domain::Float { lo, hi, .. }, ParamValue::Float(v)) => {
                v.is_finite() && *v >= *lo && *v <= *hi
            }
            (Domain::Cat { options }, ParamValue::Cat(i)) => *i < options.len(),
            (Domain::Bool, ParamValue::Bool(_)) => true,
            _ => false,
        }
    }

    /// Sample a uniform value from the domain.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ParamValue {
        match self {
            Domain::Int { lo, hi, log: false } => ParamValue::Int(rng.gen_range(*lo..=*hi)),
            Domain::Int { lo, hi, log: true } => {
                let (llo, lhi) = ((*lo as f64).ln(), (*hi as f64).ln());
                let v = rng.gen_range(llo..=lhi).exp().round() as i64;
                ParamValue::Int(v.clamp(*lo, *hi))
            }
            Domain::Float { lo, hi, log: false } => ParamValue::Float(rng.gen_range(*lo..=*hi)),
            Domain::Float { lo, hi, log: true } => {
                let (llo, lhi) = (lo.ln(), hi.ln());
                ParamValue::Float(rng.gen_range(llo..=lhi).exp().clamp(*lo, *hi))
            }
            Domain::Cat { options } => ParamValue::Cat(rng.gen_range(0..options.len())),
            Domain::Bool => ParamValue::Bool(rng.gen()),
        }
    }

    /// Mutate `value` locally: numeric values take a bounded step of relative
    /// size `strength` ∈ (0, 1]; categorical/bool resample.
    pub fn mutate<R: Rng>(&self, value: &ParamValue, strength: f64, rng: &mut R) -> ParamValue {
        match (self, value) {
            (Domain::Int { lo, hi, .. }, ParamValue::Int(v)) => {
                let span = ((hi - lo) as f64 * strength).max(1.0);
                let step = rng.gen_range(-span..=span).round() as i64;
                ParamValue::Int((v + step).clamp(*lo, *hi))
            }
            (Domain::Float { lo, hi, log }, ParamValue::Float(v)) => {
                if *log {
                    let (llo, lhi) = (lo.ln(), hi.ln());
                    let span = (lhi - llo) * strength;
                    let nv = (v.ln() + rng.gen_range(-span..=span)).exp();
                    ParamValue::Float(nv.clamp(*lo, *hi))
                } else {
                    let span = (hi - lo) * strength;
                    ParamValue::Float((v + rng.gen_range(-span..=span)).clamp(*lo, *hi))
                }
            }
            _ => self.sample(rng),
        }
    }

    /// `levels` grid points covering the domain (categorical/bool enumerate
    /// all options regardless of `levels`).
    pub fn grid(&self, levels: usize) -> Vec<ParamValue> {
        let levels = levels.max(1);
        match self {
            Domain::Int { lo, hi, .. } => {
                let count = ((hi - lo + 1) as usize).min(levels);
                if count <= 1 {
                    return vec![ParamValue::Int(*lo)];
                }
                (0..count)
                    .map(|i| {
                        let t = i as f64 / (count - 1) as f64;
                        ParamValue::Int(((*lo as f64) + t * (hi - lo) as f64).round() as i64)
                    })
                    .collect()
            }
            Domain::Float { lo, hi, log } => {
                if levels == 1 {
                    return vec![ParamValue::Float((lo + hi) / 2.0)];
                }
                (0..levels)
                    .map(|i| {
                        let t = i as f64 / (levels - 1) as f64;
                        let v = if *log {
                            (lo.ln() + t * (hi.ln() - lo.ln())).exp()
                        } else {
                            lo + t * (hi - lo)
                        };
                        ParamValue::Float(v)
                    })
                    .collect()
            }
            Domain::Cat { options } => (0..options.len()).map(ParamValue::Cat).collect(),
            Domain::Bool => vec![ParamValue::Bool(false), ParamValue::Bool(true)],
        }
    }
}

/// A concrete hyperparameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    Int(i64),
    Float(f64),
    /// Index into the categorical domain's `options`.
    Cat(usize),
    Bool(bool),
}

impl ParamValue {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }
    pub fn as_cat(&self) -> Option<usize> {
        match self {
            ParamValue::Cat(v) => Some(*v),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// Activation condition: the parameter is active iff `parent` is active and
/// its value is in `values`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    pub parent: String,
    pub values: Vec<ParamValue>,
}

impl Condition {
    /// Active when `parent` equals the categorical option `option`.
    pub fn cat_eq(parent: &str, option_index: usize) -> Condition {
        Condition {
            parent: parent.to_string(),
            values: vec![ParamValue::Cat(option_index)],
        }
    }
}

/// One hyperparameter: name, domain, optional activation condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    pub name: String,
    pub domain: Domain,
    pub condition: Option<Condition>,
}

/// A configuration: values for every *active* parameter.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Config(pub BTreeMap<String, ParamValue>);

impl Config {
    pub fn new() -> Config {
        Config(BTreeMap::new())
    }
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.0.get(name)
    }
    pub fn set(&mut self, name: impl Into<String>, value: ParamValue) {
        self.0.insert(name.into(), value);
    }
    pub fn with(mut self, name: impl Into<String>, value: ParamValue) -> Config {
        self.set(name, value);
        self
    }
    /// Typed accessors with a default (classifiers use these so that a
    /// partially-specified config still builds).
    pub fn int_or(&self, name: &str, default: i64) -> i64 {
        self.get(name)
            .and_then(ParamValue::as_int)
            .unwrap_or(default)
    }
    pub fn float_or(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(ParamValue::as_float)
            .unwrap_or(default)
    }
    pub fn cat_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(ParamValue::as_cat)
            .unwrap_or(default)
    }
    pub fn bool_or(&self, name: &str, default: bool) -> bool {
        self.get(name)
            .and_then(ParamValue::as_bool)
            .unwrap_or(default)
    }
    pub fn len(&self) -> usize {
        self.0.len()
    }
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ParamValue)> {
        self.0.iter()
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (k, v) in &self.0 {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match v {
                ParamValue::Int(i) => write!(f, "{k}={i}")?,
                ParamValue::Float(x) => write!(f, "{k}={x:.4}")?,
                ParamValue::Cat(c) => write!(f, "{k}=#{c}")?,
                ParamValue::Bool(b) => write!(f, "{k}={b}")?,
            }
        }
        write!(f, "}}")
    }
}

/// Errors raised while building or validating against a space.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    DuplicateParam(String),
    UnknownParent { param: String, parent: String },
    ParentAfterChild { param: String, parent: String },
    MissingActive(String),
    UnexpectedInactive(String),
    UnknownParam(String),
    OutOfDomain(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateParam(p) => write!(f, "duplicate parameter '{p}'"),
            SpaceError::UnknownParent { param, parent } => {
                write!(
                    f,
                    "parameter '{param}' conditions on unknown parent '{parent}'"
                )
            }
            SpaceError::ParentAfterChild { param, parent } => {
                write!(
                    f,
                    "parameter '{param}' conditions on later parent '{parent}'"
                )
            }
            SpaceError::MissingActive(p) => write!(f, "active parameter '{p}' missing from config"),
            SpaceError::UnexpectedInactive(p) => {
                write!(f, "inactive parameter '{p}' present in config")
            }
            SpaceError::UnknownParam(p) => write!(f, "config has unknown parameter '{p}'"),
            SpaceError::OutOfDomain(p) => write!(f, "value of '{p}' outside its domain"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// An ordered, validated set of parameter specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<ParamSpec>,
    /// Total encoding width (numeric dims + one-hot blocks).
    encoded_width: usize,
}

impl SearchSpace {
    /// Build a space, checking name uniqueness and parent ordering.
    pub fn new(params: Vec<ParamSpec>) -> Result<SearchSpace, SpaceError> {
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, p) in params.iter().enumerate() {
            if seen.contains_key(p.name.as_str()) {
                return Err(SpaceError::DuplicateParam(p.name.clone()));
            }
            if let Some(cond) = &p.condition {
                if !seen.contains_key(cond.parent.as_str()) {
                    // Parent may appear later — that's an error, or
                    // genuinely unknown.
                    if params.iter().any(|q| q.name == cond.parent) {
                        return Err(SpaceError::ParentAfterChild {
                            param: p.name.clone(),
                            parent: cond.parent.clone(),
                        });
                    }
                    return Err(SpaceError::UnknownParent {
                        param: p.name.clone(),
                        parent: cond.parent.clone(),
                    });
                }
            }
            seen.insert(p.name.as_str(), i);
        }
        let encoded_width = params.iter().map(|p| p.domain.encoded_width()).sum();
        Ok(SearchSpace {
            params,
            encoded_width,
        })
    }

    /// Builder-style constructor for unconditional params.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder { params: Vec::new() }
    }

    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Look up a parameter spec by name.
    pub fn param(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Is `spec` active under `config`? (Parents are earlier, so any fully
    /// forward-built config resolves this correctly.)
    pub fn is_active(&self, spec: &ParamSpec, config: &Config) -> bool {
        match &spec.condition {
            None => true,
            Some(cond) => config
                .get(&cond.parent)
                .map(|v| cond.values.contains(v))
                .unwrap_or(false),
        }
    }

    /// Sample a uniform random configuration (active params only).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Config {
        let mut config = Config::new();
        for spec in &self.params {
            if self.is_active(spec, &config) {
                config.set(spec.name.clone(), spec.domain.sample(rng));
            }
        }
        config
    }

    /// Validate `config`: exactly the active params, all in range.
    pub fn validate(&self, config: &Config) -> Result<(), SpaceError> {
        let mut expected = 0usize;
        for spec in &self.params {
            if self.is_active(spec, config) {
                expected += 1;
                match config.get(&spec.name) {
                    None => return Err(SpaceError::MissingActive(spec.name.clone())),
                    Some(v) if !spec.domain.contains(v) => {
                        return Err(SpaceError::OutOfDomain(spec.name.clone()))
                    }
                    Some(_) => {}
                }
            } else if config.get(&spec.name).is_some() {
                return Err(SpaceError::UnexpectedInactive(spec.name.clone()));
            }
        }
        if config.len() != expected {
            for name in config.0.keys() {
                if self.param(name).is_none() {
                    return Err(SpaceError::UnknownParam(name.clone()));
                }
            }
        }
        Ok(())
    }

    /// Repair a raw assignment into a valid config: walk forward, keep
    /// provided in-range values for active params, sample anything missing
    /// or broken, drop inactive leftovers. Used after GA crossover and BO
    /// acquisition rounding.
    pub fn repair<R: Rng>(&self, raw: &Config, rng: &mut R) -> Config {
        let mut config = Config::new();
        for spec in &self.params {
            if self.is_active(spec, &config) {
                let value = match raw.get(&spec.name) {
                    Some(v) if spec.domain.contains(v) => v.clone(),
                    _ => spec.domain.sample(rng),
                };
                config.set(spec.name.clone(), value);
            }
        }
        config
    }

    /// Encoding width (for surrogate models).
    pub fn encoded_width(&self) -> usize {
        self.encoded_width
    }

    /// Encode a config as a dense `[0,1]`-ish vector. Numeric params map to
    /// their normalized position (log-scaled when the domain is log);
    /// categorical params one-hot; bool 0/1; *inactive* numeric dims encode
    /// 0.5 and inactive one-hot blocks all zeros, so inactive regions are
    /// neutral for distance-based surrogates.
    pub fn encode(&self, config: &Config) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.encoded_width);
        for spec in &self.params {
            let active_value = config.get(&spec.name);
            match &spec.domain {
                Domain::Int { lo, hi, log } => {
                    let v = active_value.and_then(ParamValue::as_int);
                    out.push(match v {
                        Some(v) if hi > lo => {
                            if *log {
                                ((v as f64).ln() - (*lo as f64).ln())
                                    / ((*hi as f64).ln() - (*lo as f64).ln())
                            } else {
                                (v - lo) as f64 / (hi - lo) as f64
                            }
                        }
                        Some(_) => 0.0,
                        None => 0.5,
                    });
                }
                Domain::Float { lo, hi, log } => {
                    let v = active_value.and_then(ParamValue::as_float);
                    out.push(match v {
                        Some(v) if hi > lo => {
                            if *log {
                                (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
                            } else {
                                (v - lo) / (hi - lo)
                            }
                        }
                        Some(_) => 0.0,
                        None => 0.5,
                    });
                }
                Domain::Cat { options } => {
                    let start = out.len();
                    out.resize(start + options.len(), 0.0);
                    if let Some(i) = active_value.and_then(ParamValue::as_cat) {
                        if i < options.len() {
                            out[start + i] = 1.0;
                        }
                    }
                }
                Domain::Bool => {
                    out.push(match active_value.and_then(ParamValue::as_bool) {
                        Some(true) => 1.0,
                        Some(false) => 0.0,
                        None => 0.5,
                    });
                }
            }
        }
        out
    }

    /// Decode a dense vector back into the nearest valid config (inverse of
    /// [`SearchSpace::encode`], resolving conditionals forward).
    pub fn decode(&self, vector: &[f64]) -> Config {
        let mut config = Config::new();
        let mut offset = 0usize;
        for spec in &self.params {
            let width = spec.domain.encoded_width();
            let slice = &vector[offset..offset + width];
            offset += width;
            if !self.is_active(spec, &config) {
                continue;
            }
            let value = match &spec.domain {
                Domain::Int { lo, hi, log } => {
                    let t = slice[0].clamp(0.0, 1.0);
                    let v = if *log {
                        ((*lo as f64).ln() + t * ((*hi as f64).ln() - (*lo as f64).ln())).exp()
                    } else {
                        *lo as f64 + t * (hi - lo) as f64
                    };
                    ParamValue::Int((v.round() as i64).clamp(*lo, *hi))
                }
                Domain::Float { lo, hi, log } => {
                    let t = slice[0].clamp(0.0, 1.0);
                    let v = if *log {
                        (lo.ln() + t * (hi.ln() - lo.ln())).exp()
                    } else {
                        lo + t * (hi - lo)
                    };
                    ParamValue::Float(v.clamp(*lo, *hi))
                }
                Domain::Cat { options } => {
                    let best = slice
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    ParamValue::Cat(best.min(options.len() - 1))
                }
                Domain::Bool => ParamValue::Bool(slice[0] >= 0.5),
            };
            config.set(spec.name.clone(), value);
        }
        config
    }

    /// Perturb one configuration: each active param mutates with probability
    /// `rate`; conditional structure is re-resolved afterwards.
    pub fn neighbor<R: Rng>(
        &self,
        config: &Config,
        rate: f64,
        strength: f64,
        rng: &mut R,
    ) -> Config {
        let mut raw = config.clone();
        for spec in &self.params {
            if let Some(v) = config.get(&spec.name) {
                if rng.gen::<f64>() < rate {
                    raw.set(spec.name.clone(), spec.domain.mutate(v, strength, rng));
                }
            }
        }
        self.repair(&raw, rng)
    }

    /// Total grid size with `levels` points per numeric param (used to guard
    /// against grid explosions before enumerating).
    pub fn grid_size(&self, levels: usize) -> usize {
        self.params
            .iter()
            .map(|p| p.domain.grid(levels).len())
            .product()
    }
}

/// Fluent builder for spaces.
pub struct SpaceBuilder {
    params: Vec<ParamSpec>,
}

impl SpaceBuilder {
    pub fn add(mut self, name: &str, domain: Domain) -> Self {
        self.params.push(ParamSpec {
            name: name.to_string(),
            domain,
            condition: None,
        });
        self
    }

    pub fn add_if(mut self, name: &str, domain: Domain, condition: Condition) -> Self {
        self.params.push(ParamSpec {
            name: name.to_string(),
            domain,
            condition: Some(condition),
        });
        self
    }

    pub fn build(self) -> Result<SearchSpace, SpaceError> {
        SearchSpace::new(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conditional_space() -> SearchSpace {
        SearchSpace::builder()
            .add("solver", Domain::cat(&["lbfgs", "sgd", "adam"]))
            .add_if(
                "momentum",
                Domain::float(0.01, 0.99),
                Condition::cat_eq("solver", 1),
            )
            .add("layers", Domain::int(1, 20))
            .build()
            .unwrap()
    }

    #[test]
    fn sample_respects_conditions() {
        let space = conditional_space();
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_active = false;
        let mut saw_inactive = false;
        for _ in 0..100 {
            let c = space.sample(&mut rng);
            space.validate(&c).unwrap();
            let is_sgd = c.cat_or("solver", 9) == 1;
            assert_eq!(c.get("momentum").is_some(), is_sgd);
            saw_active |= is_sgd;
            saw_inactive |= !is_sgd;
        }
        assert!(saw_active && saw_inactive);
    }

    #[test]
    fn validate_rejects_missing_and_extra() {
        let space = conditional_space();
        let c = Config::new()
            .with("solver", ParamValue::Cat(1))
            .with("layers", ParamValue::Int(3));
        assert_eq!(
            space.validate(&c),
            Err(SpaceError::MissingActive("momentum".into()))
        );
        let c = Config::new()
            .with("solver", ParamValue::Cat(0))
            .with("momentum", ParamValue::Float(0.5))
            .with("layers", ParamValue::Int(3));
        assert_eq!(
            space.validate(&c),
            Err(SpaceError::UnexpectedInactive("momentum".into()))
        );
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        let space = conditional_space();
        let c = Config::new()
            .with("solver", ParamValue::Cat(0))
            .with("layers", ParamValue::Int(99));
        assert_eq!(
            space.validate(&c),
            Err(SpaceError::OutOfDomain("layers".into()))
        );
    }

    #[test]
    fn repair_fixes_crossover_wreckage() {
        let space = conditional_space();
        let mut rng = StdRng::seed_from_u64(2);
        // momentum present though solver is lbfgs; layers out of range.
        let raw = Config::new()
            .with("solver", ParamValue::Cat(0))
            .with("momentum", ParamValue::Float(0.5))
            .with("layers", ParamValue::Int(500));
        let fixed = space.repair(&raw, &mut rng);
        space.validate(&fixed).unwrap();
        assert!(fixed.get("momentum").is_none());
    }

    #[test]
    fn space_rejects_duplicate_and_bad_parents() {
        let err = SearchSpace::builder()
            .add("a", Domain::int(0, 1))
            .add("a", Domain::int(0, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateParam("a".into()));
        let err = SearchSpace::builder()
            .add_if("b", Domain::int(0, 1), Condition::cat_eq("missing", 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SpaceError::UnknownParent { .. }));
        let err = SearchSpace::new(vec![
            ParamSpec {
                name: "child".into(),
                domain: Domain::Bool,
                condition: Some(Condition::cat_eq("parent", 0)),
            },
            ParamSpec {
                name: "parent".into(),
                domain: Domain::cat(&["x"]),
                condition: None,
            },
        ])
        .unwrap_err();
        assert!(matches!(err, SpaceError::ParentAfterChild { .. }));
    }

    #[test]
    fn encode_decode_roundtrip_on_flat_space() {
        let space = SearchSpace::builder()
            .add("i", Domain::int(0, 10))
            .add("f", Domain::float(-1.0, 1.0))
            .add("c", Domain::cat(&["a", "b", "c"]))
            .add("b", Domain::Bool)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            let v = space.encode(&c);
            assert_eq!(v.len(), space.encoded_width());
            let back = space.decode(&v);
            assert_eq!(back.get("i"), c.get("i"));
            assert_eq!(back.get("c"), c.get("c"));
            assert_eq!(back.get("b"), c.get("b"));
            let f0 = c.float_or("f", 9.0);
            let f1 = back.float_or("f", -9.0);
            assert!((f0 - f1).abs() < 1e-9);
        }
    }

    #[test]
    fn log_domains_sample_in_range_and_skew_low() {
        let d = Domain::float_log(1e-4, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut below = 0;
        for _ in 0..1000 {
            let v = d.sample(&mut rng).as_float().unwrap();
            assert!((1e-4..=1.0).contains(&v));
            if v < 1e-2 {
                below += 1;
            }
        }
        // Log-uniform puts half the mass below the geometric midpoint 1e-2.
        assert!(below > 350, "only {below} of 1000 below 1e-2");
    }

    #[test]
    fn mutate_stays_in_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Domain::int(0, 5);
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            let m = d.mutate(&v, 0.5, &mut rng);
            assert!(d.contains(&m));
        }
    }

    #[test]
    fn grid_covers_endpoints() {
        let d = Domain::float(0.0, 1.0);
        let g = d.grid(3);
        assert_eq!(g.len(), 3);
        assert_eq!(g[0].as_float(), Some(0.0));
        assert_eq!(g[2].as_float(), Some(1.0));
        let d = Domain::int(1, 2);
        assert_eq!(d.grid(5).len(), 2);
        assert_eq!(Domain::Bool.grid(7).len(), 2);
    }

    #[test]
    fn grid_size_multiplies() {
        let space = conditional_space();
        // 3 (cat) * momentum grid * layers grid — conditionals count fully,
        // this is an upper bound used only as an explosion guard.
        assert_eq!(space.grid_size(2), 3 * 2 * 2);
    }

    #[test]
    fn neighbor_output_is_always_valid() {
        let space = conditional_space();
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = space.sample(&mut rng);
        for _ in 0..100 {
            c = space.neighbor(&c, 0.7, 0.3, &mut rng);
            space.validate(&c).unwrap();
        }
    }

    #[test]
    fn display_is_stable() {
        let c = Config::new()
            .with("a", ParamValue::Int(3))
            .with("b", ParamValue::Float(0.25));
        assert_eq!(format!("{c}"), "{a=3, b=0.2500}");
    }
}
