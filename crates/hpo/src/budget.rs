//! Optimization budgets.
//!
//! The paper bounds searches three ways: evaluation counts (GA generations ×
//! population), wall-clock limits ("GA time limit = 10³ s", "30 s / 5 min"
//! CASH budgets), and target scores (architecture search stops when CV MSE
//! beats `Precision`). [`Budget`] combines all three; an optimizer stops at
//! whichever trips first.
//!
//! Time is never read from `Instant::now()` directly: a [`Clock`] is
//! injected (defaulting to [`MonotonicClock`]), so wall-clock budget tests
//! run instantly against a [`ManualClock`](automodel_parallel::ManualClock)
//! instead of sleeping. For parallel batches, a tracker bridges to the
//! thread-safe [`SharedBudget`] via [`BudgetTracker::share`] /
//! [`BudgetTracker::absorb`].

use automodel_parallel::{BudgetSpec, Clock, MonotonicClock, SharedBudget};
use std::sync::Arc;
use std::time::Duration;

/// Combined stopping criterion. A `None` component never trips.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    pub max_evals: Option<usize>,
    pub max_time: Option<Duration>,
    /// Stop as soon as a score ≥ `target` is observed (scores are maximized).
    pub target: Option<f64>,
}

impl Budget {
    /// Only an evaluation-count limit.
    pub fn evals(n: usize) -> Budget {
        Budget {
            max_evals: Some(n),
            ..Budget::default()
        }
    }

    /// Only a wall-clock limit.
    pub fn time(d: Duration) -> Budget {
        Budget {
            max_time: Some(d),
            ..Budget::default()
        }
    }

    /// Add a wall-clock limit.
    pub fn with_time(mut self, d: Duration) -> Budget {
        self.max_time = Some(d);
        self
    }

    /// Add a target score.
    pub fn with_target(mut self, t: f64) -> Budget {
        self.target = Some(t);
        self
    }

    /// Start tracking this budget on the real wall clock.
    pub fn start(&self) -> BudgetTracker {
        self.start_with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Start tracking this budget on an injected clock (tests use
    /// `ManualClock` to make deadline behaviour deterministic).
    pub fn start_with_clock(&self, clock: Arc<dyn Clock>) -> BudgetTracker {
        let started = clock.now();
        BudgetTracker {
            budget: self.clone(),
            clock,
            started,
            evals: 0,
            best: f64::NEG_INFINITY,
        }
    }
}

/// Live budget state carried through an optimization run.
#[derive(Clone)]
pub struct BudgetTracker {
    budget: Budget,
    clock: Arc<dyn Clock>,
    started: Duration,
    evals: usize,
    best: f64,
}

impl std::fmt::Debug for BudgetTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetTracker")
            .field("budget", &self.budget)
            .field("evals", &self.evals)
            .field("best", &self.best)
            .finish()
    }
}

impl BudgetTracker {
    /// Record one evaluation with its score.
    pub fn record(&mut self, score: f64) {
        self.evals += 1;
        if score > self.best {
            self.best = score;
        }
    }

    /// Evaluations recorded so far.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// Best score recorded so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Elapsed wall clock since [`Budget::start`].
    pub fn elapsed(&self) -> Duration {
        self.clock.now().saturating_sub(self.started)
    }

    /// True when any component of the budget has tripped.
    pub fn exhausted(&self) -> bool {
        self.exhausted_reason().is_some()
    }

    /// Which budget component tripped, checked in the fixed order
    /// evaluations → time → target (the trace layer's `budget` event
    /// reason). `None` while the budget still allows evaluations.
    pub fn exhausted_reason(&self) -> Option<&'static str> {
        if let Some(n) = self.budget.max_evals {
            if self.evals >= n {
                return Some("evals");
            }
        }
        if let Some(t) = self.budget.max_time {
            if self.elapsed() >= t {
                return Some("time");
            }
        }
        if let Some(target) = self.budget.target {
            if self.best >= target {
                return Some("target");
            }
        }
        None
    }

    /// Evaluations remaining before the count limit (∞ ⇒ `usize::MAX`).
    pub fn remaining_evals(&self) -> usize {
        self.budget
            .max_evals
            .map_or(usize::MAX, |n| n.saturating_sub(self.evals))
    }

    /// Snapshot the *remaining* budget as a thread-safe [`SharedBudget`]
    /// for one parallel batch. The shared view inherits this tracker's
    /// clock, remaining evaluation count, remaining wall-clock allowance,
    /// and target; fold the batch back in with
    /// [`absorb`](BudgetTracker::absorb) when the batch completes.
    pub fn share(&self) -> SharedBudget {
        let spec = BudgetSpec {
            max_evals: self.budget.max_evals.map(|_| self.remaining_evals()),
            max_time: self
                .budget
                .max_time
                .map(|t| t.saturating_sub(self.elapsed())),
            target: self.budget.target,
        };
        let shared = SharedBudget::new(spec, self.clock.clone());
        shared.seed_incumbent(self.best);
        shared
    }

    /// Merge a completed [`share`](BudgetTracker::share) batch back into
    /// this tracker: its evaluation count and incumbent advance ours.
    pub fn absorb(&mut self, shared: &SharedBudget) {
        self.evals += shared.evals();
        let best = shared.best();
        if best > self.best {
            self.best = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_parallel::ManualClock;

    #[test]
    fn eval_budget_trips_at_count() {
        let mut t = Budget::evals(3).start();
        assert!(!t.exhausted());
        t.record(0.1);
        t.record(0.2);
        assert!(!t.exhausted());
        t.record(0.3);
        assert!(t.exhausted());
        assert_eq!(t.exhausted_reason(), Some("evals"));
        assert_eq!(t.evals(), 3);
        assert_eq!(t.remaining_evals(), 0);
    }

    #[test]
    fn target_budget_trips_on_good_score() {
        let mut t = Budget::evals(100).with_target(0.9).start();
        t.record(0.5);
        assert!(!t.exhausted());
        t.record(0.95);
        assert!(t.exhausted());
        assert_eq!(t.exhausted_reason(), Some("target"));
        assert_eq!(t.best(), 0.95);
    }

    #[test]
    fn time_budget_trips_after_deadline() {
        let clock = Arc::new(ManualClock::new());
        let t = Budget::time(Duration::from_secs(30)).start_with_clock(clock.clone());
        assert!(!t.exhausted());
        clock.advance(Duration::from_secs(29));
        assert!(!t.exhausted());
        clock.advance(Duration::from_secs(1));
        assert!(t.exhausted());
        assert_eq!(t.exhausted_reason(), Some("time"));
        assert_eq!(t.elapsed(), Duration::from_secs(30));
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut t = Budget::default().start();
        for _ in 0..10_000 {
            t.record(1.0);
        }
        assert!(!t.exhausted());
        assert_eq!(t.remaining_evals(), usize::MAX);
    }

    #[test]
    fn share_snapshots_the_remaining_budget() {
        let clock = Arc::new(ManualClock::new());
        let mut t = Budget::evals(10)
            .with_time(Duration::from_secs(60))
            .with_target(0.9)
            .start_with_clock(clock.clone());
        t.record(0.1);
        t.record(0.2);
        clock.advance(Duration::from_secs(15));

        let shared = t.share();
        assert_eq!(shared.remaining_evals(), 8);
        assert!(!shared.exhausted());
        // The shared view's deadline is the *remaining* 45 s.
        clock.advance(Duration::from_secs(44));
        assert!(!shared.exhausted());
        clock.advance(Duration::from_secs(1));
        assert!(shared.exhausted());
    }

    #[test]
    fn absorb_merges_counts_and_incumbent() {
        let mut t = Budget::evals(10).start();
        t.record(0.4);
        let shared = t.share();
        shared.record(0.3);
        shared.record(0.8);
        t.absorb(&shared);
        assert_eq!(t.evals(), 3);
        assert_eq!(t.best(), 0.8);
        assert_eq!(t.remaining_evals(), 7);
    }

    #[test]
    fn absorbing_a_target_hit_exhausts_the_tracker() {
        let mut t = Budget::default().with_target(0.5).start();
        let shared = t.share();
        shared.record(0.7);
        assert!(shared.exhausted());
        t.absorb(&shared);
        assert!(t.exhausted());
    }
}
