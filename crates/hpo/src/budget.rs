//! Optimization budgets.
//!
//! The paper bounds searches three ways: evaluation counts (GA generations ×
//! population), wall-clock limits ("GA time limit = 10³ s", "30 s / 5 min"
//! CASH budgets), and target scores (architecture search stops when CV MSE
//! beats `Precision`). [`Budget`] combines all three; an optimizer stops at
//! whichever trips first.

use std::time::{Duration, Instant};

/// Combined stopping criterion. A `None` component never trips.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    pub max_evals: Option<usize>,
    pub max_time: Option<Duration>,
    /// Stop as soon as a score ≥ `target` is observed (scores are maximized).
    pub target: Option<f64>,
}

impl Budget {
    /// Only an evaluation-count limit.
    pub fn evals(n: usize) -> Budget {
        Budget {
            max_evals: Some(n),
            ..Budget::default()
        }
    }

    /// Only a wall-clock limit.
    pub fn time(d: Duration) -> Budget {
        Budget {
            max_time: Some(d),
            ..Budget::default()
        }
    }

    /// Add a wall-clock limit.
    pub fn with_time(mut self, d: Duration) -> Budget {
        self.max_time = Some(d);
        self
    }

    /// Add a target score.
    pub fn with_target(mut self, t: f64) -> Budget {
        self.target = Some(t);
        self
    }

    /// Start tracking this budget.
    pub fn start(&self) -> BudgetTracker {
        BudgetTracker {
            budget: self.clone(),
            started: Instant::now(),
            evals: 0,
            best: f64::NEG_INFINITY,
        }
    }
}

/// Live budget state carried through an optimization run.
#[derive(Debug, Clone)]
pub struct BudgetTracker {
    budget: Budget,
    started: Instant,
    evals: usize,
    best: f64,
}

impl BudgetTracker {
    /// Record one evaluation with its score.
    pub fn record(&mut self, score: f64) {
        self.evals += 1;
        if score > self.best {
            self.best = score;
        }
    }

    /// Evaluations recorded so far.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// Best score recorded so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Elapsed wall clock since [`Budget::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// True when any component of the budget has tripped.
    pub fn exhausted(&self) -> bool {
        if let Some(n) = self.budget.max_evals {
            if self.evals >= n {
                return true;
            }
        }
        if let Some(t) = self.budget.max_time {
            if self.started.elapsed() >= t {
                return true;
            }
        }
        if let Some(target) = self.budget.target {
            if self.best >= target {
                return true;
            }
        }
        false
    }

    /// Evaluations remaining before the count limit (∞ ⇒ `usize::MAX`).
    pub fn remaining_evals(&self) -> usize {
        self.budget
            .max_evals
            .map_or(usize::MAX, |n| n.saturating_sub(self.evals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_budget_trips_at_count() {
        let mut t = Budget::evals(3).start();
        assert!(!t.exhausted());
        t.record(0.1);
        t.record(0.2);
        assert!(!t.exhausted());
        t.record(0.3);
        assert!(t.exhausted());
        assert_eq!(t.evals(), 3);
        assert_eq!(t.remaining_evals(), 0);
    }

    #[test]
    fn target_budget_trips_on_good_score() {
        let mut t = Budget::evals(100).with_target(0.9).start();
        t.record(0.5);
        assert!(!t.exhausted());
        t.record(0.95);
        assert!(t.exhausted());
        assert_eq!(t.best(), 0.95);
    }

    #[test]
    fn time_budget_trips_after_deadline() {
        let t = Budget::time(Duration::from_millis(1)).start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.exhausted());
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut t = Budget::default().start();
        for _ in 0..10_000 {
            t.record(1.0);
        }
        assert!(!t.exhausted());
        assert_eq!(t.remaining_evals(), usize::MAX);
    }
}
