//! SMAC-lite: random-forest-surrogate model-based optimization.
//!
//! Auto-Weka's optimizer (SMAC, Hutter et al. 2011 — reference 6 of the
//! paper) uses a random-forest surrogate because, unlike a GP, it copes
//! natively with conditional/categorical CASH spaces. This is a compact
//! reimplementation of its core loop:
//!
//! 1. fit a regression forest on all `(encoded config, score)` observations;
//! 2. propose the candidate maximizing expected improvement, where the
//!    predictive mean/variance come from the across-tree distribution;
//! 3. *interleave*: every other proposal is uniformly random, preserving
//!    global exploration guarantees.
//!
//! Used as the search engine of the Auto-Weka baseline in `automodel-core`.

use crate::budget::Budget;
use crate::builder::{OptimizerBuilder, OptimizerCore};
use crate::objective::{
    eval_batch_serial, finish_run, trace_run_start, Objective, OptOutcome, Optimizer, Quarantine,
    Trial,
};
use crate::space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regression tree node over dense encoded vectors.
enum Node {
    Leaf {
        mean: f64,
    },
    Split {
        dim: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf { mean } => *mean,
            Node::Split {
                dim,
                threshold,
                left,
                right,
            } => {
                if x[*dim] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

fn mean(ys: &[f64]) -> f64 {
    if ys.is_empty() {
        0.0
    } else {
        ys.iter().sum::<f64>() / ys.len() as f64
    }
}

fn sse(ys: &[f64]) -> f64 {
    let m = mean(ys);
    ys.iter().map(|y| (y - m) * (y - m)).sum()
}

/// Grow one regression tree on the index set `rows`.
fn grow_tree<R: Rng>(
    xs: &[Vec<f64>],
    ys: &[f64],
    rows: &[usize],
    min_leaf: usize,
    depth: usize,
    rng: &mut R,
) -> Node {
    let y_here: Vec<f64> = rows.iter().map(|&r| ys[r]).collect();
    if rows.len() < 2 * min_leaf || depth == 0 || sse(&y_here) < 1e-12 {
        return Node::Leaf {
            mean: mean(&y_here),
        };
    }
    let dims = xs[0].len();
    let n_try = ((dims as f64).sqrt().ceil() as usize).max(1);
    let mut best: Option<(usize, f64, f64)> = None; // (dim, threshold, gain)
    let parent_sse = sse(&y_here);
    for _ in 0..n_try {
        let dim = rng.gen_range(0..dims);
        let mut vals: Vec<f64> = rows.iter().map(|&r| xs[r][dim]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        // A handful of candidate thresholds between distinct values.
        for _ in 0..4 {
            let i = rng.gen_range(0..vals.len() - 1);
            let threshold = (vals[i] + vals[i + 1]) / 2.0;
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &r in rows {
                if xs[r][dim] <= threshold {
                    left.push(ys[r]);
                } else {
                    right.push(ys[r]);
                }
            }
            if left.len() < min_leaf || right.len() < min_leaf {
                continue;
            }
            let gain = parent_sse - sse(&left) - sse(&right);
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((dim, threshold, gain));
            }
        }
    }
    match best {
        Some((dim, threshold, gain)) if gain > 1e-12 => {
            let (mut left_rows, mut right_rows) = (Vec::new(), Vec::new());
            for &r in rows {
                if xs[r][dim] <= threshold {
                    left_rows.push(r);
                } else {
                    right_rows.push(r);
                }
            }
            Node::Split {
                dim,
                threshold,
                left: Box::new(grow_tree(xs, ys, &left_rows, min_leaf, depth - 1, rng)),
                right: Box::new(grow_tree(xs, ys, &right_rows, min_leaf, depth - 1, rng)),
            }
        }
        _ => Node::Leaf {
            mean: mean(&y_here),
        },
    }
}

/// Regression forest with across-tree predictive variance.
struct Forest {
    trees: Vec<Node>,
}

impl Forest {
    fn fit<R: Rng>(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, rng: &mut R) -> Forest {
        let n = xs.len();
        let trees = (0..n_trees)
            .map(|_| {
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                grow_tree(xs, ys, &rows, 2, 16, rng)
            })
            .collect();
        Forest { trees }
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let m = mean(&preds);
        let var = preds.iter().map(|p| (p - m) * (p - m)).sum::<f64>() / preds.len() as f64;
        (m, var.sqrt())
    }
}

/// SMAC-lite optimizer.
#[derive(Debug, Clone)]
pub struct SmacLite {
    /// Random initial design size.
    pub init_design: usize,
    /// Trees in the surrogate forest.
    pub n_trees: usize,
    /// Candidate pool per model-guided proposal.
    pub candidates: usize,
    /// Local perturbations of the incumbent added to the pool.
    pub local_candidates: usize,
    core: OptimizerCore,
}

impl OptimizerBuilder for SmacLite {
    fn core(&self) -> &OptimizerCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut OptimizerCore {
        &mut self.core
    }
}

impl SmacLite {
    pub fn new(seed: u64) -> SmacLite {
        SmacLite {
            init_design: 8,
            n_trees: 24,
            candidates: 256,
            local_candidates: 64,
            core: OptimizerCore::new("smac-lite", seed),
        }
    }
}

/// Reuse BO's analytic EI through the module-private helpers there is not
/// possible; replicate the tiny formula locally.
fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / std;
    // Φ and φ via erf as in the BO module.
    let phi = (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt();
    let big_phi = 0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2));
    (mean - best) * big_phi + std * phi
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

impl Optimizer for SmacLite {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut rng = StdRng::seed_from_u64(self.core.seed);
        let mut tracker = budget.start();
        let mut trials: Vec<Trial> = Vec::new();
        let mut quarantine = Quarantine::new();
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();

        // Contained evaluation through the shared batch path (quarantine,
        // cache and trial recording all included): failures score the
        // finite penalty (keeping the forest's training targets finite) and
        // repeat offenders are quarantined so the surrogate never revisits
        // them.
        trace_run_start(&self.core);
        let core = self.core.clone();
        let evaluate = |config: Config,
                        trials: &mut Vec<Trial>,
                        quarantine: &mut Quarantine,
                        xs: &mut Vec<Vec<f64>>,
                        ys: &mut Vec<f64>,
                        tracker: &mut crate::budget::BudgetTracker,
                        objective: &mut dyn Objective| {
            let scored =
                eval_batch_serial(vec![config], objective, tracker, trials, quarantine, &core);
            for (config, score) in scored {
                xs.push(space.encode(&config));
                ys.push(score);
            }
        };

        for _ in 0..self.init_design.max(2) {
            if tracker.exhausted() {
                break;
            }
            let c = space.sample(&mut rng);
            evaluate(
                c,
                &mut trials,
                &mut quarantine,
                &mut xs,
                &mut ys,
                &mut tracker,
                objective,
            );
        }

        let mut model_turn = true;
        while !tracker.exhausted() {
            let next = if model_turn && xs.len() >= 4 {
                let forest = Forest::fit(&xs, &ys, self.n_trees, &mut rng);
                let best_y = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let incumbent_idx = ys
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    // lint:allow(no-panic-lib): `ys` mirrors `trials`, checked nonempty above
                    .unwrap();
                let incumbent = trials[incumbent_idx].config.clone();
                let mut best_cand: Option<(Config, f64)> = None;
                let consider = |c: Config, best_cand: &mut Option<(Config, f64)>| {
                    let (m, s) = forest.predict(&space.encode(&c));
                    let ei = expected_improvement(m, s, best_y);
                    if best_cand.as_ref().is_none_or(|(_, b)| ei > *b) {
                        *best_cand = Some((c, ei));
                    }
                };
                for _ in 0..self.candidates {
                    consider(space.sample(&mut rng), &mut best_cand);
                }
                for _ in 0..self.local_candidates {
                    consider(
                        space.neighbor(&incumbent, 0.4, 0.2, &mut rng),
                        &mut best_cand,
                    );
                }
                match best_cand {
                    Some((c, ei)) if ei > 1e-12 => c,
                    _ => space.sample(&mut rng),
                }
            } else {
                space.sample(&mut rng)
            };
            model_turn = !model_turn;
            evaluate(
                next,
                &mut trials,
                &mut quarantine,
                &mut xs,
                &mut ys,
                &mut tracker,
                objective,
            );
        }
        finish_run(&self.core, &tracker, trials, quarantine)
    }

    fn name(&self) -> &'static str {
        "smac-lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::space::{Condition, Domain};
    use crate::testfns::sphere;
    use automodel_parallel::TrialCache;
    use std::sync::Arc;

    #[test]
    fn forest_fits_a_step_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let forest = Forest::fit(&xs, &ys, 16, &mut rng);
        let (lo, _) = forest.predict(&[0.1]);
        let (hi, _) = forest.predict(&[0.9]);
        assert!(lo < 0.25, "lo = {lo}");
        assert!(hi > 0.75, "hi = {hi}");
    }

    #[test]
    fn forest_variance_is_low_in_dense_regions() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 100) as f64 / 100.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let forest = Forest::fit(&xs, &ys, 24, &mut rng);
        let (_, s) = forest.predict(&[0.5]);
        assert!(s < 0.2, "std = {s}");
    }

    #[test]
    fn smac_optimizes_quadratic_on_mixed_space() {
        let space = SearchSpace::builder()
            .add("x", Domain::float(-4.0, 4.0))
            .add("flavor", Domain::cat(&["bad", "good"]))
            .build()
            .unwrap();
        let mut obj = FnObjective(|c: &Config| {
            let bonus = if c.cat_or("flavor", 0) == 1 { 1.0 } else { 0.0 };
            bonus - sphere(&[c.float_or("x", 0.0)])
        });
        let out = SmacLite::new(5)
            .optimize(&space, &mut obj, &Budget::evals(120))
            .unwrap();
        assert!(out.best_score > 0.6, "best = {}", out.best_score);
        assert_eq!(out.best_config.cat_or("flavor", 0), 1);
    }

    #[test]
    fn smac_handles_hierarchical_spaces() {
        // CASH-shaped space: root algorithm choice gating two subspaces.
        let space = SearchSpace::builder()
            .add("algorithm", Domain::cat(&["linear", "tree"]))
            .add_if(
                "lr",
                Domain::float_log(1e-4, 1.0),
                Condition::cat_eq("algorithm", 0),
            )
            .add_if(
                "depth",
                Domain::int(1, 12),
                Condition::cat_eq("algorithm", 1),
            )
            .build()
            .unwrap();
        let mut obj = FnObjective(|c: &Config| match c.cat_or("algorithm", 0) {
            0 => 0.5 - (c.float_or("lr", 1.0).ln() - (0.01f64).ln()).abs() / 10.0,
            _ => 0.9 - (c.int_or("depth", 1) - 7).abs() as f64 / 10.0,
        });
        let out = SmacLite::new(6)
            .optimize(&space, &mut obj, &Budget::evals(150))
            .unwrap();
        for t in &out.trials {
            space.validate(&t.config).unwrap();
        }
        // The tree branch dominates; SMAC should land there near depth 7.
        assert_eq!(out.best_config.cat_or("algorithm", 9), 1);
        assert!(out.best_score > 0.8, "best = {}", out.best_score);
    }

    #[test]
    fn smac_respects_budget_and_seed() {
        let space = SearchSpace::builder()
            .add("x", Domain::float(0.0, 1.0))
            .build()
            .unwrap();
        let run = |seed| {
            let mut n = 0usize;
            let mut obj = FnObjective(|c: &Config| {
                n += 1;
                c.float_or("x", 0.0)
            });
            // Counting live objective calls needs dedup off: the model may
            // re-propose the exact incumbent, which the cache would serve.
            let out = SmacLite::new(seed)
                .with_cache(Arc::new(TrialCache::disabled()))
                .optimize(&space, &mut obj, &Budget::evals(40))
                .unwrap();
            assert_eq!(n, 40);
            out.best_score
        };
        assert_eq!(run(3), run(3));
    }
}
