//! The fidelity axis of a trial: *how much* of the data/training budget
//! an evaluation sees.
//!
//! Multi-fidelity optimizers (successive halving, Hyperband) evaluate
//! many configurations cheaply — on a stratified row subset, with fewer
//! CV folds, with capped training iterations — and promote only the
//! strongest survivors to the full budget. A low-fidelity score is *not*
//! the same measurement as a full-fidelity score of the same config, so
//! fidelity must be part of the trial fingerprint: the `TrialCache`,
//! warm-start store and checkpoint TCHS sections all key on
//! [`Config::cache_key_at`](crate::space::Config), which appends a
//! canonical fidelity suffix for any non-full fidelity and stays exactly
//! the legacy `cache_key` at full fidelity (so existing caches,
//! checkpoints and warm-start artifacts keep working unchanged).
//!
//! A [`Fidelity`] is a gcd-reduced row fraction `num/den` plus two
//! optional training knobs (CV fold override, iteration cap). Reduction
//! makes the representation — and therefore the fingerprint — canonical:
//! `fraction(2, 6)` and `fraction(1, 3)` are the same fidelity and must
//! key the same cache slot.

use std::fmt;

/// How much of the evaluation budget one trial sees. Construct via
/// [`Fidelity::full`] or [`Fidelity::fraction`]; the row fraction is
/// always stored gcd-reduced so equal fractions compare and fingerprint
/// equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fidelity {
    num: u32,
    den: u32,
    /// CV fold override; `0` means "use the caller's default fold count"
    /// (possibly scaled by the row fraction — the objective decides).
    pub cv_folds: u32,
    /// Training-iteration cap for iterative learners; `0` means uncapped
    /// (the objective may still scale iterations by the row fraction).
    pub epoch_cap: u32,
}

impl Fidelity {
    /// Full fidelity: all rows, default folds, uncapped training. The
    /// fingerprint of a full-fidelity trial is exactly the legacy
    /// config fingerprint.
    pub fn full() -> Fidelity {
        Fidelity {
            num: 1,
            den: 1,
            cv_folds: 0,
            epoch_cap: 0,
        }
    }

    /// A row-fraction fidelity `num/den` (stored gcd-reduced). Both parts
    /// must be non-zero and `num ≤ den` — a fidelity never sees *more*
    /// than the full data.
    ///
    /// # Panics
    /// If `num == 0`, `den == 0` or `num > den`; fractions come from the
    /// static rung geometry, so a bad one is a programming error.
    pub fn fraction(num: u32, den: u32) -> Fidelity {
        assert!(num > 0 && den > 0, "fidelity fraction parts must be > 0");
        assert!(num <= den, "fidelity fraction must be ≤ 1 ({num}/{den})");
        let g = gcd(num, den);
        Fidelity {
            num: num / g,
            den: den / g,
            cv_folds: 0,
            epoch_cap: 0,
        }
    }

    /// Override the CV fold count at this fidelity (0 = caller default).
    pub fn with_cv_folds(mut self, folds: u32) -> Fidelity {
        self.cv_folds = folds;
        self
    }

    /// Cap training iterations at this fidelity (0 = uncapped).
    pub fn with_epoch_cap(mut self, cap: u32) -> Fidelity {
        self.epoch_cap = cap;
        self
    }

    /// Numerator of the gcd-reduced row fraction.
    pub fn num(&self) -> u32 {
        self.num
    }

    /// Denominator of the gcd-reduced row fraction.
    pub fn den(&self) -> u32 {
        self.den
    }

    /// Whether this is the full-budget fidelity (all rows, no overrides).
    /// Full-fidelity trials fingerprint exactly like legacy single-fidelity
    /// trials, so caches and artifacts interoperate across the two worlds.
    pub fn is_full(&self) -> bool {
        self.num == self.den && self.cv_folds == 0 && self.epoch_cap == 0
    }

    /// Scale an iteration/row count by the row fraction, rounding up and
    /// never below 1 (`⌈n·num/den⌉`). Integer arithmetic only, so the
    /// result is identical on every platform and thread count.
    pub fn scale(&self, n: usize) -> usize {
        let num = self.num as u128;
        let den = self.den as u128;
        let scaled = (n as u128 * num).div_ceil(den);
        (scaled.min(n as u128) as usize).max(1)
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)?;
        if self.cv_folds != 0 {
            write!(f, " k={}", self.cv_folds)?;
        }
        if self.epoch_cap != 0 {
            write!(f, " e≤{}", self.epoch_cap)?;
        }
        Ok(())
    }
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A serial objective that evaluates a configuration *at a fidelity*.
/// The full-fidelity world's [`Objective`](crate::objective::Objective)
/// is the special case that always receives [`Fidelity::full`].
pub trait FidelityObjective {
    /// Evaluate `config` at `fidelity`, reporting faults as outcomes.
    fn evaluate_at(
        &mut self,
        config: &crate::space::Config,
        fidelity: &Fidelity,
    ) -> automodel_parallel::TrialOutcome;
}

impl<F> FidelityObjective for F
where
    F: FnMut(&crate::space::Config, &Fidelity) -> f64,
{
    fn evaluate_at(
        &mut self,
        config: &crate::space::Config,
        fidelity: &Fidelity,
    ) -> automodel_parallel::TrialOutcome {
        automodel_parallel::TrialOutcome::from_score(self(config, fidelity))
    }
}

/// The thread-shareable twin of [`FidelityObjective`] for the parallel
/// executor path (`&self`, `Sync` — workers call it concurrently; the
/// batch layer commits results in trial-index order regardless).
pub trait BatchFidelityObjective: Sync {
    /// Evaluate `config` at `fidelity` from any worker thread.
    fn evaluate_at(
        &self,
        config: &crate::space::Config,
        fidelity: &Fidelity,
    ) -> automodel_parallel::TrialOutcome;
}

impl<F> BatchFidelityObjective for F
where
    F: Fn(&crate::space::Config, &Fidelity) -> f64 + Sync,
{
    fn evaluate_at(
        &self,
        config: &crate::space::Config,
        fidelity: &Fidelity,
    ) -> automodel_parallel::TrialOutcome {
        automodel_parallel::TrialOutcome::from_score(self(config, fidelity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_reduce_to_canonical_form() {
        assert_eq!(Fidelity::fraction(2, 6), Fidelity::fraction(1, 3));
        assert_eq!(Fidelity::fraction(9, 27), Fidelity::fraction(1, 3));
        assert_eq!(Fidelity::fraction(27, 27), Fidelity::fraction(1, 1));
        let f = Fidelity::fraction(6, 8);
        assert_eq!((f.num(), f.den()), (3, 4));
    }

    #[test]
    fn full_is_the_identity_fidelity() {
        assert!(Fidelity::full().is_full());
        assert!(Fidelity::fraction(3, 3).is_full());
        assert!(!Fidelity::fraction(1, 3).is_full());
        assert!(!Fidelity::full().with_cv_folds(2).is_full());
        assert!(!Fidelity::full().with_epoch_cap(10).is_full());
    }

    #[test]
    fn scale_rounds_up_clamps_and_never_hits_zero() {
        let third = Fidelity::fraction(1, 3);
        assert_eq!(third.scale(9), 3);
        assert_eq!(third.scale(10), 4); // ceil(10/3)
        assert_eq!(third.scale(1), 1); // never 0
        assert_eq!(Fidelity::full().scale(7), 7);
        assert_eq!(Fidelity::fraction(1, 100).scale(5), 1);
    }

    #[test]
    #[should_panic(expected = "must be ≤ 1")]
    fn oversized_fraction_panics() {
        let _ = Fidelity::fraction(4, 3);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Fidelity::fraction(1, 3).to_string(), "1/3");
        assert_eq!(
            Fidelity::fraction(1, 9)
                .with_cv_folds(2)
                .with_epoch_cap(40)
                .to_string(),
            "1/9 k=2 e≤40"
        );
    }
}
