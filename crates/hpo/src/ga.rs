//! Genetic Algorithm (§II-A).
//!
//! "GA works by encoding hyperparameters and initializing population, and
//! then iteratively produces the next generation through selection, crossover
//! and mutation steps." The paper uses GA with population 50 for cheap
//! evaluations (feature selection, architecture search, tuning fast
//! algorithms). This implementation uses tournament selection, uniform
//! parameter-wise crossover (repaired against the space so conditional
//! structure survives), bounded mutation, and elitism.

use crate::budget::Budget;
use crate::objective::{Objective, OptOutcome, Optimizer, Trial};
use crate::space::{Config, SearchSpace};
use automodel_invariant::debug_invariant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GA hyperparameters (the meta-kind).
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Population size ("group size" in the paper; default 50).
    pub population: usize,
    /// Maximum generations ("evolutional epochs"; default 100).
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-parameter crossover swap probability.
    pub crossover_rate: f64,
    /// Per-parameter mutation probability.
    pub mutation_rate: f64,
    /// Relative mutation step size.
    pub mutation_strength: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
}

impl Default for GaConfig {
    fn default() -> GaConfig {
        GaConfig {
            population: 50,
            generations: 100,
            tournament: 3,
            crossover_rate: 0.5,
            mutation_rate: 0.15,
            mutation_strength: 0.25,
            elitism: 2,
        }
    }
}

/// Genetic-algorithm optimizer.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    pub config: GaConfig,
    seed: u64,
}

impl GeneticAlgorithm {
    pub fn new(seed: u64) -> GeneticAlgorithm {
        GeneticAlgorithm {
            config: GaConfig::default(),
            seed,
        }
    }

    pub fn with_config(seed: u64, config: GaConfig) -> GeneticAlgorithm {
        GeneticAlgorithm { config, seed }
    }

    /// Small-budget preset used throughout the scaled-down experiments.
    pub fn small(seed: u64) -> GeneticAlgorithm {
        GeneticAlgorithm::with_config(
            seed,
            GaConfig {
                population: 12,
                generations: 10,
                ..GaConfig::default()
            },
        )
    }

    fn tournament_pick<'a, R: Rng>(&self, scored: &'a [(Config, f64)], rng: &mut R) -> &'a Config {
        let mut best = &scored[rng.gen_range(0..scored.len())];
        for _ in 1..self.config.tournament.max(1) {
            let cand = &scored[rng.gen_range(0..scored.len())];
            if cand.1 > best.1 {
                best = cand;
            }
        }
        &best.0
    }

    /// Uniform crossover: per parameter (union of both parents' keys), take
    /// parent A's value with probability `1 - crossover_rate`. The raw child
    /// is repaired so conditional activity is re-resolved.
    fn crossover<R: Rng>(
        &self,
        space: &SearchSpace,
        a: &Config,
        b: &Config,
        rng: &mut R,
    ) -> Config {
        let mut raw = Config::new();
        for spec in space.params() {
            let (first, second) = if rng.gen::<f64>() < self.config.crossover_rate {
                (b, a)
            } else {
                (a, b)
            };
            if let Some(v) = first.get(&spec.name).or_else(|| second.get(&spec.name)) {
                raw.set(spec.name.clone(), v.clone());
            }
        }
        space.repair(&raw, rng)
    }
}

impl Optimizer for GeneticAlgorithm {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tracker = budget.start();
        let mut trials: Vec<Trial> = Vec::new();

        let evaluate = |config: Config,
                        trials: &mut Vec<Trial>,
                        tracker: &mut crate::budget::BudgetTracker,
                        objective: &mut dyn Objective|
         -> f64 {
            let score = objective.evaluate(&config);
            tracker.record(score);
            trials.push(Trial {
                config,
                score,
                index: trials.len(),
            });
            score
        };

        // Initial population.
        let pop_size = self.config.population.max(2);
        let mut population: Vec<(Config, f64)> = Vec::with_capacity(pop_size);
        for _ in 0..pop_size {
            if tracker.exhausted() {
                break;
            }
            let c = space.sample(&mut rng);
            let s = evaluate(c.clone(), &mut trials, &mut tracker, objective);
            population.push((c, s));
        }
        if population.is_empty() {
            return OptOutcome::from_trials(trials);
        }

        for _generation in 0..self.config.generations {
            if tracker.exhausted() {
                break;
            }
            // Elites survive unchanged (no re-evaluation).
            let mut next: Vec<(Config, f64)> = Vec::with_capacity(pop_size);
            let mut sorted: Vec<&(Config, f64)> = population.iter().collect();
            sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
            for elite in sorted.iter().take(self.config.elitism.min(pop_size)) {
                next.push((*elite).clone());
            }
            while next.len() < pop_size && !tracker.exhausted() {
                let a = self.tournament_pick(&population, &mut rng).clone();
                let b = self.tournament_pick(&population, &mut rng).clone();
                let child = self.crossover(space, &a, &b, &mut rng);
                let child = space.neighbor(
                    &child,
                    self.config.mutation_rate,
                    self.config.mutation_strength,
                    &mut rng,
                );
                let s = evaluate(child.clone(), &mut trials, &mut tracker, objective);
                next.push((child, s));
            }
            if next.is_empty() {
                break;
            }
            population = next;
            // Per-generation invariants: the population never outgrows the
            // configured size, every fitness is finite (the paper's fitness
            // is a CV accuracy / negated MSE — NaN means a broken
            // objective), and every genome respects the search space (for
            // the architecture search this is exactly the Table II bounds).
            debug_invariant!(
                population.len() <= pop_size,
                "generation holds {} individuals, population size is {pop_size}",
                population.len()
            );
            debug_invariant!(
                population.iter().all(|(_, s)| s.is_finite()),
                "non-finite fitness survived into the population"
            );
            debug_invariant!(
                population.iter().all(|(c, _)| space.validate(c).is_ok()),
                "a genome violates its search-space bounds"
            );
        }
        OptOutcome::from_trials(trials)
    }

    fn name(&self) -> &'static str {
        "genetic-algorithm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::space::{Condition, Domain};
    use crate::testfns::{rastrigin, sphere};

    fn float_space(dim: usize) -> SearchSpace {
        let mut b = SearchSpace::builder();
        for i in 0..dim {
            b = b.add(&format!("x{i}"), Domain::float(-5.12, 5.12));
        }
        b.build().unwrap()
    }

    fn values(c: &Config, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|i| c.float_or(&format!("x{i}"), 0.0))
            .collect()
    }

    #[test]
    fn ga_optimizes_sphere_better_than_random_init() {
        let space = float_space(3);
        let mut obj = FnObjective(|c: &Config| -sphere(&values(c, 3)));
        let out = GeneticAlgorithm::new(3)
            .optimize(&space, &mut obj, &Budget::evals(1500))
            .unwrap();
        // Initial population best is rarely better than -1; GA should get close to 0.
        assert!(out.best_score > -0.05, "best = {}", out.best_score);
    }

    #[test]
    fn ga_makes_progress_on_rastrigin() {
        let space = float_space(2);
        let mut obj = FnObjective(|c: &Config| -rastrigin(&values(c, 2)));
        let out = GeneticAlgorithm::new(11)
            .optimize(&space, &mut obj, &Budget::evals(2500))
            .unwrap();
        assert!(out.best_score > -2.0, "best = {}", out.best_score);
        // The incumbent curve must be monotone nondecreasing.
        let curve = out.incumbent_curve();
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn all_trials_are_valid_configs_even_with_conditionals() {
        let space = SearchSpace::builder()
            .add("solver", Domain::cat(&["a", "b"]))
            .add_if(
                "knob",
                Domain::float(0.0, 1.0),
                Condition::cat_eq("solver", 1),
            )
            .add("depth", Domain::int(1, 8))
            .build()
            .unwrap();
        let mut obj =
            FnObjective(|c: &Config| c.float_or("knob", 0.3) + c.int_or("depth", 0) as f64 / 8.0);
        let out = GeneticAlgorithm::small(5)
            .optimize(&space, &mut obj, &Budget::evals(200))
            .unwrap();
        for t in &out.trials {
            space.validate(&t.config).unwrap();
        }
        // Optimum: solver=b, knob→1, depth→8 ⇒ score 2. GA should find ≥ 1.5.
        assert!(out.best_score > 1.5, "best = {}", out.best_score);
    }

    #[test]
    fn deterministic_under_seed() {
        let space = float_space(2);
        let run = |seed| {
            let mut obj = FnObjective(|c: &Config| -sphere(&values(c, 2)));
            GeneticAlgorithm::new(seed)
                .optimize(&space, &mut obj, &Budget::evals(300))
                .unwrap()
                .best_score
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn respects_eval_budget_exactly() {
        let space = float_space(1);
        let mut n = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            n += 1;
            0.0
        });
        GeneticAlgorithm::new(1).optimize(&space, &mut obj, &Budget::evals(77));
        assert_eq!(n, 77);
    }

    #[test]
    fn elitism_preserves_the_best_individual() {
        let space = float_space(1);
        let mut obj = FnObjective(|c: &Config| -(c.float_or("x0", 0.0).abs()));
        let out = GeneticAlgorithm::with_config(
            2,
            GaConfig {
                population: 8,
                generations: 20,
                elitism: 2,
                ..GaConfig::default()
            },
        )
        .optimize(&space, &mut obj, &Budget::evals(200))
        .unwrap();
        let curve = out.incumbent_curve();
        assert!(curve.last().unwrap() >= curve.first().unwrap());
    }
}
