//! Genetic Algorithm (§II-A).
//!
//! "GA works by encoding hyperparameters and initializing population, and
//! then iteratively produces the next generation through selection, crossover
//! and mutation steps." The paper uses GA with population 50 for cheap
//! evaluations (feature selection, architecture search, tuning fast
//! algorithms). This implementation uses tournament selection, uniform
//! parameter-wise crossover (repaired against the space so conditional
//! structure survives), bounded mutation, and elitism.

use crate::budget::{Budget, BudgetTracker};
use crate::builder::{OptimizerBuilder, OptimizerCore};
use crate::objective::{
    eval_batch_parallel, eval_batch_serial, finish_run, trace_run_start, BatchObjective, Objective,
    OptOutcome, Optimizer, Quarantine, Trial,
};
use crate::space::{Config, SearchSpace};
use automodel_invariant::debug_invariant;
use automodel_parallel::Executor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How one generation's candidates get scored: through the classic serial
/// [`Objective`], or fanned out over an [`Executor`]. Candidate *breeding*
/// stays serial on one RNG stream in both modes, so the proposal sequence —
/// and therefore, under an evaluation-count budget, the entire trial
/// history — is identical whichever arm runs, at any thread count.
enum Evaluation<'a> {
    Serial(&'a mut dyn Objective),
    Parallel(&'a dyn BatchObjective, &'a Executor),
}

impl Evaluation<'_> {
    fn eval_batch(
        &mut self,
        configs: Vec<Config>,
        tracker: &mut BudgetTracker,
        trials: &mut Vec<Trial>,
        quarantine: &mut Quarantine,
        core: &OptimizerCore,
    ) -> Vec<(Config, f64)> {
        match self {
            Evaluation::Serial(objective) => {
                eval_batch_serial(configs, *objective, tracker, trials, quarantine, core)
            }
            Evaluation::Parallel(objective, executor) => eval_batch_parallel(
                configs, *objective, executor, tracker, trials, quarantine, core,
            ),
        }
    }
}

/// GA hyperparameters (the meta-kind).
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Population size ("group size" in the paper; default 50).
    pub population: usize,
    /// Maximum generations ("evolutional epochs"; default 100).
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-parameter crossover swap probability.
    pub crossover_rate: f64,
    /// Per-parameter mutation probability.
    pub mutation_rate: f64,
    /// Relative mutation step size.
    pub mutation_strength: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
}

impl Default for GaConfig {
    fn default() -> GaConfig {
        GaConfig {
            population: 50,
            generations: 100,
            tournament: 3,
            crossover_rate: 0.5,
            mutation_rate: 0.15,
            mutation_strength: 0.25,
            elitism: 2,
        }
    }
}

/// Genetic-algorithm optimizer.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    pub config: GaConfig,
    core: OptimizerCore,
}

impl OptimizerBuilder for GeneticAlgorithm {
    fn core(&self) -> &OptimizerCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut OptimizerCore {
        &mut self.core
    }
}

impl GeneticAlgorithm {
    pub fn new(seed: u64) -> GeneticAlgorithm {
        GeneticAlgorithm {
            config: GaConfig::default(),
            core: OptimizerCore::new("genetic-algorithm", seed),
        }
    }

    pub fn with_config(seed: u64, config: GaConfig) -> GeneticAlgorithm {
        GeneticAlgorithm {
            config,
            ..GeneticAlgorithm::new(seed)
        }
    }

    /// Small-budget preset used throughout the scaled-down experiments.
    pub fn small(seed: u64) -> GeneticAlgorithm {
        GeneticAlgorithm::with_config(
            seed,
            GaConfig {
                population: 12,
                generations: 10,
                ..GaConfig::default()
            },
        )
    }

    fn tournament_pick<'a, R: Rng>(&self, scored: &'a [(Config, f64)], rng: &mut R) -> &'a Config {
        let mut best = &scored[rng.gen_range(0..scored.len())];
        for _ in 1..self.config.tournament.max(1) {
            let cand = &scored[rng.gen_range(0..scored.len())];
            if cand.1 > best.1 {
                best = cand;
            }
        }
        &best.0
    }

    /// Uniform crossover: per parameter (union of both parents' keys), take
    /// parent A's value with probability `1 - crossover_rate`. The raw child
    /// is repaired so conditional activity is re-resolved.
    fn crossover<R: Rng>(
        &self,
        space: &SearchSpace,
        a: &Config,
        b: &Config,
        rng: &mut R,
    ) -> Config {
        let mut raw = Config::new();
        for spec in space.params() {
            let (first, second) = if rng.gen::<f64>() < self.config.crossover_rate {
                (b, a)
            } else {
                (a, b)
            };
            if let Some(v) = first.get(&spec.name).or_else(|| second.get(&spec.name)) {
                raw.set(spec.name.clone(), v.clone());
            }
        }
        space.repair(&raw, rng)
    }

    /// Parallel entry point: every generation's candidates are scored
    /// concurrently on `executor`, per-evaluation budget checks included.
    /// Under an evaluation-count budget the trial history is byte-identical
    /// to the serial [`Optimizer::optimize`] path at any thread count;
    /// wall-clock/target budgets may stop at a scheduling-dependent point
    /// (but never beyond the in-flight tasks).
    pub fn optimize_batch(
        &self,
        space: &SearchSpace,
        objective: &dyn BatchObjective,
        budget: &Budget,
        executor: &Executor,
    ) -> Option<OptOutcome> {
        self.run(space, Evaluation::Parallel(objective, executor), budget)
    }

    fn run(
        &self,
        space: &SearchSpace,
        mut eval: Evaluation<'_>,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut rng = StdRng::seed_from_u64(self.core.seed);
        let mut tracker = budget.start();
        let mut trials: Vec<Trial> = Vec::new();
        let mut quarantine = Quarantine::new();
        trace_run_start(&self.core);

        // Initial population: sample the whole generation first (the RNG
        // stream never depends on evaluation progress), then score it as
        // one batch.
        let pop_size = self.config.population.max(2);
        let candidates: Vec<Config> = (0..pop_size).map(|_| space.sample(&mut rng)).collect();
        let mut population = eval.eval_batch(
            candidates,
            &mut tracker,
            &mut trials,
            &mut quarantine,
            &self.core,
        );
        if population.is_empty() {
            return finish_run(&self.core, &tracker, trials, quarantine);
        }

        for _generation in 0..self.config.generations {
            if tracker.exhausted() {
                break;
            }
            // Elites survive unchanged (no re-evaluation).
            let mut next: Vec<(Config, f64)> = Vec::with_capacity(pop_size);
            let mut sorted: Vec<&(Config, f64)> = population.iter().collect();
            sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
            for elite in sorted.iter().take(self.config.elitism.min(pop_size)) {
                next.push((*elite).clone());
            }
            // Breed the full generation serially on the one RNG stream,
            // then score it as a batch (the budget is still consulted
            // before every single evaluation inside `eval_batch`).
            let children: Vec<Config> = (next.len()..pop_size)
                .map(|_| {
                    let a = self.tournament_pick(&population, &mut rng).clone();
                    let b = self.tournament_pick(&population, &mut rng).clone();
                    let child = self.crossover(space, &a, &b, &mut rng);
                    space.neighbor(
                        &child,
                        self.config.mutation_rate,
                        self.config.mutation_strength,
                        &mut rng,
                    )
                })
                .collect();
            next.extend(eval.eval_batch(
                children,
                &mut tracker,
                &mut trials,
                &mut quarantine,
                &self.core,
            ));
            if next.is_empty() {
                break;
            }
            population = next;
            // Per-generation invariants: the population never outgrows the
            // configured size, every fitness is finite (the paper's fitness
            // is a CV accuracy / negated MSE — NaN means a broken
            // objective), and every genome respects the search space (for
            // the architecture search this is exactly the Table II bounds).
            debug_invariant!(
                population.len() <= pop_size,
                "generation holds {} individuals, population size is {pop_size}",
                population.len()
            );
            debug_invariant!(
                population.iter().all(|(_, s)| s.is_finite()),
                "non-finite fitness survived into the population"
            );
            debug_invariant!(
                population.iter().all(|(c, _)| space.validate(c).is_ok()),
                "a genome violates its search-space bounds"
            );
        }
        finish_run(&self.core, &tracker, trials, quarantine)
    }
}

impl Optimizer for GeneticAlgorithm {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        self.run(space, Evaluation::Serial(objective), budget)
    }

    fn name(&self) -> &'static str {
        "genetic-algorithm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::space::{Condition, Domain};
    use crate::testfns::{rastrigin, sphere};
    use automodel_parallel::TrialCache;
    use std::sync::Arc;

    fn float_space(dim: usize) -> SearchSpace {
        let mut b = SearchSpace::builder();
        for i in 0..dim {
            b = b.add(&format!("x{i}"), Domain::float(-5.12, 5.12));
        }
        b.build().unwrap()
    }

    fn values(c: &Config, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|i| c.float_or(&format!("x{i}"), 0.0))
            .collect()
    }

    #[test]
    fn ga_optimizes_sphere_better_than_random_init() {
        let space = float_space(3);
        let mut obj = FnObjective(|c: &Config| -sphere(&values(c, 3)));
        let out = GeneticAlgorithm::new(3)
            .optimize(&space, &mut obj, &Budget::evals(1500))
            .unwrap();
        // Initial population best is rarely better than -1; GA should get close to 0.
        assert!(out.best_score > -0.05, "best = {}", out.best_score);
    }

    #[test]
    fn ga_makes_progress_on_rastrigin() {
        let space = float_space(2);
        let mut obj = FnObjective(|c: &Config| -rastrigin(&values(c, 2)));
        let out = GeneticAlgorithm::new(11)
            .optimize(&space, &mut obj, &Budget::evals(2500))
            .unwrap();
        assert!(out.best_score > -2.0, "best = {}", out.best_score);
        // The incumbent curve must be monotone nondecreasing.
        let curve = out.incumbent_curve();
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn all_trials_are_valid_configs_even_with_conditionals() {
        let space = SearchSpace::builder()
            .add("solver", Domain::cat(&["a", "b"]))
            .add_if(
                "knob",
                Domain::float(0.0, 1.0),
                Condition::cat_eq("solver", 1),
            )
            .add("depth", Domain::int(1, 8))
            .build()
            .unwrap();
        let mut obj =
            FnObjective(|c: &Config| c.float_or("knob", 0.3) + c.int_or("depth", 0) as f64 / 8.0);
        let out = GeneticAlgorithm::small(5)
            .optimize(&space, &mut obj, &Budget::evals(200))
            .unwrap();
        for t in &out.trials {
            space.validate(&t.config).unwrap();
        }
        // Optimum: solver=b, knob→1, depth→8 ⇒ score 2. GA should find ≥ 1.5.
        assert!(out.best_score > 1.5, "best = {}", out.best_score);
    }

    #[test]
    fn deterministic_under_seed() {
        let space = float_space(2);
        let run = |seed| {
            let mut obj = FnObjective(|c: &Config| -sphere(&values(c, 2)));
            GeneticAlgorithm::new(seed)
                .optimize(&space, &mut obj, &Budget::evals(300))
                .unwrap()
                .best_score
        };
        assert_eq!(run(9), run(9));
    }

    /// Serialize a trial history so byte-identity is checkable.
    fn fingerprint(out: &OptOutcome) -> String {
        out.trials
            .iter()
            .map(|t| format!("{}|{}#{:016x}\n", t.index, t.config, t.score.to_bits()))
            .collect()
    }

    #[test]
    fn optimize_batch_matches_serial_at_any_thread_count() {
        let space = float_space(2);
        let serial = {
            let mut obj = FnObjective(|c: &Config| -sphere(&values(c, 2)));
            GeneticAlgorithm::small(4)
                .optimize(&space, &mut obj, &Budget::evals(150))
                .unwrap()
        };
        let obj = |c: &Config| -sphere(&values(c, 2));
        for threads in [1, 2, 8] {
            let out = GeneticAlgorithm::small(4)
                .optimize_batch(&space, &obj, &Budget::evals(150), &Executor::new(threads))
                .unwrap();
            assert_eq!(
                fingerprint(&out),
                fingerprint(&serial),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn optimize_batch_respects_eval_budget_exactly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let space = float_space(1);
        let n = AtomicUsize::new(0);
        let obj = |_c: &Config| {
            n.fetch_add(1, Ordering::Relaxed);
            0.0
        };
        // Counting live objective calls needs dedup off: GA breeding
        // produces exact duplicate genomes the cache would serve.
        let out = GeneticAlgorithm::new(1)
            .with_cache(Arc::new(TrialCache::disabled()))
            .optimize_batch(&space, &obj, &Budget::evals(77), &Executor::new(4))
            .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 77);
        assert_eq!(out.trials.len(), 77);
    }

    #[test]
    fn respects_eval_budget_exactly() {
        let space = float_space(1);
        let mut n = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            n += 1;
            0.0
        });
        GeneticAlgorithm::new(1)
            .with_cache(Arc::new(TrialCache::disabled()))
            .optimize(&space, &mut obj, &Budget::evals(77));
        assert_eq!(n, 77);
    }

    #[test]
    fn cached_duplicates_skip_the_objective_without_changing_trials() {
        // Same seed, cache off vs on: identical trial bytes, fewer live
        // objective calls (GA re-breeds duplicate genomes), and the
        // telemetry actually reports the hits.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let space = float_space(1);
        let budget = Budget::evals(150);
        let run = |cache: Arc<TrialCache>| {
            let n = AtomicUsize::new(0);
            let obj = |c: &Config| {
                n.fetch_add(1, Ordering::Relaxed);
                -sphere(&values(c, 1))
            };
            let out = GeneticAlgorithm::small(4)
                .with_cache(cache)
                .optimize_batch(&space, &obj, &budget, &Executor::new(2))
                .unwrap();
            let trials = out.trials.len();
            (
                fingerprint(&out),
                n.load(Ordering::Relaxed),
                out.cache,
                trials,
            )
        };
        let (off_bytes, off_calls, off_stats, off_trials) = run(Arc::new(TrialCache::disabled()));
        let (on_bytes, on_calls, on_stats, _) = run(Arc::new(TrialCache::default()));
        assert_eq!(off_bytes, on_bytes, "cache must not change trial bytes");
        assert_eq!(off_calls, off_trials, "uncached: one live call per trial");
        assert!(
            on_calls < off_calls,
            "no duplicate was served from cache ({on_calls} live calls)"
        );
        assert!(!off_stats.enabled);
        assert!(on_stats.enabled);
        assert_eq!(on_stats.hits as usize, off_calls - on_calls);
        assert_eq!(on_stats.misses as usize, on_calls);
        assert_eq!(on_stats.insertions as usize, on_stats.entries);
    }

    #[test]
    fn injected_faults_with_retries_leave_results_unchanged() {
        // Faults fire on attempt 0 only; the default policy retries once,
        // so every injected NaN recovers and the trial history must be
        // byte-identical to a fault-free run.
        use automodel_parallel::{FaultPlan, TrialPolicy};
        let space = float_space(2);
        let obj = |c: &Config| -sphere(&values(c, 2));
        let budget = Budget::evals(120);
        let clean = GeneticAlgorithm::small(4)
            .optimize_batch(&space, &obj, &budget, &Executor::new(2))
            .unwrap();
        let faulted = GeneticAlgorithm::small(4)
            .with_policy(
                TrialPolicy::default().with_faults(FaultPlan::with_rates(3, 0.0, 0.15, 0.05)),
            )
            .optimize_batch(&space, &obj, &budget, &Executor::new(2))
            .unwrap();
        assert_eq!(fingerprint(&clean), fingerprint(&faulted));
        assert!(
            faulted.quarantine.is_empty(),
            "recovered faults quarantined"
        );
    }

    #[test]
    fn exhausted_retries_quarantine_and_the_search_survives() {
        use automodel_parallel::{FaultPlan, TrialPolicy};
        // A single attempt means every injected NaN persists: the trial is
        // penalized, the config quarantined, and the search keeps going.
        let policy = TrialPolicy::default()
            .with_max_attempts(1)
            .with_faults(FaultPlan::with_rates(7, 0.0, 0.2, 0.0));
        let space = float_space(2);
        let budget = Budget::evals(120);
        let obj = |c: &Config| -sphere(&values(c, 2));
        let serial = {
            let mut fobj = FnObjective(obj);
            GeneticAlgorithm::small(4)
                .with_policy(policy.clone())
                .optimize(&space, &mut fobj, &budget)
                .unwrap()
        };
        assert!(serial.best_score.is_finite());
        assert!(!serial.quarantine.is_empty(), "no config was quarantined");
        assert!(serial.failed_trials().count() >= serial.quarantine.len());
        for t in serial.failed_trials() {
            assert_eq!(t.score, policy.penalty);
        }
        // The quarantine log names the failed configs.
        for rec in &serial.quarantine {
            assert_eq!(rec.key, format!("{}", rec.config));
        }
        // And the whole faulted history is thread-count invariant.
        for threads in [1, 2, 8] {
            let out = GeneticAlgorithm::small(4)
                .with_policy(policy.clone())
                .optimize_batch(&space, &obj, &budget, &Executor::new(threads))
                .unwrap();
            assert_eq!(
                fingerprint(&out),
                fingerprint(&serial),
                "threads = {threads}"
            );
            assert_eq!(out.quarantine.len(), serial.quarantine.len());
        }
    }

    #[test]
    fn search_errors_only_when_every_trial_fails() {
        let space = float_space(1);
        let mut obj = FnObjective(|_c: &Config| f64::NAN);
        assert!(GeneticAlgorithm::small(4)
            .optimize(&space, &mut obj, &Budget::evals(30))
            .is_none());
        // One good trial in a sea of failures is enough for an incumbent.
        let mut good_once = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            good_once += 1;
            if good_once == 5 {
                0.25
            } else {
                f64::NAN
            }
        });
        let out = GeneticAlgorithm::small(4)
            .optimize(&space, &mut obj, &Budget::evals(30))
            .unwrap();
        assert_eq!(out.best_score, 0.25);
    }

    #[test]
    fn quarantined_configs_are_not_re_evaluated() {
        use crate::space::Domain;
        use automodel_parallel::TrialPolicy;
        use std::cell::RefCell;
        // One point in a 2-point space always fails; after quarantine it
        // must never reach the objective again.
        let space = SearchSpace::builder()
            .add("x", Domain::int(0, 1))
            .build()
            .unwrap();
        let bad_calls = RefCell::new(0usize);
        let mut obj = FnObjective(|c: &Config| {
            if c.int_or("x", 0) == 1 {
                *bad_calls.borrow_mut() += 1;
                f64::NAN
            } else {
                1.0
            }
        });
        let out = GeneticAlgorithm::small(9)
            .with_policy(TrialPolicy::default().with_max_attempts(2))
            .optimize(&space, &mut obj, &Budget::evals(60))
            .unwrap();
        assert_eq!(out.best_score, 1.0);
        assert_eq!(out.quarantine.len(), 1);
        // Quarantine lands at the first batch boundary: the bad config may
        // be live-evaluated (with retries) only inside the initial
        // population batch, never after. 60 evals with ~half the samples
        // hitting the bad point would otherwise mean ~60 calls.
        assert!(
            *bad_calls.borrow() <= 2 * 12,
            "bad config evaluated {} times",
            bad_calls.borrow()
        );
        for t in out.trials.iter().skip(12) {
            if let Some(f) = &t.failure {
                assert!(
                    f.message.starts_with("quarantined"),
                    "trial {} was live-evaluated after quarantine: {f}",
                    t.index
                );
            }
        }
        let skips = out
            .trials
            .iter()
            .filter(|t| {
                t.failure
                    .as_ref()
                    .is_some_and(|f| f.message.starts_with("quarantined"))
            })
            .count();
        assert!(skips > 0, "no trial was served from quarantine");
    }

    #[test]
    fn elitism_preserves_the_best_individual() {
        let space = float_space(1);
        let mut obj = FnObjective(|c: &Config| -(c.float_or("x0", 0.0).abs()));
        let out = GeneticAlgorithm::with_config(
            2,
            GaConfig {
                population: 8,
                generations: 20,
                elitism: 2,
                ..GaConfig::default()
            },
        )
        .optimize(&space, &mut obj, &Budget::evals(200))
        .unwrap();
        let curve = out.incumbent_curve();
        assert!(curve.last().unwrap() >= curve.first().unwrap());
    }
}
