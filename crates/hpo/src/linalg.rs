//! Minimal dense linear algebra for the GP surrogate.
//!
//! Implements just what Bayesian optimization needs: a Cholesky
//! factorization with jitter, triangular solves, and a log-determinant.
//! Matrices are row-major `Vec<f64>` with explicit dimension; sizes here are
//! small (≤ a few hundred observations), so no blocking or SIMD is needed.

/// Row-major square matrix view helpers.
#[derive(Debug, Clone)]
pub struct SquareMatrix {
    pub n: usize,
    pub data: Vec<f64>,
}

impl SquareMatrix {
    pub fn zeros(n: usize) -> SquareMatrix {
        SquareMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }
}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    pub l: SquareMatrix,
}

/// Factor a symmetric positive-definite matrix, adding growing diagonal
/// jitter on failure. Returns `None` only if the matrix stays indefinite
/// even with large jitter (surrogate callers then fall back to random
/// proposals).
pub fn cholesky(a: &SquareMatrix) -> Option<Cholesky> {
    let n = a.n;
    let mut jitter = 0.0f64;
    'attempt: for attempt in 0..8 {
        if attempt > 0 {
            jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
        }
        let mut l = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j) + if i == j { jitter } else { 0.0 };
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        continue 'attempt;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        return Some(Cholesky { l });
    }
    None
}

impl Cholesky {
    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.n;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l.get(i, k) * yk;
            }
            y[i] = sum / self.l.get(i, i);
        }
        y
    }

    /// Solve `Lᵀ x = y` (backward substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.n;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l.get(k, i) * xk;
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solve `A x = b` via the factor.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.n).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> SquareMatrix {
        // A = M Mᵀ + I for a fixed M — strictly positive definite.
        let m = [[1.0, 2.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 3.0]];
        let mut a = SquareMatrix::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                let base = if i == j { 1.0 } else { 0.0 };
                let dot: f64 = m[i].iter().zip(&m[j]).map(|(a, b)| a * b).sum();
                a.set(i, j, base + dot);
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd3();
        let ch = cholesky(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += ch.l.get(i, k) * ch.l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_inverts_linear_system() {
        let a = spd3();
        let ch = cholesky(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        for (i, &bi) in b.iter().enumerate() {
            let mut ax = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                ax += a.get(i, j) * xj;
            }
            assert!((ax - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn log_det_matches_identity() {
        let mut a = SquareMatrix::zeros(4);
        for i in 0..4 {
            a.set(i, i, 2.0);
        }
        let ch = cholesky(&a).unwrap();
        assert!((ch.log_det() - 4.0 * 2.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 matrix: needs jitter.
        let mut a = SquareMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 1.0);
        assert!(cholesky(&a).is_some());
    }

    #[test]
    fn helpers_compute_expected_values() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
