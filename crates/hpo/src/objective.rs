//! Objective and optimizer interfaces.
//!
//! All optimizers in this crate **maximize** `f(λ)` over a [`SearchSpace`]
//! (equation (1) in the paper). Objectives may be stochastic and expensive;
//! the optimizer records every trial so callers can inspect the history
//! (anytime behaviour: the paper's UDR lets users stop at any moment and take
//! the best configuration found so far).
//!
//! ## Fault containment
//!
//! Every evaluation — serial or parallel — flows through a contained trial
//! runner ([`automodel_parallel::run_trial`]): panics are caught, non-finite
//! scores are classified, failures are retried on decorrelated seed streams,
//! and a configuration whose every attempt failed is **quarantined** (skipped
//! for the rest of the search) and recorded with the policy's finite
//! `penalty` score, so the optimizer keeps searching. An optimization only
//! returns `None` when *no* trial produced a usable score.
//!
//! Quarantine updates are applied at batch boundaries (in trial-index
//! order), never mid-batch, so the serial and parallel paths observe the
//! identical quarantine state for every proposal and the trial history stays
//! byte-identical at any thread count — even while faults fire.
//!
//! ## Evaluation cache
//!
//! Between the quarantine check and the live run sits the deterministic
//! trial cache ([`automodel_parallel::TrialCache`], keyed by
//! [`Config::cache_key`]): a configuration evaluated before — successfully
//! *or not* — is replayed from its stored [`TrialOutcome`] instead of
//! re-running the objective. The cache follows the exact discipline the
//! quarantine does: workers read a batch-start snapshot, and insertions
//! are committed at the batch boundary in trial-index order, so cache-on
//! results are byte-identical to cache-off results at any thread count
//! (objectives on the batch paths are deterministic per config by
//! contract, so a replayed score *is* the recomputed score). Cached trials
//! still consume budget and are still recorded in the history — only the
//! objective call is skipped.
//!
//! ## Tracing
//!
//! When a [`Tracer`] is enabled, every trial narrates itself as a typed
//! event sequence (`trial_start`, cache hit/miss, per-attempt faults and
//! retries, quarantine decisions, `trial_end`). Events are *built* inside
//! the (possibly parallel) trial evaluation as plain values on
//! [`TrialEval`] and *emitted* by [`record_batch`] at the batch boundary
//! in trial-index order, so the trace byte stream — like the trial history
//! it mirrors — is identical at any thread count, and a disabled tracer
//! costs one branch per trial.

use crate::budget::{Budget, BudgetTracker};
use crate::builder::{OptimizerCore, RunCheckpoint};
use crate::fidelity::{BatchFidelityObjective, Fidelity, FidelityObjective};
use crate::space::{Config, SearchSpace};
use automodel_parallel::{
    run_trial, CacheStats, CachedTrial, Executor, TrialCache, TrialFailure, TrialOutcome,
    TrialPolicy,
};
use automodel_trace::{TraceEvent, Tracer};
use std::collections::BTreeMap;

/// A black-box objective to maximize.
pub trait Objective {
    /// Evaluate one configuration. Higher is better. Implementations may be
    /// stochastic; optimizers never assume determinism.
    fn evaluate(&mut self, config: &Config) -> f64;

    /// Evaluate with an explicit outcome. The default classifies
    /// [`evaluate`](Objective::evaluate)'s score by finiteness; objectives
    /// that can observe richer failure signals (a diverged training run, a
    /// timeout) override this to report them directly.
    fn evaluate_outcome(&mut self, config: &Config) -> TrialOutcome {
        TrialOutcome::from_score(self.evaluate(config))
    }
}

/// Wrap a closure as an [`Objective`].
pub struct FnObjective<F: FnMut(&Config) -> f64>(pub F);

impl<F: FnMut(&Config) -> f64> Objective for FnObjective<F> {
    fn evaluate(&mut self, config: &Config) -> f64 {
        (self.0)(config)
    }
}

/// A thread-safe objective for parallel batch evaluation.
///
/// Unlike [`Objective`], evaluation takes `&self`, so one instance is
/// shared across all workers of an [`Executor`] batch. Any
/// `Fn(&Config) -> f64 + Sync` closure implements it. Implementations must
/// be deterministic per configuration (derive any internal randomness from
/// the config or a fixed seed) for the `optimize_batch` entry points to be
/// thread-count-invariant.
pub trait BatchObjective: Sync {
    fn evaluate(&self, config: &Config) -> f64;

    /// Outcome-aware twin of [`Objective::evaluate_outcome`].
    fn evaluate_outcome(&self, config: &Config) -> TrialOutcome {
        TrialOutcome::from_score(self.evaluate(config))
    }
}

impl<F: Fn(&Config) -> f64 + Sync> BatchObjective for F {
    fn evaluate(&self, config: &Config) -> f64 {
        self(config)
    }
}

/// One configuration barred from further evaluation after exhausting its
/// retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// Display form of the config (the quarantine key).
    pub key: String,
    pub config: Config,
    /// The failure that exhausted the retries.
    pub failure: TrialFailure,
    /// Trial index at which the config was quarantined.
    pub trial_index: usize,
    /// Attempts spent before giving up.
    pub attempts: usize,
}

/// The set of configurations a search refuses to evaluate again.
///
/// Keys are the configs' `Display` form (the same key `GridSearch` dedups
/// on). Insertion order is preserved for reporting; the earliest failure
/// of a config wins.
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    records: Vec<QuarantineRecord>,
    index: BTreeMap<String, usize>,
}

impl Quarantine {
    pub fn new() -> Quarantine {
        Quarantine::default()
    }

    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    pub fn get(&self, key: &str) -> Option<&QuarantineRecord> {
        self.index.get(key).map(|&i| &self.records[i])
    }

    /// Add a record unless its key is already quarantined.
    pub fn add(&mut self, record: QuarantineRecord) {
        if !self.index.contains_key(&record.key) {
            self.index.insert(record.key.clone(), self.records.len());
            self.records.push(record);
        }
    }

    pub fn records(&self) -> &[QuarantineRecord] {
        &self.records
    }

    pub fn into_records(self) -> Vec<QuarantineRecord> {
        self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Result of one contained trial: the recorded score (the objective's, or
/// the policy penalty), the failure if any, the attempts spent
/// (`0` ⇒ the config was already quarantined and was skipped), and — for a
/// live evaluation with the cache enabled — the pending cache insertion to
/// commit at the batch boundary.
#[derive(Debug, Clone)]
pub(crate) struct TrialEval {
    pub(crate) score: f64,
    pub(crate) failure: Option<TrialFailure>,
    pub(crate) attempts: usize,
    /// `(canonical key, memoized trial)` awaiting its index-ordered commit
    /// in [`record_batch`]; `None` on a cache hit or quarantine skip.
    pub(crate) pending: Option<(String, CachedTrial)>,
    /// Trace events built during the evaluation (empty when tracing is
    /// off); [`record_batch`] appends the terminal events and emits the
    /// lot at the batch boundary in trial-index order.
    pub(crate) events: Vec<TraceEvent>,
}

/// Replay a memoized trial: exactly what [`run_trial`] would return for
/// this config (objectives on these paths are deterministic per config),
/// so the recorded trial — and any quarantine decision derived from
/// `attempts > 0` — is byte-identical to a live evaluation.
fn replay_cached(hit: CachedTrial, policy: &TrialPolicy) -> TrialEval {
    match hit.outcome.score() {
        Some(score) => TrialEval {
            score,
            failure: None,
            attempts: hit.attempts,
            pending: None,
            events: Vec::new(),
        },
        None => TrialEval {
            score: policy.penalty,
            failure: hit.outcome.failure(),
            attempts: hit.attempts,
            pending: None,
            events: Vec::new(),
        },
    }
}

/// Execute one trial under `policy` against *snapshots* of the quarantine
/// and the cache: quarantined configs are skipped straight to the penalty
/// score, cached configs are replayed without touching the objective, and
/// everything else runs through the contained, retried [`run_trial`] (its
/// outcome becomes this eval's pending cache insertion). Pure in
/// `(config, index, policy, quarantine, cache contents, eval)` —
/// thread-count invariant.
#[allow(clippy::too_many_arguments)] // the full purity tuple is the point: every input is explicit
pub(crate) fn run_contained(
    config: &Config,
    index: usize,
    fidelity: &Fidelity,
    policy: &TrialPolicy,
    quarantine: &Quarantine,
    cache: &TrialCache,
    traced: bool,
    eval: &mut dyn FnMut(&Config) -> TrialOutcome,
) -> TrialEval {
    let trial = index as u64;
    let key = config.to_string();
    let mut events = Vec::new();
    if traced {
        events.push(TraceEvent::TrialStart {
            trial,
            config: key.clone(),
        });
    }
    if let Some(rec) = quarantine.get(&key) {
        if traced {
            events.push(TraceEvent::QuarantineSkip { trial });
        }
        return TrialEval {
            score: policy.penalty,
            failure: Some(TrialFailure {
                kind: rec.failure.kind,
                message: format!("quarantined: {}", rec.failure.message),
            }),
            attempts: 0,
            pending: None,
            events,
        };
    }
    // Fidelity is part of the measurement: low- and full-fidelity scores
    // of the same config key separate cache slots (`cache_key_at` is the
    // plain `cache_key` at full fidelity).
    let cache_key = cache.is_enabled().then(|| config.cache_key_at(fidelity));
    if let Some(key) = &cache_key {
        if let Some((hit, warm)) = cache.get_provenance(key) {
            let mut ev = replay_cached(hit, policy);
            if traced {
                // A hit on an entry restored from a persisted artifact
                // narrates as `warm_hit` so traces attribute the skipped
                // work to the warm start; it still counts as a cache hit.
                events.push(if warm {
                    TraceEvent::WarmHit { trial }
                } else {
                    TraceEvent::CacheHit { trial }
                });
                ev.events = events;
            }
            return ev;
        }
    }
    if traced && cache_key.is_some() {
        events.push(TraceEvent::CacheMiss { trial });
    }
    let report = run_trial(
        policy,
        policy.faults.seed,
        index as u64,
        |_seed, _attempt| eval(config),
    );
    if traced {
        // One fault event per failed attempt; a retry event for every
        // attempt the policy granted after a failure.
        for (attempt, failure) in report.failures.iter().enumerate() {
            events.push(TraceEvent::Fault {
                trial,
                attempt: attempt as u64,
                kind: failure.kind.to_string(),
                message: failure.message.clone(),
            });
            if attempt + 1 < report.attempts {
                events.push(TraceEvent::Retry {
                    trial,
                    attempt: (attempt + 1) as u64,
                });
            }
        }
    }
    let pending = cache_key.map(|key| {
        (
            key,
            CachedTrial {
                outcome: report.outcome.clone(),
                attempts: report.attempts,
            },
        )
    });
    match report.outcome.score() {
        Some(score) => TrialEval {
            score,
            failure: None,
            attempts: report.attempts,
            pending,
            events,
        },
        None => TrialEval {
            score: policy.penalty,
            failure: report.outcome.failure(),
            attempts: report.attempts,
            pending,
            events,
        },
    }
}

/// Fold a batch of evaluations into the trial history and — in trial-index
/// order, at the batch boundary — quarantine every config that exhausted
/// its retries, commit every pending cache insertion, and emit each
/// trial's trace events (closed with `quarantine`/`trial_end`) under one
/// tracer lock. Returns the `(config, score)` pairs for the evaluated
/// prefix.
fn record_batch(
    configs: Vec<Config>,
    evals: Vec<TrialEval>,
    trials: &mut Vec<Trial>,
    quarantine: &mut Quarantine,
    cache: &TrialCache,
    tracer: &Tracer,
) -> Vec<(Config, f64)> {
    let traced = tracer.is_enabled();
    let mut out = Vec::with_capacity(evals.len());
    let mut batch_events = Vec::new();
    for (config, mut ev) in configs.into_iter().zip(evals) {
        let index = trials.len();
        if let (Some(failure), true) = (&ev.failure, ev.attempts > 0) {
            let key = config.to_string();
            let fresh = !quarantine.contains(&key);
            quarantine.add(QuarantineRecord {
                key,
                config: config.clone(),
                failure: failure.clone(),
                trial_index: index,
                attempts: ev.attempts,
            });
            // Emit only on actual insertion so quarantine events count
            // exactly the records in `OptOutcome::quarantine`.
            if traced && fresh {
                ev.events.push(TraceEvent::Quarantine {
                    trial: index as u64,
                    config: config.to_string(),
                });
            }
        }
        // Index-ordered insertion: the cache's FIFO (and therefore its
        // eviction order) is a pure function of the trial history, never
        // of worker completion order.
        if let Some((key, value)) = ev.pending {
            cache.insert(key, value);
        }
        if traced {
            let status = if ev.attempts == 0 {
                "skipped"
            } else if ev.failure.is_some() {
                "failed"
            } else {
                "ok"
            };
            ev.events.push(TraceEvent::TrialEnd {
                trial: index as u64,
                score: ev.score,
                attempts: ev.attempts as u64,
                status: status.into(),
            });
            batch_events.append(&mut ev.events);
        }
        trials.push(Trial {
            config: config.clone(),
            score: ev.score,
            index,
            failure: ev.failure,
        });
        out.push((config, ev.score));
    }
    if traced {
        tracer.emit_all(batch_events);
    }
    out
}

/// Adapter: a classic [`Objective`] viewed as a [`FidelityObjective`] that
/// ignores the fidelity (it is always [`Fidelity::full`] on this path).
struct FullFidelity<'a>(&'a mut dyn Objective);

impl FidelityObjective for FullFidelity<'_> {
    fn evaluate_at(&mut self, config: &Config, _fidelity: &Fidelity) -> TrialOutcome {
        self.0.evaluate_outcome(config)
    }
}

/// Adapter: a classic [`BatchObjective`] viewed as a
/// [`BatchFidelityObjective`] that ignores the fidelity.
struct FullFidelityBatch<'a>(&'a dyn BatchObjective);

impl BatchFidelityObjective for FullFidelityBatch<'_> {
    fn evaluate_at(&self, config: &Config, _fidelity: &Fidelity) -> TrialOutcome {
        self.0.evaluate_outcome(config)
    }
}

/// Evaluate `configs` one by one under `core`'s policy, recording each into
/// `tracker` and `trials`, stopping as soon as the budget trips. Returns the
/// evaluated `(config, score)` prefix. The quarantine is consulted as a
/// batch-start snapshot and updated only at the batch end — the same
/// discipline as [`eval_batch_parallel`], so the two paths always agree.
pub(crate) fn eval_batch_serial(
    configs: Vec<Config>,
    objective: &mut dyn Objective,
    tracker: &mut BudgetTracker,
    trials: &mut Vec<Trial>,
    quarantine: &mut Quarantine,
    core: &OptimizerCore,
) -> Vec<(Config, f64)> {
    eval_batch_serial_at(
        configs,
        &Fidelity::full(),
        &mut FullFidelity(objective),
        tracker,
        trials,
        quarantine,
        core,
    )
}

/// Fidelity-aware twin of [`eval_batch_serial`]: every trial in the batch
/// is evaluated — and fingerprinted — at `fidelity`. The single-fidelity
/// entry points delegate here with [`Fidelity::full`].
pub(crate) fn eval_batch_serial_at(
    configs: Vec<Config>,
    fidelity: &Fidelity,
    objective: &mut dyn FidelityObjective,
    tracker: &mut BudgetTracker,
    trials: &mut Vec<Trial>,
    quarantine: &mut Quarantine,
    core: &OptimizerCore,
) -> Vec<(Config, f64)> {
    if let Some(gate) = &core.gate {
        gate.before_batch();
    }
    let base = trials.len();
    let tracer = &*core.tracer;
    let traced = tracer.is_enabled();
    if traced {
        tracer.emit(TraceEvent::BatchStart {
            first_trial: base as u64,
            size: configs.len() as u64,
        });
    }
    let mut evals = Vec::with_capacity(configs.len());
    for (i, config) in configs.iter().enumerate() {
        if tracker.exhausted() {
            break;
        }
        let ev = run_contained(
            config,
            base + i,
            fidelity,
            &core.policy,
            quarantine,
            &core.cache,
            traced,
            &mut |c| objective.evaluate_at(c, fidelity),
        );
        tracker.record(ev.score);
        evals.push(ev);
    }
    let evaluated = evals.len() as u64;
    let out = record_batch(configs, evals, trials, quarantine, &core.cache, tracer);
    if traced {
        tracer.emit(TraceEvent::BatchEnd {
            first_trial: base as u64,
            evaluated,
        });
    }
    maybe_checkpoint(core, trials, quarantine, tracker);
    out
}

/// Evaluate `configs` on `executor` under `core`'s policy, recording each
/// into `tracker` and `trials`, with the budget consulted before every
/// evaluation. Containment (catch, classify, retry) runs inside the worker
/// closure, so a panicking objective costs one trial, never the batch.
/// Results (and the trial history) come back in proposal order regardless
/// of thread count; under a pure evaluation-count budget the evaluated
/// prefix is byte-identical to [`eval_batch_serial`].
pub(crate) fn eval_batch_parallel(
    configs: Vec<Config>,
    objective: &dyn BatchObjective,
    executor: &Executor,
    tracker: &mut BudgetTracker,
    trials: &mut Vec<Trial>,
    quarantine: &mut Quarantine,
    core: &OptimizerCore,
) -> Vec<(Config, f64)> {
    eval_batch_parallel_at(
        configs,
        &Fidelity::full(),
        &FullFidelityBatch(objective),
        executor,
        tracker,
        trials,
        quarantine,
        core,
    )
}

/// Fidelity-aware twin of [`eval_batch_parallel`]: the whole batch runs at
/// `fidelity`, fingerprinted accordingly. Delegated to with
/// [`Fidelity::full`] by the single-fidelity entry point.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_batch_parallel_at(
    configs: Vec<Config>,
    fidelity: &Fidelity,
    objective: &dyn BatchFidelityObjective,
    executor: &Executor,
    tracker: &mut BudgetTracker,
    trials: &mut Vec<Trial>,
    quarantine: &mut Quarantine,
    core: &OptimizerCore,
) -> Vec<(Config, f64)> {
    if let Some(gate) = &core.gate {
        gate.before_batch();
    }
    let base = trials.len();
    let tracer = &*core.tracer;
    let traced = tracer.is_enabled();
    if traced {
        tracer.emit(TraceEvent::BatchStart {
            first_trial: base as u64,
            size: configs.len() as u64,
        });
    }
    let shared = tracker.share();
    let evals = {
        let snapshot: &Quarantine = quarantine;
        executor.map_budgeted(configs.len(), &shared, |i| {
            // Workers read the cache as it stood at the batch start
            // (inserts land in `record_batch` below), so which trials hit
            // is independent of worker scheduling. Trace events are built
            // here as values and emitted only at the batch boundary.
            let ev = run_contained(
                &configs[i],
                base + i,
                fidelity,
                &core.policy,
                snapshot,
                &core.cache,
                traced,
                &mut |c| objective.evaluate_at(c, fidelity),
            );
            shared.record(ev.score);
            ev
        })
    };
    tracker.absorb(&shared);
    let evaluated = evals.len() as u64;
    let out = record_batch(configs, evals, trials, quarantine, &core.cache, tracer);
    if traced {
        tracer.emit(TraceEvent::BatchEnd {
            first_trial: base as u64,
            evaluated,
        });
    }
    maybe_checkpoint(core, trials, quarantine, tracker);
    out
}

/// Hand the committed batch-boundary state to the run's checkpoint sink,
/// if one is attached, and trace a successful write. Runs *after*
/// `record_batch` and `BatchEnd`: everything the checkpoint captures —
/// history, quarantine, cache — is in its index-ordered committed state,
/// so a resume from this point is thread-count invariant.
fn maybe_checkpoint(
    core: &OptimizerCore,
    trials: &[Trial],
    quarantine: &Quarantine,
    tracker: &BudgetTracker,
) {
    let Some(sink) = &core.checkpoint else {
        return;
    };
    let state = RunCheckpoint {
        optimizer: core.name,
        seed: core.seed,
        fault_seed: core.policy.faults.seed,
        trials,
        quarantine,
        cache: &core.cache,
        evals: tracker.evals() as u64,
    };
    if let Some(event) = sink.on_batch(&state) {
        if core.tracer.is_enabled() {
            core.tracer.emit(event);
        }
    }
}

/// Emit a run-start event; a no-op (not even an allocation) when tracing
/// is off.
pub(crate) fn trace_run_start(core: &OptimizerCore) {
    if core.tracer.is_enabled() {
        core.tracer.emit(TraceEvent::RunStart {
            optimizer: core.name.into(),
            seed: core.seed,
        });
    }
}

/// Close one optimizer run the way every optimizer in this crate does:
/// emit the `budget` event if a budget component tripped, assemble the
/// [`OptOutcome`] (quarantine log and cache telemetry attached), and emit
/// the run-end event carrying the trial count and incumbent score.
pub(crate) fn finish_run(
    core: &OptimizerCore,
    tracker: &BudgetTracker,
    trials: Vec<Trial>,
    quarantine: Quarantine,
) -> Option<OptOutcome> {
    finish_run_with_best(core, tracker, trials, quarantine, None)
}

/// [`finish_run`] with an explicit incumbent override. Multi-fidelity
/// optimizers mix scores measured at different fidelities in one history,
/// where the global maximum is meaningless (a lucky low-fidelity score
/// must not beat the full-budget winner); they pass the index of the
/// deepest-rung best instead. `None` — or an unusable override — falls
/// back to [`OptOutcome::from_trials`]'s best-usable rule.
pub(crate) fn finish_run_with_best(
    core: &OptimizerCore,
    tracker: &BudgetTracker,
    trials: Vec<Trial>,
    quarantine: Quarantine,
    best: Option<usize>,
) -> Option<OptOutcome> {
    let tracer = &*core.tracer;
    let traced = tracer.is_enabled();
    if traced {
        if let Some(reason) = tracker.exhausted_reason() {
            tracer.emit(TraceEvent::BudgetExhausted {
                evals: tracker.evals() as u64,
                reason: reason.into(),
            });
        }
    }
    let recorded = trials.len() as u64;
    let chosen = best.filter(|&i| trials.get(i).is_some_and(Trial::is_usable));
    let out = match chosen {
        Some(i) => Some(OptOutcome {
            best_config: trials[i].config.clone(),
            best_score: trials[i].score,
            trials,
            quarantine: Vec::new(),
            cache: CacheStats::default(),
        }),
        None => OptOutcome::from_trials(trials),
    }
    .map(|o| {
        o.with_quarantine(quarantine.into_records())
            .with_cache_stats(core.cache.stats())
    });
    if traced {
        tracer.emit(TraceEvent::RunEnd {
            optimizer: core.name.into(),
            trials: recorded,
            best: out.as_ref().map(|o| o.best_score),
        });
    }
    out
}

/// One recorded evaluation.
#[derive(Debug, Clone)]
pub struct Trial {
    pub config: Config,
    pub score: f64,
    /// 0-based evaluation index.
    pub index: usize,
    /// Present when the trial failed; `score` is then the policy's finite
    /// penalty, not an observation of the objective.
    pub failure: Option<TrialFailure>,
}

impl Trial {
    /// Did this trial produce a real, finite observation of the objective?
    pub fn is_usable(&self) -> bool {
        self.failure.is_none() && self.score.is_finite()
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    pub best_config: Config,
    pub best_score: f64,
    pub trials: Vec<Trial>,
    /// Configs quarantined during the search (every retry failed), in
    /// quarantine order.
    pub quarantine: Vec<QuarantineRecord>,
    /// Trial-cache telemetry for this run (all zeros when the cache was
    /// disabled or the optimizer never attached stats).
    pub cache: CacheStats,
}

impl OptOutcome {
    /// Assemble an outcome from a trial history. The incumbent is the best
    /// *usable* trial — failed trials and non-finite scores are never the
    /// incumbent — and earliest wins ties so reruns are stable. `None` when
    /// no trial is usable (the budget allowed nothing, or every trial
    /// failed).
    pub fn from_trials(trials: Vec<Trial>) -> Option<OptOutcome> {
        let best = trials
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_usable())
            .max_by(|(ia, a), (ib, b)| a.score.total_cmp(&b.score).then(ib.cmp(ia)))
            .map(|(i, _)| i)?;
        Some(OptOutcome {
            best_config: trials[best].config.clone(),
            best_score: trials[best].score,
            trials,
            quarantine: Vec::new(),
            cache: CacheStats::default(),
        })
    }

    /// Attach the quarantine log accumulated during the search.
    pub fn with_quarantine(mut self, quarantine: Vec<QuarantineRecord>) -> OptOutcome {
        self.quarantine = quarantine;
        self
    }

    /// Attach the trial-cache counters observed at the end of the search.
    pub fn with_cache_stats(mut self, stats: CacheStats) -> OptOutcome {
        self.cache = stats;
        self
    }

    /// Trials that failed (scored the penalty instead of the objective).
    pub fn failed_trials(&self) -> impl Iterator<Item = &Trial> {
        self.trials.iter().filter(|t| t.failure.is_some())
    }

    /// Running best score after each evaluation (for convergence plots).
    pub fn incumbent_curve(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.trials
            .iter()
            .map(|t| {
                if t.score > best {
                    best = t.score;
                }
                best
            })
            .collect()
    }
}

/// Common optimizer interface.
pub trait Optimizer {
    /// Run until the budget is exhausted; `None` if the budget allowed no
    /// evaluations at all — or every evaluated trial failed.
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome>;

    /// Short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamValue;
    use automodel_parallel::FailureKind;

    fn trial(score: f64, index: usize) -> Trial {
        Trial {
            config: Config::new().with("x", ParamValue::Float(score)),
            score,
            index,
            failure: None,
        }
    }

    fn failed_trial(score: f64, index: usize) -> Trial {
        Trial {
            failure: Some(TrialFailure {
                kind: FailureKind::Panicked,
                message: "boom".into(),
            }),
            ..trial(score, index)
        }
    }

    #[test]
    fn from_trials_picks_best_and_breaks_ties_earliest() {
        let out =
            OptOutcome::from_trials(vec![trial(0.3, 0), trial(0.9, 1), trial(0.9, 2)]).unwrap();
        assert_eq!(out.best_score, 0.9);
        assert_eq!(out.best_config.float_or("x", 0.0), 0.9);
        assert_eq!(out.trials.len(), 3);
        // Earliest of the tied trials is index 1; check via incumbent curve.
        assert_eq!(out.incumbent_curve(), vec![0.3, 0.9, 0.9]);
    }

    #[test]
    fn from_trials_empty_is_none() {
        assert!(OptOutcome::from_trials(vec![]).is_none());
    }

    #[test]
    fn non_finite_scores_are_never_the_incumbent() {
        // Regression: `total_cmp` ranks NaN above +∞, so a NaN trial used to
        // win the incumbent slot outright.
        let out = OptOutcome::from_trials(vec![
            trial(f64::NAN, 0),
            trial(0.2, 1),
            trial(f64::INFINITY, 2),
            trial(f64::NEG_INFINITY, 3),
        ])
        .unwrap();
        assert_eq!(out.best_score, 0.2);
        assert_eq!(out.best_config.float_or("x", 0.0), 0.2);
    }

    #[test]
    fn failed_trials_are_never_the_incumbent() {
        // A failed trial's penalty score can exceed a real observation;
        // the incumbent must still be the real one.
        let out = OptOutcome::from_trials(vec![failed_trial(0.9, 0), trial(-3.0, 1)]).unwrap();
        assert_eq!(out.best_score, -3.0);
        assert_eq!(out.failed_trials().count(), 1);
    }

    #[test]
    fn all_failed_trials_yield_none() {
        assert!(OptOutcome::from_trials(vec![trial(f64::NAN, 0), trial(f64::NAN, 1)]).is_none());
        assert!(
            OptOutcome::from_trials(vec![failed_trial(-1e9, 0), failed_trial(-1e9, 1)]).is_none()
        );
    }

    #[test]
    fn quarantine_dedups_and_preserves_order() {
        let mut q = Quarantine::new();
        let rec = |key: &str, idx: usize| QuarantineRecord {
            key: key.to_string(),
            config: Config::new(),
            failure: TrialFailure {
                kind: FailureKind::NonFinite,
                message: "non-finite score".into(),
            },
            trial_index: idx,
            attempts: 2,
        };
        q.add(rec("b", 0));
        q.add(rec("a", 1));
        q.add(rec("b", 5)); // duplicate key: first failure wins
        assert_eq!(q.len(), 2);
        assert!(q.contains("a") && q.contains("b"));
        assert_eq!(q.get("b").unwrap().trial_index, 0);
        let keys: Vec<&str> = q.records().iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, vec!["b", "a"]);
    }

    #[test]
    fn fn_objective_delegates() {
        let mut calls = 0usize;
        {
            let mut obj = FnObjective(|c: &Config| {
                calls += 1;
                c.float_or("x", 0.0) * 2.0
            });
            let c = Config::new().with("x", ParamValue::Float(1.5));
            assert_eq!(obj.evaluate(&c), 3.0);
            assert_eq!(obj.evaluate_outcome(&c), TrialOutcome::Ok(3.0));
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn default_outcome_classifies_non_finite() {
        let mut obj = FnObjective(|_c: &Config| f64::NAN);
        assert_eq!(
            obj.evaluate_outcome(&Config::new()),
            TrialOutcome::NonFinite
        );
    }
}
