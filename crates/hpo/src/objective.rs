//! Objective and optimizer interfaces.
//!
//! All optimizers in this crate **maximize** `f(λ)` over a [`SearchSpace`]
//! (equation (1) in the paper). Objectives may be stochastic and expensive;
//! the optimizer records every trial so callers can inspect the history
//! (anytime behaviour: the paper's UDR lets users stop at any moment and take
//! the best configuration found so far).

use crate::budget::{Budget, BudgetTracker};
use crate::space::{Config, SearchSpace};
use automodel_parallel::Executor;

/// A black-box objective to maximize.
pub trait Objective {
    /// Evaluate one configuration. Higher is better. Implementations may be
    /// stochastic; optimizers never assume determinism.
    fn evaluate(&mut self, config: &Config) -> f64;
}

/// Wrap a closure as an [`Objective`].
pub struct FnObjective<F: FnMut(&Config) -> f64>(pub F);

impl<F: FnMut(&Config) -> f64> Objective for FnObjective<F> {
    fn evaluate(&mut self, config: &Config) -> f64 {
        (self.0)(config)
    }
}

/// A thread-safe objective for parallel batch evaluation.
///
/// Unlike [`Objective`], evaluation takes `&self`, so one instance is
/// shared across all workers of an [`Executor`] batch. Any
/// `Fn(&Config) -> f64 + Sync` closure implements it. Implementations must
/// be deterministic per configuration (derive any internal randomness from
/// the config or a fixed seed) for the `optimize_batch` entry points to be
/// thread-count-invariant.
pub trait BatchObjective: Sync {
    fn evaluate(&self, config: &Config) -> f64;
}

impl<F: Fn(&Config) -> f64 + Sync> BatchObjective for F {
    fn evaluate(&self, config: &Config) -> f64 {
        self(config)
    }
}

/// Evaluate `configs` one by one, recording each into `tracker` and
/// `trials`, stopping as soon as the budget trips. Returns the evaluated
/// `(config, score)` prefix.
pub(crate) fn eval_batch_serial(
    configs: Vec<Config>,
    objective: &mut dyn Objective,
    tracker: &mut BudgetTracker,
    trials: &mut Vec<Trial>,
) -> Vec<(Config, f64)> {
    let mut out = Vec::with_capacity(configs.len());
    for config in configs {
        if tracker.exhausted() {
            break;
        }
        let score = objective.evaluate(&config);
        tracker.record(score);
        trials.push(Trial {
            config: config.clone(),
            score,
            index: trials.len(),
        });
        out.push((config, score));
    }
    out
}

/// Evaluate `configs` on `executor`, recording each into `tracker` and
/// `trials`, with the budget consulted before every evaluation. Results
/// (and the trial history) come back in proposal order regardless of
/// thread count; under a pure evaluation-count budget the evaluated prefix
/// is byte-identical to [`eval_batch_serial`].
pub(crate) fn eval_batch_parallel(
    configs: Vec<Config>,
    objective: &dyn BatchObjective,
    executor: &Executor,
    tracker: &mut BudgetTracker,
    trials: &mut Vec<Trial>,
) -> Vec<(Config, f64)> {
    let shared = tracker.share();
    let scores = executor.map_budgeted(configs.len(), &shared, |i| {
        let score = objective.evaluate(&configs[i]);
        shared.record(score);
        score
    });
    tracker.absorb(&shared);
    let mut out = Vec::with_capacity(scores.len());
    for (config, score) in configs.into_iter().zip(scores) {
        trials.push(Trial {
            config: config.clone(),
            score,
            index: trials.len(),
        });
        out.push((config, score));
    }
    out
}

/// One recorded evaluation.
#[derive(Debug, Clone)]
pub struct Trial {
    pub config: Config,
    pub score: f64,
    /// 0-based evaluation index.
    pub index: usize,
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    pub best_config: Config,
    pub best_score: f64,
    pub trials: Vec<Trial>,
}

impl OptOutcome {
    /// Assemble an outcome from a trial history (best by score; earliest wins
    /// ties so reruns are stable).
    pub fn from_trials(trials: Vec<Trial>) -> Option<OptOutcome> {
        let best = trials
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.score.total_cmp(&b.score).then(ib.cmp(ia)))
            .map(|(i, _)| i)?;
        Some(OptOutcome {
            best_config: trials[best].config.clone(),
            best_score: trials[best].score,
            trials,
        })
    }

    /// Running best score after each evaluation (for convergence plots).
    pub fn incumbent_curve(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.trials
            .iter()
            .map(|t| {
                if t.score > best {
                    best = t.score;
                }
                best
            })
            .collect()
    }
}

/// Common optimizer interface.
pub trait Optimizer {
    /// Run until the budget is exhausted; `None` if the budget allowed no
    /// evaluations at all.
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome>;

    /// Short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamValue;

    fn trial(score: f64, index: usize) -> Trial {
        Trial {
            config: Config::new().with("x", ParamValue::Float(score)),
            score,
            index,
        }
    }

    #[test]
    fn from_trials_picks_best_and_breaks_ties_earliest() {
        let out =
            OptOutcome::from_trials(vec![trial(0.3, 0), trial(0.9, 1), trial(0.9, 2)]).unwrap();
        assert_eq!(out.best_score, 0.9);
        assert_eq!(out.best_config.float_or("x", 0.0), 0.9);
        assert_eq!(out.trials.len(), 3);
        // Earliest of the tied trials is index 1; check via incumbent curve.
        assert_eq!(out.incumbent_curve(), vec![0.3, 0.9, 0.9]);
    }

    #[test]
    fn from_trials_empty_is_none() {
        assert!(OptOutcome::from_trials(vec![]).is_none());
    }

    #[test]
    fn fn_objective_delegates() {
        let mut calls = 0usize;
        let mut obj = FnObjective(|c: &Config| {
            calls += 1;
            c.float_or("x", 0.0) * 2.0
        });
        let c = Config::new().with("x", ParamValue::Float(1.5));
        assert_eq!(obj.evaluate(&c), 3.0);
        assert_eq!(calls, 1);
    }
}
