//! Deterministic successive halving (SHA) over the fidelity axis.
//!
//! Successive halving spends a budget the way a tournament does: sample
//! `n0` configurations, evaluate all of them *cheaply* (a small seeded
//! row fraction), keep the top `1/eta` by score, and re-evaluate the
//! survivors at `eta`× the fidelity — repeating until the last rung runs
//! the remaining finalists at full fidelity. With the default geometry
//! (`eta = 3`, `r = 1..27`, `n0 = 27`) one bracket explores 27
//! configurations for 40 evaluations, most of them at 1/27th or 1/9th of
//! the data — the bandit-elimination shape of the mindware lineage's
//! `CashpOptimizer` and of Hyperband's inner loop.
//!
//! ## Determinism contract
//!
//! Elimination is byte-identical at any thread count:
//!
//! * candidate `k` of a bracket is sampled from its own RNG seeded with
//!   `seed_stream(seed, base + k, 0)` — independent of batch size and
//!   thread count (the same discipline as [`RandomSearch`]'s batch path);
//! * both the serial and the parallel entry points evaluate each rung in
//!   fixed-size chunks ([`ShaConfig::batch`]) through the shared
//!   batch-boundary machinery, so batch boundaries — and therefore trace
//!   streams and checkpoint points — are identical on the two paths;
//! * rung promotion compares *canonical* score bits
//!   ([`canonical_f64_bits`]) with lower-trial-index tie-breaks, so the
//!   promotion set is a pure function of the recorded history;
//! * `RungStart`/`Promote`/`Eliminate` trace events narrate the schedule
//!   at rung boundaries, in promotion-rank order, making every
//!   elimination re-derivable (and oracle-checkable) from the trace alone.
//!
//! A rung the budget interrupts is *incomplete*: it emits no promotion
//! events and ends the bracket — a partial rung must never eliminate a
//! config that its unevaluated peers might have lost to.
//!
//! [`RandomSearch`]: crate::random::RandomSearch

use crate::budget::{Budget, BudgetTracker};
use crate::builder::{OptimizerBuilder, OptimizerCore};
use crate::fidelity::{BatchFidelityObjective, Fidelity, FidelityObjective};
use crate::fingerprint::canonical_f64_bits;
use crate::objective::{
    eval_batch_parallel_at, eval_batch_serial_at, finish_run_with_best, trace_run_start,
    BatchObjective, Objective, OptOutcome, Optimizer, Quarantine, Trial,
};
use crate::space::{Config, SearchSpace};
use automodel_parallel::{seed_stream, Executor, TrialOutcome};
use automodel_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The rung geometry of a successive-halving bracket.
///
/// Fidelity at resource level `r` is the row fraction `r / r_max`
/// (exactly [`Fidelity::full`] at `r = r_max`, so final-rung evaluations
/// share cache slots and artifacts with full-fidelity optimizers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShaConfig {
    /// Elimination factor: each rung keeps `⌊n/eta⌋` survivors (min 1)
    /// and multiplies the resource by `eta`.
    pub eta: u32,
    /// Resource level of the first (cheapest) rung.
    pub r_min: u32,
    /// Resource level of the last rung (full fidelity). Must be
    /// `r_min · eta^k` for some integer `k ≥ 0`.
    pub r_max: u32,
    /// Number of configurations sampled into the first rung.
    pub candidates: u32,
    /// Fixed evaluation-chunk size. Both the serial and the parallel path
    /// chunk every rung into batches of this size, so batch boundaries —
    /// and the checkpoints and trace events hung on them — are identical
    /// everywhere.
    pub batch: usize,
}

impl Default for ShaConfig {
    fn default() -> ShaConfig {
        ShaConfig {
            eta: 3,
            r_min: 1,
            r_max: 27,
            candidates: 27,
            batch: 8,
        }
    }
}

impl ShaConfig {
    /// Panic unless the geometry is coherent (`eta ≥ 2`, rung ladder
    /// exact). Geometry is static configuration, so an invalid one is a
    /// programming error, not a runtime condition.
    pub(crate) fn validate(&self) {
        assert!(self.eta >= 2, "SHA eta must be ≥ 2, got {}", self.eta);
        assert!(self.r_min >= 1, "SHA r_min must be ≥ 1");
        assert!(self.candidates >= 1, "SHA needs at least one candidate");
        assert!(self.batch >= 1, "SHA batch size must be ≥ 1");
        let mut r = self.r_min;
        while r < self.r_max {
            r = r.saturating_mul(self.eta);
        }
        assert!(
            r == self.r_max,
            "SHA r_max ({}) must be r_min ({}) times a power of eta ({})",
            self.r_max,
            self.r_min,
            self.eta
        );
    }

    /// The fidelity of resource level `r`: the row fraction `r/r_max`,
    /// which is exactly full fidelity at the top rung.
    pub fn fidelity_at(&self, r: u32) -> Fidelity {
        Fidelity::fraction(r, self.r_max)
    }

    /// Number of rungs a bracket starting at `r_start` climbs through.
    pub fn rungs_from(&self, r_start: u32) -> u32 {
        let mut rungs = 1;
        let mut r = r_start;
        while r < self.r_max {
            r *= self.eta;
            rungs += 1;
        }
        rungs
    }
}

/// The winner a bracket reports: the best *usable* trial of its deepest
/// evaluated rung, with the fidelity fraction it was measured at (so
/// Hyperband can prefer deeper-fidelity winners across brackets).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BracketBest {
    pub(crate) index: usize,
    pub(crate) score: f64,
    pub(crate) num: u32,
    pub(crate) den: u32,
}

/// The evaluation backend a bracket runs on: the serial objective path or
/// the parallel executor path. Both chunk identically, so they produce
/// the same history bytes.
pub(crate) enum FidelityEval<'a> {
    Serial(&'a mut dyn FidelityObjective),
    Batch(&'a dyn BatchFidelityObjective, &'a Executor),
}

/// Everything one bracket needs besides the evaluation state. Bundled so
/// [`run_bracket`] stays callable from both SHA and Hyperband without an
/// argument avalanche.
pub(crate) struct BracketSpec<'a> {
    pub(crate) cfg: &'a ShaConfig,
    /// Bracket number for trace events (plain SHA always runs bracket 0).
    pub(crate) bracket: u64,
    /// Configurations sampled into the first rung.
    pub(crate) n_start: u32,
    /// Resource level of the first rung (`cfg.r_min` for plain SHA;
    /// Hyperband's later brackets start higher).
    pub(crate) r_start: u32,
    /// Global proposal offset: candidate `k` draws from
    /// `seed_stream(seed, seed_base + k, 0)`, so brackets never share
    /// proposal streams.
    pub(crate) seed_base: u64,
}

/// Run one successive-halving bracket. Returns the deepest-rung best
/// (see [`BracketBest`]); `None` when no rung produced a usable trial.
pub(crate) fn run_bracket(
    core: &OptimizerCore,
    spec: &BracketSpec<'_>,
    space: &SearchSpace,
    eval: &mut FidelityEval<'_>,
    tracker: &mut BudgetTracker,
    trials: &mut Vec<Trial>,
    quarantine: &mut Quarantine,
) -> Option<BracketBest> {
    let cfg = spec.cfg;
    let traced = core.tracer.is_enabled();
    // Candidate k's config is a pure function of (seed, seed_base + k):
    // independent of batch size, thread count and bracket interleaving.
    let mut current: Vec<(u64, Config)> = (0..spec.n_start as u64)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(seed_stream(core.seed, spec.seed_base + k, 0));
            (k, space.sample(&mut rng))
        })
        .collect();
    let mut best: Option<BracketBest> = None;
    let mut r = spec.r_start;
    let mut rung = 0u64;
    loop {
        if tracker.exhausted() || current.is_empty() {
            break;
        }
        let fidelity = cfg.fidelity_at(r);
        if traced {
            core.tracer.emit(TraceEvent::RungStart {
                bracket: spec.bracket,
                rung,
                candidates: current.len() as u64,
                num: fidelity.num() as u64,
                den: fidelity.den() as u64,
            });
        }
        let rung_base = trials.len();
        let mut evaluated = 0usize;
        // Fixed-size chunks on BOTH paths: identical batch boundaries ⇒
        // identical traces and checkpoint points, serial or parallel.
        for chunk in current.chunks(cfg.batch) {
            let configs: Vec<Config> = chunk.iter().map(|(_, c)| c.clone()).collect();
            let want = configs.len();
            let scored = match eval {
                FidelityEval::Serial(objective) => eval_batch_serial_at(
                    configs, &fidelity, *objective, tracker, trials, quarantine, core,
                ),
                FidelityEval::Batch(objective, executor) => eval_batch_parallel_at(
                    configs, &fidelity, *objective, executor, tracker, trials, quarantine, core,
                ),
            };
            evaluated += scored.len();
            if scored.len() < want {
                break;
            }
        }
        // Deepest-rung incumbent: the best usable trial of this rung
        // (canonical bits, earliest index on ties) replaces any
        // shallower-rung best — a full-budget measurement always outranks
        // a cheap one, whatever the raw scores say.
        let rung_best = (rung_base..rung_base + evaluated)
            .filter(|&i| trials[i].is_usable())
            .max_by(|&a, &b| {
                canon(trials[a].score)
                    .total_cmp(&canon(trials[b].score))
                    .then(b.cmp(&a))
            });
        if let Some(i) = rung_best {
            best = Some(BracketBest {
                index: i,
                score: trials[i].score,
                num: fidelity.num(),
                den: fidelity.den(),
            });
        }
        if evaluated < current.len() {
            // Budget tripped mid-rung: an incomplete rung must not
            // eliminate anyone (unevaluated peers never got their score).
            break;
        }
        if r >= cfg.r_max {
            break; // final rung: nothing left to promote into
        }
        // Promotion: rank every candidate of the completed rung by
        // canonical score bits, descending, lower trial index on ties.
        // The top ⌊n/eta⌋ (min 1) survive.
        let n = current.len();
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by(|&a, &b| {
            canon(trials[rung_base + a].score)
                .total_cmp(&canon(trials[rung_base + b].score))
                .reverse()
                .then((rung_base + a).cmp(&(rung_base + b)))
        });
        let keep = (n / cfg.eta as usize).max(1);
        if traced {
            let mut events = Vec::with_capacity(n);
            for (pos, &slot) in ranked.iter().enumerate() {
                let trial = (rung_base + slot) as u64;
                events.push(if pos < keep {
                    TraceEvent::Promote { trial, rung }
                } else {
                    TraceEvent::Eliminate { trial, rung }
                });
            }
            core.tracer.emit_all(events);
        }
        // Survivors re-enter the next rung in candidate order, so the
        // next rung's trial sequence is again index-sorted and the
        // proposal stream stays oblivious to ranking details.
        let mut survivors: Vec<(u64, Config)> = ranked[..keep]
            .iter()
            .map(|&slot| current[slot].clone())
            .collect();
        survivors.sort_by_key(|(k, _)| *k);
        current = survivors;
        r *= cfg.eta;
        rung += 1;
    }
    best
}

/// Canonicalize a score for comparison: NaN payloads collapse, `-0.0`
/// becomes `+0.0` — the same bits the fingerprints and traces carry.
fn canon(score: f64) -> f64 {
    f64::from_bits(canonical_f64_bits(score))
}

/// Deterministic successive halving: one elimination bracket over the
/// fidelity ladder (see the module docs for the contract).
#[derive(Debug, Clone)]
pub struct SuccessiveHalving {
    core: OptimizerCore,
    cfg: ShaConfig,
}

impl OptimizerBuilder for SuccessiveHalving {
    fn core(&self) -> &OptimizerCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut OptimizerCore {
        &mut self.core
    }
}

impl SuccessiveHalving {
    /// SHA with the default geometry (`eta=3`, `r=1..27`, 27 candidates:
    /// one 40-evaluation bracket).
    pub fn new(seed: u64) -> SuccessiveHalving {
        SuccessiveHalving::with_geometry(seed, ShaConfig::default())
    }

    /// SHA with an explicit rung geometry.
    ///
    /// # Panics
    /// If the geometry is incoherent (see [`ShaConfig`]).
    pub fn with_geometry(seed: u64, cfg: ShaConfig) -> SuccessiveHalving {
        cfg.validate();
        SuccessiveHalving {
            core: OptimizerCore::new("successive-halving", seed),
            cfg,
        }
    }

    /// The configured rung geometry.
    pub fn geometry(&self) -> &ShaConfig {
        &self.cfg
    }

    /// Serial fidelity-aware entry point: the objective sees each trial's
    /// fidelity and is expected to evaluate cheaper at lower fractions.
    pub fn optimize_fidelity(
        &self,
        space: &SearchSpace,
        objective: &mut dyn FidelityObjective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        self.run(space, &mut FidelityEval::Serial(objective), budget)
    }

    /// Parallel fidelity-aware entry point: rung chunks are scored
    /// concurrently on `executor`; the history is byte-identical to
    /// [`SuccessiveHalving::optimize_fidelity`] at any thread count.
    pub fn optimize_fidelity_batch(
        &self,
        space: &SearchSpace,
        objective: &dyn BatchFidelityObjective,
        budget: &Budget,
        executor: &Executor,
    ) -> Option<OptOutcome> {
        self.run(space, &mut FidelityEval::Batch(objective, executor), budget)
    }

    /// Parallel entry point for fidelity-oblivious objectives (the
    /// elimination schedule still runs; every rung just costs the same).
    pub fn optimize_batch(
        &self,
        space: &SearchSpace,
        objective: &dyn BatchObjective,
        budget: &Budget,
        executor: &Executor,
    ) -> Option<OptOutcome> {
        let adapter = IgnoreFidelityBatch(objective);
        self.run(space, &mut FidelityEval::Batch(&adapter, executor), budget)
    }

    fn run(
        &self,
        space: &SearchSpace,
        eval: &mut FidelityEval<'_>,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut tracker = budget.start();
        let mut trials = Vec::new();
        let mut quarantine = Quarantine::new();
        trace_run_start(&self.core);
        let spec = BracketSpec {
            cfg: &self.cfg,
            bracket: 0,
            n_start: self.cfg.candidates,
            r_start: self.cfg.r_min,
            seed_base: 0,
        };
        let best = run_bracket(
            &self.core,
            &spec,
            space,
            eval,
            &mut tracker,
            &mut trials,
            &mut quarantine,
        );
        finish_run_with_best(
            &self.core,
            &tracker,
            trials,
            quarantine,
            best.map(|b| b.index),
        )
    }
}

/// Adapter: a fidelity-oblivious [`Objective`] driven by a fidelity
/// scheduler (the schedule eliminates as usual; evaluations just don't
/// get cheaper).
struct IgnoreFidelity<'a>(&'a mut dyn Objective);

impl FidelityObjective for IgnoreFidelity<'_> {
    fn evaluate_at(&mut self, config: &Config, _fidelity: &Fidelity) -> TrialOutcome {
        self.0.evaluate_outcome(config)
    }
}

/// Batch twin of [`IgnoreFidelity`].
struct IgnoreFidelityBatch<'a>(&'a dyn BatchObjective);

impl BatchFidelityObjective for IgnoreFidelityBatch<'_> {
    fn evaluate_at(&self, config: &Config, _fidelity: &Fidelity) -> TrialOutcome {
        self.0.evaluate_outcome(config)
    }
}

impl Optimizer for SuccessiveHalving {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut adapter = IgnoreFidelity(objective);
        self.run(space, &mut FidelityEval::Serial(&mut adapter), budget)
    }

    fn name(&self) -> &'static str {
        "successive-halving"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::Fidelity;
    use crate::space::{Config, Domain};

    fn space1d() -> SearchSpace {
        SearchSpace::builder()
            .add("x", Domain::float(-5.0, 5.0))
            .build()
            .unwrap()
    }

    fn history(out: &OptOutcome) -> String {
        out.trials
            .iter()
            .map(|t| format!("{}|{}#{:016x};", t.index, t.config, t.score.to_bits()))
            .collect()
    }

    #[test]
    fn default_geometry_spends_forty_evals() {
        // 27 + 9 + 3 + 1 = 40 trials, fractions 1/27, 1/9, 1/3, 1/1.
        let space = space1d();
        let obj = |c: &Config, _f: &Fidelity| -c.float_or("x", 0.0).abs();
        let out = SuccessiveHalving::new(7)
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(1000), &Executor::new(1))
            .unwrap();
        assert_eq!(out.trials.len(), 40);
    }

    #[test]
    fn serial_and_parallel_histories_are_byte_identical() {
        let space = space1d();
        let obj = |c: &Config, f: &Fidelity| {
            // Fidelity-dependent score: low rungs measure a noisier proxy.
            -c.float_or("x", 0.0).abs() * (1.0 + 1.0 / f.num().max(1) as f64)
        };
        let sha = SuccessiveHalving::new(42);
        let serial = {
            let mut o = |c: &Config, f: &Fidelity| obj(c, f);
            sha.optimize_fidelity(&space, &mut o, &Budget::evals(1000))
                .unwrap()
        };
        for threads in [1, 2, 8] {
            let par = sha
                .optimize_fidelity_batch(
                    &space,
                    &obj,
                    &Budget::evals(1000),
                    &Executor::new(threads),
                )
                .unwrap();
            assert_eq!(history(&serial), history(&par), "threads={threads}");
        }
    }

    #[test]
    fn incumbent_comes_from_the_deepest_rung() {
        // Low-fidelity scores are inflated; the returned best must still
        // be the full-fidelity finalist, not a lucky cheap measurement.
        let space = space1d();
        let obj = |c: &Config, f: &Fidelity| {
            let base = -c.float_or("x", 0.0).abs();
            if f.is_full() {
                base
            } else {
                base + 100.0 * f.den() as f64
            }
        };
        let out = SuccessiveHalving::new(3)
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(1000), &Executor::new(2))
            .unwrap();
        assert_eq!(out.best_config, out.trials[39].config);
        assert!(out.best_score <= 0.0, "best = {}", out.best_score);
    }

    #[test]
    fn budget_trips_mid_rung_without_promotions() {
        let space = space1d();
        let obj = |c: &Config, _f: &Fidelity| -c.float_or("x", 0.0).abs();
        // 30 evals: rung 0 (27) completes, rung 1 stops after 3 of 9.
        let out = SuccessiveHalving::new(9)
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(30), &Executor::new(4))
            .unwrap();
        assert_eq!(out.trials.len(), 30);
    }

    #[test]
    fn zero_budget_yields_none() {
        let space = space1d();
        let obj = |_c: &Config, _f: &Fidelity| 0.0;
        assert!(SuccessiveHalving::new(1)
            .optimize_fidelity_batch(&space, &obj, &Budget::evals(0), &Executor::new(1))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "r_max")]
    fn incoherent_geometry_panics() {
        let _ = SuccessiveHalving::with_geometry(
            1,
            ShaConfig {
                eta: 3,
                r_min: 1,
                r_max: 10, // not a power of 3
                candidates: 9,
                batch: 8,
            },
        );
    }

    #[test]
    fn rung_geometry_helpers_agree_with_the_ladder() {
        let cfg = ShaConfig::default();
        assert_eq!(cfg.rungs_from(1), 4);
        assert_eq!(cfg.rungs_from(27), 1);
        assert!(cfg.fidelity_at(27).is_full());
        assert_eq!(cfg.fidelity_at(9), Fidelity::fraction(1, 3));
    }
}
