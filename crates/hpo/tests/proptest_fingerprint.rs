//! Seeded property tests: canonical cache-fingerprint laws.
//!
//! Whatever the config shape, (1) equal configs produce equal keys,
//! (2) perturbing any single parameter produces a different key,
//! (3) key equality coincides with config equality (injectivity over
//! random samples), and (4) the NaN / −0.0 / inactive-parameter edge
//! cases neither collide nor panic.
//!
//! Cases are generated from explicit seeds (no proptest: the build is
//! offline, and deterministic replay is a workspace invariant — every
//! failure reproduces from the printed case number).

use automodel_hpo::{
    canonical_f64_bits, Condition, Config, Domain, ParamSpec, ParamValue, SearchSpace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive a per-case rng: distinct streams per (test, case) pair.
fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

/// An arbitrary typed value, including hostile floats.
fn random_value(rng: &mut StdRng) -> ParamValue {
    match rng.gen_range(0..5usize) {
        0 => ParamValue::Int(rng.gen_range(-1_000i64..1_000)),
        1 => ParamValue::Float(rng.gen_range(-100.0f64..100.0)),
        2 => ParamValue::Cat(rng.gen_range(0usize..8)),
        3 => ParamValue::Bool(rng.gen()),
        // Hostile floats the key must survive: NaN payloads, ±0, infinities.
        _ => ParamValue::Float(match rng.gen_range(0..5usize) {
            0 => f64::NAN,
            1 => -f64::NAN,
            2 => -0.0,
            3 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        }),
    }
}

/// A config of 0..8 params with random names (some sharing prefixes, to
/// probe the length-prefix law).
fn random_config(rng: &mut StdRng) -> Config {
    let mut c = Config::new();
    let n = rng.gen_range(0usize..8);
    for i in 0..n {
        let name = match rng.gen_range(0..3usize) {
            0 => format!("p{i}"),
            1 => format!("p{i}x"), // prefix-aliasing sibling
            _ => format!("param_{i}"),
        };
        let v = random_value(rng);
        c.set(name, v);
    }
    c
}

/// Two values are key-equal iff `Config` equality treats them as equal
/// (floats via canonical bits, so all NaNs are one value and −0.0 = +0.0).
fn values_equal(a: &ParamValue, b: &ParamValue) -> bool {
    match (a, b) {
        (ParamValue::Float(x), ParamValue::Float(y)) => {
            canonical_f64_bits(*x) == canonical_f64_bits(*y)
        }
        _ => a == b,
    }
}

fn configs_equal(a: &Config, b: &Config) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|(k, v)| b.get(k).is_some_and(|w| values_equal(v, w)))
}

#[test]
fn equal_configs_always_produce_equal_keys() {
    for case in 0..256u64 {
        let mut rng = case_rng(11, case);
        let c = random_config(&mut rng);
        // A clone keys identically.
        assert_eq!(c.cache_key(), c.clone().cache_key(), "case {case}");
        // Rebuilding in reverse insertion order keys identically too.
        let mut rebuilt = Config::new();
        let pairs: Vec<_> = c.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        for (k, v) in pairs.into_iter().rev() {
            rebuilt.set(k, v);
        }
        assert_eq!(c.cache_key(), rebuilt.cache_key(), "case {case}");
    }
}

#[test]
fn any_single_param_perturbation_changes_the_key() {
    for case in 0..256u64 {
        let mut rng = case_rng(12, case);
        let c = random_config(&mut rng);
        let base = c.cache_key();
        let names: Vec<String> = c.iter().map(|(k, _)| k.clone()).collect();
        for name in &names {
            let mut perturbed = c.clone();
            // Replace with a value guaranteed key-distinct from the old one.
            let old = c.get(name).cloned().expect("name came from the config");
            let new = loop {
                let v = random_value(&mut rng);
                if !values_equal(&v, &old) {
                    break v;
                }
            };
            perturbed.set(name.clone(), new);
            assert_ne!(perturbed.cache_key(), base, "case {case}: {name}");
        }
        // Dropping a parameter changes the key as well (count prefix).
        if let Some(name) = names.first() {
            let mut smaller = Config::new();
            for (k, v) in c.iter().filter(|(k, _)| k != &name) {
                smaller.set(k.clone(), v.clone());
            }
            assert_ne!(smaller.cache_key(), base, "case {case}: dropped {name}");
        }
    }
}

#[test]
fn key_equality_coincides_with_config_equality() {
    // Injectivity over a random sample: distinct configs (up to float
    // canonicalization) never collide, equal ones never split.
    for case in 0..64u64 {
        let mut rng = case_rng(13, case);
        let configs: Vec<Config> = (0..12).map(|_| random_config(&mut rng)).collect();
        for a in &configs {
            for b in &configs {
                assert_eq!(
                    a.cache_key() == b.cache_key(),
                    configs_equal(a, b),
                    "case {case}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn hostile_floats_never_panic_and_collapse_canonically() {
    for case in 0..128u64 {
        let mut rng = case_rng(14, case);
        let mut c = random_config(&mut rng);
        // Every NaN spelling keys identically; −0.0 keys as +0.0.
        let payload = f64::from_bits(0x7ff8_0000_0000_0000 | rng.gen_range(1u64..0xFFFF));
        c.set("hostile", ParamValue::Float(f64::NAN));
        let quiet = c.cache_key();
        c.set("hostile", ParamValue::Float(-f64::NAN));
        assert_eq!(c.cache_key(), quiet, "case {case}: -NaN split the key");
        c.set("hostile", ParamValue::Float(payload));
        assert_eq!(c.cache_key(), quiet, "case {case}: payload split the key");
        c.set("hostile", ParamValue::Float(-0.0));
        let neg_zero = c.cache_key();
        c.set("hostile", ParamValue::Float(0.0));
        assert_eq!(c.cache_key(), neg_zero, "case {case}: -0.0 split the key");
        // And NaN is not zero, nor any finite perturbation of it.
        assert_ne!(quiet, neg_zero, "case {case}");
    }
}

#[test]
fn inactive_params_never_split_space_keys() {
    for case in 0..128u64 {
        let mut rng = case_rng(15, case);
        // A gated space: `child` is active only under `root = 0`.
        let n_options = rng.gen_range(2usize..5);
        let space = SearchSpace::new(vec![
            ParamSpec {
                name: "root".into(),
                domain: Domain::Cat {
                    options: (0..n_options).map(|i| format!("o{i}")).collect(),
                },
                condition: None,
            },
            ParamSpec {
                name: "child".into(),
                domain: Domain::float(0.0, 1.0),
                condition: Some(Condition::cat_eq("root", 0)),
            },
        ])
        .expect("static space is valid");
        // Pick a root that deactivates the child.
        let inactive_root = rng.gen_range(1usize..n_options);
        let mut clean = Config::new();
        clean.set("root", ParamValue::Cat(inactive_root));
        let mut stale = clean.clone();
        stale.set("child", ParamValue::Float(rng.gen_range(0.0..1.0)));
        assert_eq!(
            space.cache_key(&clean).unwrap(),
            space.cache_key(&stale).unwrap(),
            "case {case}: inactive params split the key"
        );
        // An undeclared parameter is a typed error, never a silent merge.
        let mut alien = stale.clone();
        alien.set("debris", random_value(&mut rng));
        let err = space
            .cache_key(&alien)
            .expect_err("unknown params must fail fingerprinting");
        assert_eq!(err.param, "debris", "case {case}");
        // With the gate open, the child value must distinguish.
        let mut active_a = Config::new();
        active_a.set("root", ParamValue::Cat(0));
        active_a.set("child", ParamValue::Float(0.25));
        let mut active_b = active_a.clone();
        active_b.set("child", ParamValue::Float(0.75));
        assert_ne!(
            space.cache_key(&active_a).unwrap(),
            space.cache_key(&active_b).unwrap(),
            "case {case}"
        );
    }
}
