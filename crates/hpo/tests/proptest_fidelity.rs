//! Seeded property tests: fidelity-fingerprint and subsampling laws.
//!
//! Whatever the config shape, (1) the same configuration at distinct
//! fidelities keys to distinct cache entries, (2) equal (reduced)
//! fidelities key identically — hostile floats included — and (3) the
//! full-fidelity key is exactly the legacy `cache_key()`, so existing
//! caches, warm-start stores and checkpoints keep hitting. And whatever
//! the dataset shape, seeded stratified row subsampling is (4)
//! deterministic, (5) stratified with a 2-row floor per present class,
//! and (6) *nested*: a rung's subset is contained in every higher rung's.
//!
//! Cases are generated from explicit seeds (no proptest: the build is
//! offline, and deterministic replay is a workspace invariant — every
//! failure reproduces from the printed case number).

use automodel_data::{stratified_nested_rows, SynthFamily, SynthSpec};
use automodel_hpo::{Config, Fidelity, ParamValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Derive a per-case rng: distinct streams per (test, case) pair.
fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

/// An arbitrary typed value, including hostile floats.
fn random_value(rng: &mut StdRng) -> ParamValue {
    match rng.gen_range(0..5usize) {
        0 => ParamValue::Int(rng.gen_range(-1_000i64..1_000)),
        1 => ParamValue::Float(rng.gen_range(-100.0f64..100.0)),
        2 => ParamValue::Cat(rng.gen_range(0usize..8)),
        3 => ParamValue::Bool(rng.gen()),
        _ => ParamValue::Float(match rng.gen_range(0..5usize) {
            0 => f64::NAN,
            1 => -f64::NAN,
            2 => -0.0,
            3 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        }),
    }
}

fn random_config(rng: &mut StdRng) -> Config {
    let mut c = Config::new();
    let n = rng.gen_range(0usize..8);
    for i in 0..n {
        let v = random_value(rng);
        c.set(format!("p{i}"), v);
    }
    c
}

/// A random non-full fidelity with optional fold/epoch overrides.
fn random_fidelity(rng: &mut StdRng) -> Fidelity {
    let den = rng.gen_range(2u32..30);
    let num = rng.gen_range(1u32..den);
    let mut f = Fidelity::fraction(num, den);
    if rng.gen_bool(0.5) {
        f = f.with_cv_folds(rng.gen_range(2u32..10));
    }
    if rng.gen_bool(0.5) {
        f = f.with_epoch_cap(rng.gen_range(1u32..200));
    }
    f
}

#[test]
fn distinct_fidelities_split_the_key_equal_ones_never_do() {
    for case in 0..256u64 {
        let mut rng = case_rng(21, case);
        let c = random_config(&mut rng);
        let a = random_fidelity(&mut rng);
        let b = random_fidelity(&mut rng);
        let key_a = c.cache_key_at(&a);
        let key_b = c.cache_key_at(&b);
        // Key equality coincides with fidelity equality (fractions are
        // gcd-reduced inside Fidelity, so == is semantic equality).
        assert_eq!(key_a == key_b, a == b, "case {case}: {a} vs {b}");
        // Hostile floats in the config never bleed into the suffix: a
        // clone keys identically at the same fidelity.
        assert_eq!(key_a, c.clone().cache_key_at(&a), "case {case}");
        // And low fidelity never collides with full.
        assert_ne!(key_a, c.cache_key_at(&Fidelity::full()), "case {case}");
    }
}

#[test]
fn equivalent_fractions_key_identically() {
    for case in 0..256u64 {
        let mut rng = case_rng(22, case);
        let c = random_config(&mut rng);
        let den = rng.gen_range(2u32..20);
        let num = rng.gen_range(1u32..den);
        let scale = rng.gen_range(2u32..9);
        let plain = Fidelity::fraction(num, den);
        let scaled = Fidelity::fraction(num * scale, den * scale);
        assert_eq!(
            c.cache_key_at(&plain),
            c.cache_key_at(&scaled),
            "case {case}: {num}/{den} != {}/{}",
            num * scale,
            den * scale
        );
        // But a fold or epoch override splits the key again.
        assert_ne!(
            c.cache_key_at(&plain),
            c.cache_key_at(&plain.with_cv_folds(3)),
            "case {case}"
        );
        assert_ne!(
            c.cache_key_at(&plain),
            c.cache_key_at(&plain.with_epoch_cap(17)),
            "case {case}"
        );
    }
}

#[test]
fn full_fidelity_key_is_the_legacy_key() {
    // Cache/warm-start/checkpoint compatibility: full-fidelity trials
    // must keep hitting entries recorded before fidelity existed.
    for case in 0..256u64 {
        let mut rng = case_rng(23, case);
        let c = random_config(&mut rng);
        assert_eq!(
            c.cache_key_at(&Fidelity::full()),
            c.cache_key(),
            "case {case}"
        );
        // Any reducible n/n spelling is full fidelity too.
        let n = rng.gen_range(1u32..50);
        assert_eq!(
            c.cache_key_at(&Fidelity::fraction(n, n)),
            c.cache_key(),
            "case {case}"
        );
    }
}

#[test]
fn subsampling_is_deterministic_and_seed_sensitive() {
    for case in 0..32u64 {
        let mut rng = case_rng(24, case);
        let rows = rng.gen_range(40usize..200);
        let classes = rng.gen_range(2usize..5);
        let data = SynthSpec::new(
            format!("d{case}"),
            rows,
            3,
            0,
            classes,
            SynthFamily::Hyperplane,
            case,
        )
        .generate();
        let den = rng.gen_range(2u32..10);
        let num = rng.gen_range(1u32..den);
        let seed = rng.gen::<u64>();
        let a = stratified_nested_rows(&data, num, den, seed);
        let b = stratified_nested_rows(&data, num, den, seed);
        assert_eq!(a, b, "case {case}: same seed diverged");
        let other = stratified_nested_rows(&data, num, den, seed ^ 1);
        // With more rows than the per-class floor, a different seed
        // picks a different subset (equality is astronomically unlikely
        // and would indicate the seed is ignored).
        if rows > 60 && a.len() < rows * 3 / 4 {
            assert_ne!(a, other, "case {case}: seed is ignored");
        }
    }
}

#[test]
fn subsampling_is_stratified_with_a_two_row_floor() {
    for case in 0..32u64 {
        let mut rng = case_rng(25, case);
        let rows = rng.gen_range(60usize..200);
        let classes = rng.gen_range(2usize..6);
        let data = SynthSpec::new(
            format!("s{case}"),
            rows,
            2,
            1,
            classes,
            SynthFamily::Mixed,
            case * 31 + 7,
        )
        .generate();
        let den = rng.gen_range(2u32..12);
        let num = rng.gen_range(1u32..den);
        let picked = stratified_nested_rows(&data, num, den, 99);
        let full_counts = data.class_counts();
        let mut sub_counts = vec![0usize; full_counts.len()];
        for &r in &picked {
            sub_counts[data.label(r)] += 1;
        }
        for (class, (&full, &sub)) in full_counts.iter().zip(&sub_counts).enumerate() {
            if full == 0 {
                assert_eq!(sub, 0, "case {case}: phantom rows for class {class}");
                continue;
            }
            // Ceil of the proportional share, floored at min(full, 2).
            let share = (full as u64 * num as u64).div_ceil(den as u64) as usize;
            let expect = share.max(full.min(2)).min(full);
            assert_eq!(
                sub, expect,
                "case {case}: class {class} got {sub} of {full} rows at {num}/{den}"
            );
        }
    }
}

#[test]
fn subsets_nest_along_any_fidelity_ladder() {
    for case in 0..32u64 {
        let mut rng = case_rng(26, case);
        let rows = rng.gen_range(50usize..180);
        let classes = rng.gen_range(2usize..5);
        let data = SynthSpec::new(
            format!("n{case}"),
            rows,
            3,
            0,
            classes,
            SynthFamily::GaussianBlobs { spread: 1.0 },
            case * 17 + 3,
        )
        .generate();
        let seed = rng.gen::<u64>();
        // A random increasing ladder of fractions over one denominator.
        let den = rng.gen_range(4u32..28);
        let mut nums: Vec<u32> = (1..=den).collect();
        // Keep a sorted random subset as the ladder.
        nums.retain(|_| rng.gen_bool(0.4));
        nums.push(den);
        nums.sort_unstable();
        nums.dedup();
        let mut previous: Option<BTreeSet<usize>> = None;
        for &num in &nums {
            let rows_at: BTreeSet<usize> = stratified_nested_rows(&data, num, den, seed)
                .into_iter()
                .collect();
            if let Some(smaller) = &previous {
                assert!(
                    smaller.is_subset(&rows_at),
                    "case {case}: subset at {}/{den} not nested in {num}/{den}",
                    smaller.len()
                );
            }
            previous = Some(rows_at);
        }
        // The top of the ladder is the whole dataset.
        assert_eq!(previous.map(|s| s.len()), Some(rows), "case {case}");
    }
}
