//! Seeded property tests: search-space invariants.
//!
//! Whatever the space shape, (1) sampling always yields a valid config,
//! (2) repair always yields a valid config from arbitrary wreckage,
//! (3) neighbor perturbation preserves validity, (4) encode produces a
//! constant-width finite vector, and (5) every optimizer only ever
//! evaluates valid configurations.
//!
//! Cases are generated from explicit seeds (no proptest: the build is
//! offline, and deterministic replay is a workspace invariant — every
//! failure reproduces from the printed case number).

use automodel_hpo::{
    BayesianOptimization, Budget, Condition, Config, Domain, FnObjective, GeneticAlgorithm,
    GridSearch, Optimizer, ParamSpec, ParamValue, RandomSearch, SearchSpace, SmacLite,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arbitrary unconditional domain.
fn random_domain(rng: &mut StdRng) -> Domain {
    match rng.gen_range(0..6usize) {
        0 => {
            let lo = rng.gen_range(-50i64..50);
            let span = rng.gen_range(1i64..50);
            Domain::int(lo, lo + span)
        }
        1 => {
            let lo = rng.gen_range(1i64..20);
            let span = rng.gen_range(1i64..100);
            Domain::int_log(lo, lo + span)
        }
        2 => {
            let lo = rng.gen_range(-10.0f64..10.0);
            let span = rng.gen_range(0.1f64..20.0);
            Domain::float(lo, lo + span)
        }
        3 => {
            let lo = rng.gen_range(0.001f64..1.0);
            let mult = rng.gen_range(1.1f64..100.0);
            Domain::float_log(lo, lo * mult)
        }
        4 => {
            let n = rng.gen_range(2usize..6);
            Domain::Cat {
                options: (0..n).map(|i| format!("opt{i}")).collect(),
            }
        }
        _ => Domain::Bool,
    }
}

/// A space of 1..8 params where each param after the first may be gated on
/// the first when the first is categorical.
fn random_space(rng: &mut StdRng) -> SearchSpace {
    let root = random_domain(rng);
    let root_is_cat = matches!(root, Domain::Cat { .. });
    let mut params = vec![ParamSpec {
        name: "p0".to_string(),
        domain: root,
        condition: None,
    }];
    let extra = rng.gen_range(0usize..7);
    for i in 0..extra {
        let domain = random_domain(rng);
        let conditional: bool = rng.gen();
        let condition = if conditional && root_is_cat {
            Some(Condition::cat_eq("p0", 0))
        } else {
            None
        };
        params.push(ParamSpec {
            name: format!("p{}", i + 1),
            domain,
            condition,
        });
    }
    SearchSpace::new(params).expect("generated space is structurally valid")
}

/// Derive a per-case rng: distinct streams per (test, case) pair.
fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

#[test]
fn sampling_always_validates() {
    for case in 0..64u64 {
        let mut rng = case_rng(1, case);
        let space = random_space(&mut rng);
        for _ in 0..10 {
            let c = space.sample(&mut rng);
            assert!(space.validate(&c).is_ok(), "case {case}: {c}");
        }
    }
}

#[test]
fn repair_always_validates() {
    for case in 0..64u64 {
        let mut rng = case_rng(2, case);
        let space = random_space(&mut rng);
        // Wreckage: out-of-range values under wrong names.
        let mut raw = Config::new();
        raw.set("p0", ParamValue::Int(i64::MAX));
        raw.set("p1", ParamValue::Float(f64::MAX));
        raw.set("nonsense", ParamValue::Bool(true));
        let fixed = space.repair(&raw, &mut rng);
        assert!(space.validate(&fixed).is_ok(), "case {case}: {fixed}");
    }
}

#[test]
fn neighbor_preserves_validity() {
    for case in 0..64u64 {
        let mut rng = case_rng(3, case);
        let space = random_space(&mut rng);
        let mut c = space.sample(&mut rng);
        for _ in 0..8 {
            c = space.neighbor(&c, 0.6, 0.4, &mut rng);
            assert!(space.validate(&c).is_ok(), "case {case}: {c}");
        }
    }
}

#[test]
fn encode_width_is_constant_and_finite() {
    for case in 0..64u64 {
        let mut rng = case_rng(4, case);
        let space = random_space(&mut rng);
        for _ in 0..5 {
            let c = space.sample(&mut rng);
            let v = space.encode(&c);
            assert_eq!(v.len(), space.encoded_width(), "case {case}");
            assert!(v.iter().all(|x| x.is_finite()), "case {case}: {v:?}");
        }
    }
}

#[test]
fn optimizers_only_evaluate_valid_configs() {
    for case in 0..16u64 {
        let mut rng = case_rng(5, case);
        let space = random_space(&mut rng);
        let seed = case;
        let budget = Budget::evals(12);
        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(RandomSearch::new(seed)),
            Box::new(GridSearch::new(2)),
            Box::new(GeneticAlgorithm::small(seed)),
            Box::new(BayesianOptimization::new(seed)),
            Box::new(SmacLite::new(seed)),
        ];
        for mut optimizer in optimizers {
            let space_ref = &space;
            let mut valid = true;
            let mut obj = FnObjective(|c: &Config| {
                if space_ref.validate(c).is_err() {
                    valid = false;
                }
                c.len() as f64
            });
            let _ = optimizer.optimize(&space, &mut obj, &budget);
            assert!(
                valid,
                "case {case}: {} evaluated an invalid config",
                optimizer.name()
            );
        }
    }
}

#[test]
fn decode_of_encode_is_identity_on_flat_spaces() {
    // Flat space (no conditionals): decode ∘ encode = id up to float noise.
    let space = SearchSpace::builder()
        .add("a", Domain::int(0, 9))
        .add("b", Domain::float(-1.0, 1.0))
        .add("c", Domain::cat(&["x", "y", "z"]))
        .add("d", Domain::Bool)
        .build()
        .unwrap();
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = space.sample(&mut rng);
        let back = space.decode(&space.encode(&c));
        assert_eq!(back.get("a"), c.get("a"), "seed {seed}");
        assert_eq!(back.get("c"), c.get("c"), "seed {seed}");
        assert_eq!(back.get("d"), c.get("d"), "seed {seed}");
        let (f0, f1) = (c.float_or("b", 9.0), back.float_or("b", -9.0));
        assert!((f0 - f1).abs() < 1e-9, "seed {seed}: {f0} vs {f1}");
    }
}
