//! Property tests: search-space invariants.
//!
//! Whatever the space shape, (1) sampling always yields a valid config,
//! (2) repair always yields a valid config from arbitrary wreckage,
//! (3) neighbor perturbation preserves validity, (4) encode produces a
//! constant-width finite vector, and (5) every optimizer only ever
//! evaluates valid configurations.

use automodel_hpo::{
    BayesianOptimization, Budget, Condition, Config, Domain, FnObjective, GeneticAlgorithm,
    GridSearch, Optimizer, ParamSpec, ParamValue, RandomSearch, SearchSpace, SmacLite,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary unconditional domain.
fn domain_strategy() -> impl Strategy<Value = Domain> {
    prop_oneof![
        (-50i64..50, 1i64..50).prop_map(|(lo, span)| Domain::int(lo, lo + span)),
        (1i64..20, 1i64..100).prop_map(|(lo, span)| Domain::int_log(lo, lo + span)),
        (-10.0f64..10.0, 0.1f64..20.0).prop_map(|(lo, span)| Domain::float(lo, lo + span)),
        (0.001f64..1.0, 1.1f64..100.0).prop_map(|(lo, mult)| Domain::float_log(lo, lo * mult)),
        (2usize..6).prop_map(|n| Domain::Cat {
            options: (0..n).map(|i| format!("opt{i}")).collect()
        }),
        Just(Domain::Bool),
    ]
}

/// Strategy: a space of 1..8 params where each param after the first may be
/// gated on the first when the first is categorical.
fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    (
        domain_strategy(),
        prop::collection::vec((domain_strategy(), any::<bool>()), 0..7),
    )
        .prop_map(|(root, rest)| {
            let root_is_cat = matches!(root, Domain::Cat { .. });
            let mut params = vec![ParamSpec {
                name: "p0".to_string(),
                domain: root,
                condition: None,
            }];
            for (i, (domain, conditional)) in rest.into_iter().enumerate() {
                let condition = if conditional && root_is_cat {
                    Some(Condition::cat_eq("p0", 0))
                } else {
                    None
                };
                params.push(ParamSpec {
                    name: format!("p{}", i + 1),
                    domain,
                    condition,
                });
            }
            SearchSpace::new(params).expect("generated space is structurally valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampling_always_validates(space in space_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let c = space.sample(&mut rng);
            prop_assert!(space.validate(&c).is_ok());
        }
    }

    #[test]
    fn repair_always_validates(space in space_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Wreckage: out-of-range values under wrong names.
        let mut raw = Config::new();
        raw.set("p0", ParamValue::Int(i64::MAX));
        raw.set("p1", ParamValue::Float(f64::MAX));
        raw.set("nonsense", ParamValue::Bool(true));
        let fixed = space.repair(&raw, &mut rng);
        prop_assert!(space.validate(&fixed).is_ok());
    }

    #[test]
    fn neighbor_preserves_validity(space in space_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = space.sample(&mut rng);
        for _ in 0..8 {
            c = space.neighbor(&c, 0.6, 0.4, &mut rng);
            prop_assert!(space.validate(&c).is_ok());
        }
    }

    #[test]
    fn encode_width_is_constant_and_finite(space in space_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            let c = space.sample(&mut rng);
            let v = space.encode(&c);
            prop_assert_eq!(v.len(), space.encoded_width());
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn optimizers_only_evaluate_valid_configs(space in space_strategy(), seed in 0u64..100) {
        let budget = Budget::evals(12);
        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(RandomSearch::new(seed)),
            Box::new(GridSearch::new(2)),
            Box::new(GeneticAlgorithm::small(seed)),
            Box::new(BayesianOptimization::new(seed)),
            Box::new(SmacLite::new(seed)),
        ];
        for mut optimizer in optimizers {
            let space_ref = &space;
            let mut valid = true;
            let mut obj = FnObjective(|c: &Config| {
                if space_ref.validate(c).is_err() {
                    valid = false;
                }
                c.len() as f64
            });
            let _ = optimizer.optimize(&space, &mut obj, &budget);
            drop(obj);
            prop_assert!(valid, "{} evaluated an invalid config", optimizer.name());
        }
    }

    #[test]
    fn decode_of_encode_is_identity_on_flat_spaces(seed in 0u64..1000) {
        // Flat space (no conditionals): decode ∘ encode = id up to float noise.
        let space = SearchSpace::builder()
            .add("a", Domain::int(0, 9))
            .add("b", Domain::float(-1.0, 1.0))
            .add("c", Domain::cat(&["x", "y", "z"]))
            .add("d", Domain::Bool)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = space.sample(&mut rng);
        let back = space.decode(&space.encode(&c));
        prop_assert_eq!(back.get("a"), c.get("a"));
        prop_assert_eq!(back.get("c"), c.get("c"));
        prop_assert_eq!(back.get("d"), c.get("d"));
        let (f0, f1) = (c.float_or("b", 9.0), back.float_or("b", -9.0));
        prop_assert!((f0 - f1).abs() < 1e-9);
    }
}
