//! Multi-fidelity evaluation for the CASH pipelines: CV objectives that
//! actually get cheaper at low fidelity, and the inner-optimizer switch
//! that routes UDR / Auto-Weka onto successive halving or Hyperband.
//!
//! A [`Fidelity`] maps onto three cost levers here:
//!
//! * **rows** — the dataset is replaced by its seeded stratified nested
//!   subset ([`stratified_nested_rows`]) at the rung's row fraction;
//!   subsets are memoized per fraction, so every trial of a rung (and
//!   every revisit of the fraction) sees the identical rows;
//! * **folds** — CV folds scale with the fraction (never below 2), or
//!   follow the fidelity's explicit override;
//! * **iterations** — when the algorithm advertises an
//!   [`iteration_param`](automodel_ml::AlgorithmSpec::iteration_param),
//!   its configured value is scaled by the row fraction (and clipped by
//!   the fidelity's explicit cap, when one is set) before the model is
//!   built.
//!
//! All three are pure functions of `(dataset, config, fidelity, seed)` —
//! no wall clock, no thread state — so multi-fidelity runs inherit the
//! workspace's byte-identical replay guarantees unchanged.

use crate::autoweka::AutoWekaConfig;
use automodel_data::{stratified_nested_rows, DataError, Dataset};
use automodel_hpo::{Config, Fidelity, FidelityObjective, ParamValue, TrialFailure, TrialOutcome};
use automodel_ml::{cross_val_accuracy, AlgorithmSpec, Registry};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Which optimizer drives the hyperparameter search inside UDR and the
/// Auto-Weka baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InnerOptimizer {
    /// The paper's routing: probe evaluation cost, then GA or BO (UDR);
    /// SMAC-lite (Auto-Weka).
    #[default]
    Auto,
    /// One deterministic successive-halving bracket over the fidelity
    /// ladder.
    Sha,
    /// The full Hyperband bracket grid.
    Hyperband,
}

impl InnerOptimizer {
    /// Parse a CLI-style name (`auto`, `sha`, `successive-halving`,
    /// `hyperband`).
    pub fn parse(name: &str) -> Option<InnerOptimizer> {
        match name {
            "auto" => Some(InnerOptimizer::Auto),
            "sha" | "successive-halving" => Some(InnerOptimizer::Sha),
            "hyperband" => Some(InnerOptimizer::Hyperband),
            _ => None,
        }
    }
}

impl fmt::Display for InnerOptimizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InnerOptimizer::Auto => "auto",
            InnerOptimizer::Sha => "successive-halving",
            InnerOptimizer::Hyperband => "hyperband",
        })
    }
}

/// Salt for the subset-sampling seed stream, so row subsets never reuse
/// the probe or CV RNG streams.
const SUBSET_SALT: u64 = 0x51D;

/// Memoized fidelity subsets of one dataset. Keyed by the reduced row
/// fraction, so every evaluation at a fraction — across rungs, brackets
/// and optimizers — sees the identical rows.
struct SubsetMemo {
    subsets: BTreeMap<(u32, u32), Dataset>,
}

impl SubsetMemo {
    fn new() -> SubsetMemo {
        SubsetMemo {
            subsets: BTreeMap::new(),
        }
    }

    /// The dataset to evaluate on at `fidelity` (`data` itself at the
    /// full row fraction).
    fn at<'a>(
        &'a mut self,
        data: &'a Dataset,
        fidelity: &Fidelity,
        seed: u64,
    ) -> Result<&'a Dataset, DataError> {
        if fidelity.num() == fidelity.den() {
            return Ok(data);
        }
        let key = (fidelity.num(), fidelity.den());
        match self.subsets.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::btree_map::Entry::Vacant(e) => {
                let rows = stratified_nested_rows(data, key.0, key.1, seed ^ SUBSET_SALT);
                Ok(e.insert(data.subset(&rows)?))
            }
        }
    }
}

/// CV fold count at a fidelity: the explicit override when set, else the
/// base fold count scaled by the row fraction, floored at 2 (a 1-fold
/// "CV" is not a cross-validation).
fn folds_at(base: usize, fidelity: &Fidelity) -> usize {
    if fidelity.cv_folds > 0 {
        fidelity.cv_folds as usize
    } else {
        fidelity.scale(base).clamp(2, base.max(2))
    }
}

/// Scale the spec's iteration parameter (when it has one) down to the
/// fidelity: the configured value is multiplied by the row fraction
/// (ceil, min 1), then clipped by the explicit epoch cap when set.
fn capped_config(spec: &dyn AlgorithmSpec, config: &Config, fidelity: &Fidelity) -> Config {
    let Some(param) = spec.iteration_param() else {
        return config.clone();
    };
    let Some(ParamValue::Int(v)) = config.get(param) else {
        return config.clone();
    };
    let mut iters = *v;
    if fidelity.num() < fidelity.den() && iters > 0 {
        iters = fidelity.scale(iters as usize) as i64;
    }
    if fidelity.epoch_cap > 0 {
        iters = iters.min(fidelity.epoch_cap as i64).max(1);
    }
    if iters == *v {
        return config.clone();
    }
    config.clone().with(param, ParamValue::Int(iters))
}

/// The single-algorithm tuning objective `f(λ, SA, I)` *at a fidelity*:
/// UDR's [`CvObjective`](crate::udr) with the three cost levers applied.
/// Evaluation errors become failed [`TrialOutcome`]s; the last failure is
/// kept so an all-failed search can explain itself.
pub struct FidelityCvObjective<'a> {
    spec: &'a Arc<dyn AlgorithmSpec>,
    data: &'a Dataset,
    folds: usize,
    seed: u64,
    memo: SubsetMemo,
    /// Most recent evaluation failure (for error reporting upstream).
    pub last_failure: Option<TrialFailure>,
}

impl<'a> FidelityCvObjective<'a> {
    pub fn new(
        spec: &'a Arc<dyn AlgorithmSpec>,
        data: &'a Dataset,
        folds: usize,
        seed: u64,
    ) -> FidelityCvObjective<'a> {
        FidelityCvObjective {
            spec,
            data,
            folds,
            seed,
            memo: SubsetMemo::new(),
            last_failure: None,
        }
    }
}

impl FidelityObjective for FidelityCvObjective<'_> {
    fn evaluate_at(&mut self, config: &Config, fidelity: &Fidelity) -> TrialOutcome {
        let spec = self.spec;
        let seed = self.seed;
        let subset = match self.memo.at(self.data, fidelity, seed) {
            Ok(d) => d,
            Err(e) => {
                let outcome = TrialOutcome::Diverged(e.to_string());
                self.last_failure = outcome.failure();
                return outcome;
            }
        };
        let folds = folds_at(self.folds, fidelity);
        let tuned = capped_config(spec.as_ref(), config, fidelity);
        match cross_val_accuracy(|| spec.build(&tuned, seed), subset, folds, seed) {
            Ok(score) => TrialOutcome::from_score(score),
            Err(e) => {
                let outcome = TrialOutcome::Diverged(e.to_string());
                self.last_failure = outcome.failure();
                outcome
            }
        }
    }
}

/// The hierarchical CASH objective *at a fidelity* — the Auto-Weka
/// baseline's objective with the same three cost levers.
pub struct FidelityCashObjective<'a> {
    registry: &'a Registry,
    data: &'a Dataset,
    folds: usize,
    seed: u64,
    memo: SubsetMemo,
    /// Most recent evaluation failure (for error reporting upstream).
    pub last_failure: Option<TrialFailure>,
}

impl<'a> FidelityCashObjective<'a> {
    pub fn new(
        registry: &'a Registry,
        data: &'a Dataset,
        folds: usize,
        seed: u64,
    ) -> FidelityCashObjective<'a> {
        FidelityCashObjective {
            registry,
            data,
            folds,
            seed,
            memo: SubsetMemo::new(),
            last_failure: None,
        }
    }
}

impl FidelityObjective for FidelityCashObjective<'_> {
    fn evaluate_at(&mut self, config: &Config, fidelity: &Fidelity) -> TrialOutcome {
        let Some((name, sub)) = AutoWekaConfig::split_config(self.registry, self.data, config)
        else {
            let outcome = TrialOutcome::Diverged("config names no applicable algorithm".into());
            self.last_failure = outcome.failure();
            return outcome;
        };
        let Some(spec) = self.registry.get(&name) else {
            let outcome = TrialOutcome::Diverged(format!("algorithm '{name}' is not registered"));
            self.last_failure = outcome.failure();
            return outcome;
        };
        let seed = self.seed;
        let subset = match self.memo.at(self.data, fidelity, seed) {
            Ok(d) => d,
            Err(e) => {
                let outcome = TrialOutcome::Diverged(e.to_string());
                self.last_failure = outcome.failure();
                return outcome;
            }
        };
        let folds = folds_at(self.folds, fidelity);
        let tuned = capped_config(spec.as_ref(), &sub, fidelity);
        match cross_val_accuracy(|| spec.build(&tuned, seed), subset, folds, seed) {
            Ok(score) => TrialOutcome::from_score(score),
            Err(e) => {
                let outcome = TrialOutcome::Diverged(e.to_string());
                self.last_failure = outcome.failure();
                outcome
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_data::{SynthFamily, SynthSpec};

    #[test]
    fn inner_optimizer_parses_cli_names() {
        assert_eq!(InnerOptimizer::parse("auto"), Some(InnerOptimizer::Auto));
        assert_eq!(InnerOptimizer::parse("sha"), Some(InnerOptimizer::Sha));
        assert_eq!(
            InnerOptimizer::parse("successive-halving"),
            Some(InnerOptimizer::Sha)
        );
        assert_eq!(
            InnerOptimizer::parse("hyperband"),
            Some(InnerOptimizer::Hyperband)
        );
        assert_eq!(InnerOptimizer::parse("smac"), None);
        assert_eq!(InnerOptimizer::Sha.to_string(), "successive-halving");
    }

    #[test]
    fn folds_scale_with_fidelity_but_never_below_two() {
        assert_eq!(folds_at(10, &Fidelity::full()), 10);
        assert_eq!(folds_at(10, &Fidelity::fraction(1, 3)), 4); // ceil(10/3)
        assert_eq!(folds_at(10, &Fidelity::fraction(1, 27)), 2);
        assert_eq!(folds_at(3, &Fidelity::fraction(1, 9)), 2);
        // Explicit override wins.
        assert_eq!(folds_at(10, &Fidelity::fraction(1, 3).with_cv_folds(7)), 7);
    }

    #[test]
    fn iteration_caps_scale_the_advertised_parameter_only() {
        let registry = Registry::full();
        let mlp = registry.require("MultilayerPerceptron").unwrap();
        let config = mlp.default_config(); // epochs = 150
        let third = capped_config(mlp.as_ref(), &config, &Fidelity::fraction(1, 3));
        assert_eq!(third.int_or("epochs", 0), 50);
        let capped = capped_config(
            mlp.as_ref(),
            &config,
            &Fidelity::fraction(1, 3).with_epoch_cap(20),
        );
        assert_eq!(capped.int_or("epochs", 0), 20);
        // Full fidelity, no cap: untouched.
        let full = capped_config(mlp.as_ref(), &config, &Fidelity::full());
        assert_eq!(full, config);
        // A spec without an iteration knob passes through verbatim.
        let ibk = registry.require("IBk").unwrap();
        let c = ibk.default_config();
        assert_eq!(
            capped_config(ibk.as_ref(), &c, &Fidelity::fraction(1, 9)),
            c
        );
    }

    #[test]
    fn subset_memo_is_stable_and_keeps_full_data_untouched() {
        let data = SynthSpec::new("m", 90, 3, 0, 2, SynthFamily::Hyperplane, 8).generate();
        let mut memo = SubsetMemo::new();
        let full = memo.at(&data, &Fidelity::full(), 7).unwrap();
        assert_eq!(full.n_rows(), 90);
        let n_third = memo
            .at(&data, &Fidelity::fraction(1, 3), 7)
            .unwrap()
            .n_rows();
        assert!((30..90).contains(&n_third), "n = {n_third}");
        // Memoized: the same fraction returns the identical subset.
        let again = memo
            .at(&data, &Fidelity::fraction(1, 3), 7)
            .unwrap()
            .n_rows();
        assert_eq!(n_third, again);
    }

    #[test]
    fn fidelity_cv_objective_scores_cheap_rungs() {
        let registry = Registry::fast();
        let spec = registry.require("IBk").unwrap().clone();
        let data = SynthSpec::new("f", 120, 3, 0, 2, SynthFamily::Hyperplane, 5).generate();
        let mut obj = FidelityCvObjective::new(&spec, &data, 3, 0);
        let config = spec.default_config();
        let low = obj.evaluate_at(&config, &Fidelity::fraction(1, 9));
        let full = obj.evaluate_at(&config, &Fidelity::full());
        assert!(low.score().is_some(), "low-fidelity eval failed: {low:?}");
        assert!(full.score().is_some(), "full eval failed: {full:?}");
    }
}
