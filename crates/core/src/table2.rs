//! The MLP architecture space of Table II.
//!
//! Ten hyperparameters, reproduced verbatim (name → domain):
//!
//! | Table II            | here                  | domain                               |
//! |---------------------|-----------------------|--------------------------------------|
//! | hidden layer        | `hidden_layers`       | int 1–20                             |
//! | hidden layer size   | `hidden_size`         | int 5–100                            |
//! | activation          | `activation`          | relu / tanh / logistic / identity    |
//! | solver              | `solver`              | lbfgs / sgd / adam                   |
//! | learning rate       | `learning_rate`       | constant / invscaling / adaptive, *sgd only* |
//! | max iter            | `max_iter`            | int 100–500                          |
//! | momentum            | `momentum`            | float 0.01–0.99, *sgd only*          |
//! | validation fraction | `validation_fraction` | float 0.01–0.99                      |
//! | beta 1              | `beta_1`              | float 0.01–0.99                      |
//! | beta 2              | `beta_2`              | float 0.01–0.99                      |
//!
//! The two "*sgd only*" rows become conditional parameters, which is exactly
//! the hierarchical-space feature of `automodel-hpo`.

use automodel_hpo::{Condition, Config, Domain, ParamValue, SearchSpace};
use automodel_nn::{Activation, LearningRateSchedule, MlpConfig, Solver};

/// Index of `sgd` in the solver option list (Table II order).
const SOLVER_SGD: usize = 1;

/// Build the Table II search space.
pub fn mlp_space() -> SearchSpace {
    SearchSpace::builder()
        .add("hidden_layers", Domain::int(1, 20))
        .add("hidden_size", Domain::int(5, 100))
        .add(
            "activation",
            Domain::cat(&["relu", "tanh", "logistic", "identity"]),
        )
        .add("solver", Domain::cat(&["lbfgs", "sgd", "adam"]))
        .add_if(
            "learning_rate",
            Domain::cat(&["constant", "invscaling", "adaptive"]),
            Condition::cat_eq("solver", SOLVER_SGD),
        )
        .add("max_iter", Domain::int(100, 500))
        .add_if(
            "momentum",
            Domain::float(0.01, 0.99),
            Condition::cat_eq("solver", SOLVER_SGD),
        )
        .add("validation_fraction", Domain::float(0.01, 0.99))
        .add("beta_1", Domain::float(0.01, 0.99))
        .add("beta_2", Domain::float(0.01, 0.99))
        .build()
        // lint:allow(no-panic-lib): fixed literal space, validated by unit test
        .expect("Table II space is statically valid")
}

/// Map a Table II configuration onto a trainable [`MlpConfig`].
/// `max_iter_cap` lets scaled-down experiments bound training cost without
/// changing the searched space.
pub fn mlp_config_from(config: &Config, seed: u64, max_iter_cap: usize) -> MlpConfig {
    let activation = match config.cat_or("activation", 0) {
        0 => Activation::Relu,
        1 => Activation::Tanh,
        2 => Activation::Logistic,
        _ => Activation::Identity,
    };
    let solver = match config.cat_or("solver", 2) {
        0 => Solver::Lbfgs,
        1 => Solver::Sgd,
        _ => Solver::Adam,
    };
    let lr_schedule = match config.cat_or("learning_rate", 0) {
        1 => LearningRateSchedule::InvScaling,
        2 => LearningRateSchedule::Adaptive,
        _ => LearningRateSchedule::Constant,
    };
    MlpConfig {
        hidden_layers: config.int_or("hidden_layers", 1).clamp(1, 20) as usize,
        hidden_size: config.int_or("hidden_size", 16).clamp(5, 100) as usize,
        activation,
        solver,
        lr_schedule,
        max_iter: (config.int_or("max_iter", 200).clamp(100, 500) as usize).min(max_iter_cap),
        momentum: config.float_or("momentum", 0.9).clamp(0.01, 0.99),
        validation_fraction: config
            .float_or("validation_fraction", 0.1)
            .clamp(0.01, 0.99),
        beta1: config.float_or("beta_1", 0.9).clamp(0.01, 0.99),
        beta2: config.float_or("beta_2", 0.999).clamp(0.01, 0.99),
        seed,
        ..MlpConfig::default()
    }
}

/// A sensible default Table II configuration (adam, one hidden layer) —
/// used as the "default architecture" MLP of Algorithm 2.
pub fn default_mlp_point() -> Config {
    Config::new()
        .with("hidden_layers", ParamValue::Int(1))
        .with("hidden_size", ParamValue::Int(32))
        .with("activation", ParamValue::Cat(0))
        .with("solver", ParamValue::Cat(2))
        .with("max_iter", ParamValue::Int(200))
        .with("validation_fraction", ParamValue::Float(0.1))
        .with("beta_1", ParamValue::Float(0.9))
        .with("beta_2", ParamValue::Float(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_has_the_ten_table_ii_parameters() {
        let space = mlp_space();
        assert_eq!(space.len(), 10);
        let names: Vec<&str> = space.params().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "hidden_layers",
                "hidden_size",
                "activation",
                "solver",
                "learning_rate",
                "max_iter",
                "momentum",
                "validation_fraction",
                "beta_1",
                "beta_2"
            ]
        );
    }

    #[test]
    fn sgd_only_params_are_conditional() {
        let space = mlp_space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = space.sample(&mut rng);
            space.validate(&c).unwrap();
            let is_sgd = c.cat_or("solver", 9) == SOLVER_SGD;
            assert_eq!(c.get("momentum").is_some(), is_sgd);
            assert_eq!(c.get("learning_rate").is_some(), is_sgd);
            // betas are unconditional, exactly as printed in Table II.
            assert!(c.get("beta_1").is_some());
            assert!(c.get("beta_2").is_some());
        }
    }

    #[test]
    fn mapping_produces_trainable_configs() {
        let space = mlp_space();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            let mc = mlp_config_from(&c, 7, 500);
            assert!((1..=20).contains(&mc.hidden_layers));
            assert!((5..=100).contains(&mc.hidden_size));
            assert!((100..=500).contains(&mc.max_iter));
            assert!(mc.momentum >= 0.01 && mc.momentum <= 0.99);
        }
    }

    #[test]
    fn max_iter_cap_applies() {
        let c = default_mlp_point().with("max_iter", ParamValue::Int(500));
        let mc = mlp_config_from(&c, 0, 50);
        assert_eq!(mc.max_iter, 50);
    }

    #[test]
    fn default_point_validates() {
        mlp_space().validate(&default_mlp_point()).unwrap();
    }
}
