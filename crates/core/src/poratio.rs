//! The §IV evaluation metrics.
//!
//! * `P(A, D)` — "We utilize GA algorithm to obtain the optimal
//!   hyperparameter setting λ of A, use the 10-fold cross-validation
//!   accuracy to calculate f(λ, A, D) and consider it as P(A, D)"
//!   (Table V). [`EvalContext::performance`] implements exactly that, with
//!   a configurable tuning budget (the paper uses a 10³-second GA limit; the
//!   scaled experiments use evaluation counts) and a process-wide cache so
//!   Tables VI–XIII can share measurements.
//! * `Pmax(D)`, `Pavg(D)` — best / average performance over the registry
//!   (average over the algorithms that *can* process `D`).
//! * `PORatio(A, D)` (Definition 1) — the fraction of registry algorithms
//!   not more effective than `A` on `D`. Algorithms that cannot process `D`
//!   count as "not more effective" and stay in the denominator.

use automodel_data::Dataset;
use automodel_hpo::{
    Budget, Executor, FnObjective, GaConfig, GeneticAlgorithm, Optimizer, OptimizerBuilder,
    TrialPolicy,
};
use automodel_ml::{cross_val_accuracy, Registry};
use automodel_trace::Tracer;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared measurement context for the experiment suite.
pub struct EvalContext {
    pub registry: Registry,
    /// Folds of `f(λ, A, D)`.
    pub cv_folds: usize,
    /// GA tuning budget per `(A, D)` pair.
    pub tuning_budget: Budget,
    /// GA population for tuning.
    pub population: usize,
    pub seed: u64,
    /// Structured tracer forwarded into each `P(A, D)` tuning run
    /// (default: disabled). Note: [`EvalContext::all_performances`] runs
    /// measurements concurrently, so a multi-threaded sweep interleaves the
    /// per-run streams in scheduling order; trace single-threaded when the
    /// bytes must be stable.
    pub tracer: Arc<Tracer>,
    cache: Mutex<HashMap<(String, String), Option<f64>>>,
}

impl EvalContext {
    pub fn new(registry: Registry, cv_folds: usize, tuning_budget: Budget) -> EvalContext {
        EvalContext {
            registry,
            cv_folds,
            tuning_budget,
            population: 10,
            seed: 0,
            tracer: Arc::new(Tracer::disabled()),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Scaled-down defaults used by the experiment harness.
    pub fn fast(registry: Registry) -> EvalContext {
        EvalContext::new(registry, 3, Budget::evals(12))
    }

    /// Attach a tracer (default: disabled).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> EvalContext {
        self.tracer = tracer;
        self
    }

    /// `P(A, D)`: GA-tuned CV accuracy; `None` when `A` cannot process `D`.
    /// Cached by `(dataset name, algorithm)` — dataset names must therefore
    /// be unique within one context.
    pub fn performance(&self, data: &Dataset, algorithm: &str) -> Option<f64> {
        let key = (data.name().to_string(), algorithm.to_string());
        if let Some(&cached) = self.cache.lock().get(&key) {
            return cached;
        }
        let value = self.measure(data, algorithm);
        self.cache.lock().insert(key, value);
        value
    }

    fn measure(&self, data: &Dataset, algorithm: &str) -> Option<f64> {
        let spec = self.registry.get(algorithm)?;
        if spec.check_applicable(data).is_err() {
            return None;
        }
        let space = spec.param_space();
        let seed = self.seed;
        let folds = self.cv_folds;
        if space.is_empty() {
            return cross_val_accuracy(
                || spec.build(&spec.default_config(), seed),
                data,
                folds,
                seed,
            )
            .ok();
        }
        let mut objective = FnObjective(|config: &automodel_hpo::Config| {
            cross_val_accuracy(|| spec.build(config, seed), data, folds, seed).unwrap_or(0.0)
        });
        let mut ga = GeneticAlgorithm::with_config(
            seed ^ 0x6A,
            GaConfig {
                population: self.population,
                generations: 1000, // bounded by the budget
                ..GaConfig::default()
            },
        )
        // Fail-closed on a malformed AUTOMODEL_FAULTS spec: `measure`
        // returns Option, and validate_env() at run entry points already
        // rejects the spec strictly before this fallback can fire.
        .with_policy(TrialPolicy::from_env_or_default())
        .with_tracer(Arc::clone(&self.tracer));
        ga.optimize(&space, &mut objective, &self.tuning_budget)
            .map(|o| o.best_score)
    }

    /// `P(A, D)` for every registry algorithm, in registry order, computed
    /// on an [`Executor`] with `threads` workers. Each `(A, D)` measurement
    /// is internally seeded, so the sweep is deterministic at any thread
    /// count; a worker panic propagates to the caller.
    pub fn all_performances(&self, data: &Dataset, threads: usize) -> Vec<(String, Option<f64>)> {
        let names: Vec<String> = self
            .registry
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let executor = Executor::new(threads);
        // lint:allow(contract-conformance): each mapped measurement runs a full GA whose trials route through run_trial inside automodel_hpo
        let scores = executor.map(names.len(), |idx| self.performance(data, &names[idx]));
        names.into_iter().zip(scores).collect()
    }

    /// `Pmax(D)` over precomputed performances.
    pub fn p_max(performances: &[(String, Option<f64>)]) -> Option<f64> {
        performances
            .iter()
            .filter_map(|(_, p)| *p)
            .max_by(f64::total_cmp)
    }

    /// `Pavg(D)`: mean over the algorithms that can process `D`.
    pub fn p_avg(performances: &[(String, Option<f64>)]) -> Option<f64> {
        let values: Vec<f64> = performances.iter().filter_map(|(_, p)| *p).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

/// Definition 1: `PORatio(A, D) = |{A_i : P(A_i, D) ≤ P(A, D)}| / |CAList|`.
/// Returns `None` when `A` itself cannot process `D`. Algorithms that cannot
/// process `D` count toward the numerator (they certainly aren't *more*
/// effective) and the denominator (they are in `CAList`).
pub fn po_ratio(performances: &[(String, Option<f64>)], algorithm: &str) -> Option<f64> {
    let own = performances
        .iter()
        .find(|(n, _)| n == algorithm)
        .and_then(|(_, p)| *p)?;
    let not_better = performances
        .iter()
        .filter(|(_, p)| match p {
            Some(v) => *v <= own,
            None => true,
        })
        .count();
    Some(not_better as f64 / performances.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_data::{SynthFamily, SynthSpec};

    fn ctx() -> EvalContext {
        EvalContext::fast(Registry::fast())
    }

    fn blobs() -> Dataset {
        SynthSpec::new(
            "b",
            120,
            3,
            1,
            2,
            SynthFamily::GaussianBlobs { spread: 0.8 },
            61,
        )
        .generate()
    }

    #[test]
    fn performance_is_cached_and_deterministic() {
        let ctx = ctx();
        let d = blobs();
        let a = ctx.performance(&d, "J48");
        let b = ctx.performance(&d, "J48");
        assert_eq!(a, b);
        assert!(a.unwrap() > 0.5);
    }

    #[test]
    fn inapplicable_algorithms_yield_none() {
        let ctx = EvalContext::fast(Registry::full());
        let numeric = SynthSpec::new("n", 60, 3, 0, 2, SynthFamily::Hyperplane, 3).generate();
        assert_eq!(ctx.performance(&numeric, "Id3"), None);
    }

    #[test]
    fn sweep_is_ordered_and_parallel_matches_serial() {
        let ctx = ctx();
        let d = blobs();
        let serial = ctx.all_performances(&d, 1);
        let ctx2 = EvalContext::fast(Registry::fast());
        let parallel = ctx2.all_performances(&d, 4);
        assert_eq!(serial.len(), ctx.registry.len());
        for ((n1, p1), (n2, p2)) in serial.iter().zip(&parallel) {
            assert_eq!(n1, n2);
            assert_eq!(p1, p2, "{n1}");
        }
    }

    #[test]
    fn po_ratio_matches_definition() {
        let perf = vec![
            ("A".to_string(), Some(0.9)),
            ("B".to_string(), Some(0.7)),
            ("C".to_string(), Some(0.8)),
            ("D".to_string(), None),
        ];
        // A dominates everything: 4/4.
        assert_eq!(po_ratio(&perf, "A"), Some(1.0));
        // B: itself + the inapplicable D ⇒ 2/4.
        assert_eq!(po_ratio(&perf, "B"), Some(0.5));
        // C: C, B, D ⇒ 3/4.
        assert_eq!(po_ratio(&perf, "C"), Some(0.75));
        // D cannot process the dataset.
        assert_eq!(po_ratio(&perf, "D"), None);
    }

    #[test]
    fn p_max_and_p_avg_skip_inapplicable() {
        let perf = vec![
            ("A".to_string(), Some(0.9)),
            ("B".to_string(), Some(0.5)),
            ("C".to_string(), None),
        ];
        assert_eq!(EvalContext::p_max(&perf), Some(0.9));
        assert!((EvalContext::p_avg(&perf).unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(EvalContext::p_max(&[]), None);
    }
}
