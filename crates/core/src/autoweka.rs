//! The Auto-Weka baseline (Thornton et al. 2013, the paper's comparator).
//!
//! Auto-Weka "transforms the CASH problem into a single hierarchical
//! hyperparameter optimization problem, in which even the choice of
//! algorithm itself is considered as a hyperparameter", then solves it with
//! SMAC. [`AutoWekaConfig::cash_space`] builds exactly that hierarchical
//! space over our registry — a root categorical `algorithm` parameter
//! gating each algorithm's (prefixed) subspace — and
//! [`AutoWekaConfig::solve`] searches it with SMAC-lite.

use crate::error::CoreError;
use crate::fidelity::{FidelityCashObjective, InnerOptimizer};
use crate::udr::Solution;
use automodel_data::Dataset;
use automodel_hpo::{
    Budget, Config, Hyperband, Objective, Optimizer, OptimizerBuilder, ParamSpec, SearchSpace,
    SmacLite, SuccessiveHalving, TrialOutcome, TrialPolicy,
};
use automodel_ml::{cross_val_accuracy, Registry};
use automodel_trace::{TraceEvent, Tracer};
use std::sync::Arc;

/// Baseline knobs.
#[derive(Debug, Clone)]
pub struct AutoWekaConfig {
    pub budget: Budget,
    pub cv_folds: usize,
    pub seed: u64,
    /// Structured tracer: a stage span around the hierarchical search plus
    /// the SMAC run's full event stream (default: disabled).
    pub tracer: Arc<Tracer>,
    /// Which optimizer searches the hierarchical space.
    /// [`InnerOptimizer::Auto`] (the default) is SMAC-lite; `Sha` and
    /// `Hyperband` run the multi-fidelity schedulers over row/fold/
    /// iteration-reduced evaluations instead.
    pub optimizer: InnerOptimizer,
}

impl AutoWekaConfig {
    pub fn new(budget: Budget) -> AutoWekaConfig {
        AutoWekaConfig {
            budget,
            cv_folds: 10,
            seed: 0,
            tracer: Arc::new(Tracer::disabled()),
            optimizer: InnerOptimizer::Auto,
        }
    }

    /// Scaled-down defaults matching [`crate::udr::UdrConfig::fast`].
    pub fn fast() -> AutoWekaConfig {
        AutoWekaConfig {
            budget: Budget::evals(40),
            cv_folds: 3,
            seed: 0,
            tracer: Arc::new(Tracer::disabled()),
            optimizer: InnerOptimizer::Auto,
        }
    }

    /// Attach a tracer (default: disabled).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> AutoWekaConfig {
        self.tracer = tracer;
        self
    }

    /// Select the CASH optimizer explicitly (`sha` / `hyperband` replace
    /// SMAC-lite with a multi-fidelity scheduler).
    pub fn with_optimizer(mut self, optimizer: InnerOptimizer) -> AutoWekaConfig {
        self.optimizer = optimizer;
        self
    }

    /// The hierarchical CASH space: `algorithm ∈ {applicable names}`, and
    /// for each algorithm `A` every parameter `p` of `A`'s space appears as
    /// `A.p`, active only when `algorithm = A`. (Conditions *within* an
    /// algorithm's own space are preserved by prefixing their parents too.)
    pub fn cash_space(registry: &Registry, data: &Dataset) -> Result<SearchSpace, CoreError> {
        let applicable: Vec<&str> = registry
            .iter()
            .filter(|s| s.check_applicable(data).is_ok())
            .map(|s| s.name())
            .collect();
        if applicable.is_empty() {
            return Err(CoreError::NothingApplicable(data.name().to_string()));
        }
        let mut params = vec![ParamSpec {
            name: "algorithm".into(),
            domain: automodel_hpo::Domain::Cat {
                options: applicable.iter().map(|s| s.to_string()).collect(),
            },
            condition: None,
        }];
        for (idx, name) in applicable.iter().enumerate() {
            // lint:allow(no-panic-lib): `applicable` was filtered from this registry
            let spec = registry.get(name).expect("applicable name is registered");
            for p in spec.param_space().params() {
                let condition = match &p.condition {
                    // Inner condition: re-point at the prefixed parent. Both
                    // the root gate and the inner gate must hold; since the
                    // prefixed parent is itself gated on the root, the inner
                    // condition subsumes the root one.
                    Some(c) => automodel_hpo::Condition {
                        parent: format!("{name}.{}", c.parent),
                        values: c.values.clone(),
                    },
                    None => automodel_hpo::Condition::cat_eq("algorithm", idx),
                };
                params.push(ParamSpec {
                    name: format!("{name}.{}", p.name),
                    domain: p.domain.clone(),
                    condition: Some(condition),
                });
            }
        }
        SearchSpace::new(params).map_err(|e| {
            // Static registry spaces are valid; a failure here is a bug.
            // lint:allow(no-panic-lib): registry spaces are static, failure is a bug
            panic!("CASH space construction failed: {e}")
        })
    }

    /// Extract algorithm name + de-prefixed sub-config from a CASH config.
    pub fn split_config(
        registry: &Registry,
        data: &Dataset,
        config: &Config,
    ) -> Option<(String, Config)> {
        let applicable: Vec<&str> = registry
            .iter()
            .filter(|s| s.check_applicable(data).is_ok())
            .map(|s| s.name())
            .collect();
        let idx = config.cat_or("algorithm", usize::MAX);
        let name = applicable.get(idx)?.to_string();
        let prefix = format!("{name}.");
        let mut sub = Config::new();
        for (key, value) in config.iter() {
            if let Some(stripped) = key.strip_prefix(&prefix) {
                sub.set(stripped.to_string(), value.clone());
            }
        }
        Some((name, sub))
    }

    /// Solve the CASH problem over the full registry — with SMAC-lite
    /// (the default), or the `sha`/`hyperband` multi-fidelity schedulers
    /// when selected via [`AutoWekaConfig::with_optimizer`].
    pub fn solve(&self, registry: &Registry, data: &Dataset) -> Result<Solution, CoreError> {
        let space = Self::cash_space(registry, data)?;
        let traced = self.tracer.is_enabled();
        let policy = TrialPolicy::from_env()?;
        if traced {
            self.tracer.emit(TraceEvent::stage_start("autoweka.cash"));
        }
        let outcome = match self.optimizer {
            InnerOptimizer::Auto => {
                let mut objective = CashObjective {
                    registry,
                    data,
                    folds: self.cv_folds,
                    seed: self.seed,
                };
                let mut smac = SmacLite::new(self.seed)
                    .with_policy(policy)
                    .with_tracer(Arc::clone(&self.tracer));
                smac.optimize(&space, &mut objective, &self.budget)
            }
            InnerOptimizer::Sha => {
                let mut objective =
                    FidelityCashObjective::new(registry, data, self.cv_folds, self.seed);
                let sha = SuccessiveHalving::new(self.seed)
                    .with_policy(policy)
                    .with_tracer(Arc::clone(&self.tracer));
                sha.optimize_fidelity(&space, &mut objective, &self.budget)
            }
            InnerOptimizer::Hyperband => {
                let mut objective =
                    FidelityCashObjective::new(registry, data, self.cv_folds, self.seed);
                let hb = Hyperband::new(self.seed)
                    .with_policy(policy)
                    .with_tracer(Arc::clone(&self.tracer));
                hb.optimize_fidelity(&space, &mut objective, &self.budget)
            }
        };
        if traced {
            let detail = match &outcome {
                Some(o) => format!("{} trials over {} params", o.trials.len(), space.len()),
                None => "search returned nothing".to_string(),
            };
            self.tracer
                .emit(TraceEvent::stage_end("autoweka.cash", detail));
        }
        let outcome = outcome.ok_or(CoreError::EmptySearch)?;
        let (algorithm, sub) = Self::split_config(registry, data, &outcome.best_config)
            // lint:allow(no-panic-lib): the optimizer only returns configs it sampled
            .expect("best config came from the CASH space");
        let technique = match self.optimizer {
            InnerOptimizer::Auto => "smac-lite".to_string(),
            inner => inner.to_string(),
        };
        Ok(Solution {
            algorithm,
            config: sub,
            score: outcome.best_score,
            technique,
            trials: outcome.trials.len(),
            quarantined: outcome.quarantine.len(),
            cache_hits: outcome.cache.hits,
            cache_misses: outcome.cache.misses,
        })
    }
}

/// The hierarchical CASH objective, reporting evaluation errors as failed
/// trials so SMAC quarantines broken configurations instead of scoring
/// them 0.
struct CashObjective<'a> {
    registry: &'a Registry,
    data: &'a Dataset,
    folds: usize,
    seed: u64,
}

impl Objective for CashObjective<'_> {
    fn evaluate(&mut self, config: &Config) -> f64 {
        self.evaluate_outcome(config).score().unwrap_or(0.0)
    }

    fn evaluate_outcome(&mut self, config: &Config) -> TrialOutcome {
        let Some((name, sub)) = AutoWekaConfig::split_config(self.registry, self.data, config)
        else {
            return TrialOutcome::Diverged("config names no applicable algorithm".into());
        };
        let Some(spec) = self.registry.get(&name) else {
            return TrialOutcome::Diverged(format!("algorithm '{name}' is not registered"));
        };
        let seed = self.seed;
        match cross_val_accuracy(|| spec.build(&sub, seed), self.data, self.folds, seed) {
            Ok(score) => TrialOutcome::from_score(score),
            Err(e) => TrialOutcome::Diverged(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_data::{SynthFamily, SynthSpec};

    #[test]
    fn cash_space_has_root_plus_prefixed_params() {
        let registry = Registry::fast();
        let data = SynthSpec::new("d", 80, 3, 1, 2, SynthFamily::Mixed, 1).generate();
        let space = AutoWekaConfig::cash_space(&registry, &data).unwrap();
        assert_eq!(space.params()[0].name, "algorithm");
        // Every non-root parameter is prefixed and conditional.
        for p in &space.params()[1..] {
            assert!(p.name.contains('.'), "{}", p.name);
            assert!(p.condition.is_some(), "{}", p.name);
        }
        // Sampling always yields exactly one algorithm's params.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        use rand::SeedableRng;
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            space.validate(&c).unwrap();
            let (name, _) = AutoWekaConfig::split_config(&registry, &data, &c).unwrap();
            for (key, _) in c.iter() {
                if key != "algorithm" {
                    assert!(
                        key.starts_with(&format!("{name}.")),
                        "foreign param {key} active under {name}"
                    );
                }
            }
        }
    }

    #[test]
    fn cash_space_excludes_inapplicable_algorithms() {
        let registry = Registry::full();
        let numeric = SynthSpec::new("n", 60, 3, 0, 2, SynthFamily::Hyperplane, 3).generate();
        let space = AutoWekaConfig::cash_space(&registry, &numeric).unwrap();
        let root = &space.params()[0];
        if let automodel_hpo::Domain::Cat { options } = &root.domain {
            assert!(!options.contains(&"Id3".to_string()), "Id3 is nominal-only");
            assert!(options.contains(&"J48".to_string()));
        } else {
            panic!("root must be categorical");
        }
    }

    #[test]
    fn autoweka_solves_a_small_cash_problem() {
        let registry = Registry::fast();
        let data = SynthSpec::new(
            "d",
            120,
            3,
            1,
            2,
            SynthFamily::GaussianBlobs { spread: 0.8 },
            5,
        )
        .generate();
        let solution = AutoWekaConfig::fast().solve(&registry, &data).unwrap();
        assert!(registry.get(&solution.algorithm).is_some());
        assert!(solution.score > 0.6, "score = {}", solution.score);
        assert_eq!(solution.technique, "smac-lite");
        // The returned sub-config round-trips into the algorithm's space.
        let spec = registry.get(&solution.algorithm).unwrap();
        spec.param_space().validate(&solution.config).unwrap();
    }

    #[test]
    fn autoweka_sha_path_solves_deterministically() {
        let registry = Registry::fast();
        let data = SynthSpec::new(
            "mf",
            120,
            3,
            1,
            2,
            SynthFamily::GaussianBlobs { spread: 0.8 },
            6,
        )
        .generate();
        let cfg = AutoWekaConfig::fast().with_optimizer(InnerOptimizer::Sha);
        let a = cfg.solve(&registry, &data).unwrap();
        let b = cfg.solve(&registry, &data).unwrap();
        assert_eq!(a.technique, "successive-halving");
        assert_eq!(a.algorithm, b.algorithm);
        assert_eq!(a.config, b.config);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        // The returned sub-config round-trips into the algorithm's space.
        let spec = registry.get(&a.algorithm).unwrap();
        spec.param_space().validate(&a.config).unwrap();
    }

    #[test]
    fn split_config_strips_prefixes() {
        let registry = Registry::fast();
        let data = SynthSpec::new("d", 50, 2, 0, 2, SynthFamily::Hyperplane, 7).generate();
        let space = AutoWekaConfig::cash_space(&registry, &data).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let c = space.sample(&mut rng);
        let (name, sub) = AutoWekaConfig::split_config(&registry, &data, &c).unwrap();
        for (key, _) in sub.iter() {
            assert!(!key.contains('.'), "prefix not stripped from {key}");
        }
        assert!(registry.get(&name).is_some());
    }
}
