//! Persisting the trained decision model.
//!
//! Training DMD is the expensive offline phase; deployments want to train
//! once and ship the model. A [`DmdArtifact`] is the serializable part of a
//! [`Dmd`] — key-feature mask, standardizer, trained `SNA`, winning
//! architecture, CRelations provenance — everything except the registry,
//! which is code. Loading re-attaches a registry and checks that its
//! algorithm list matches the one the artifact was trained against
//! (the OneHot' coordinates must line up).

use crate::dmd::{Dmd, KnowledgeRecord};
use crate::error::CoreError;
use automodel_data::encoding::VecStandardizer;
use automodel_data::features::FEATURE_COUNT;
use automodel_ml::Registry;
use automodel_nn::MlpRegressor;
use serde::{Deserialize, Serialize};

/// Serializable snapshot of a trained DMD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DmdArtifact {
    /// Registry algorithm names at training time, in OneHot' order.
    pub algorithms: Vec<String>,
    pub key_features: Vec<bool>,
    pub standardizer: VecStandardizer,
    pub sna: MlpRegressor,
    pub architecture: automodel_hpo::Config,
    /// `(instance, algorithm)` provenance of the training knowledge.
    pub crelations: Vec<(String, String)>,
}

impl Dmd {
    /// Snapshot this model for persistence.
    pub fn to_artifact(&self) -> DmdArtifact {
        DmdArtifact {
            algorithms: self
                .registry
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            key_features: self.key_features.to_vec(),
            standardizer: self.standardizer_clone(),
            sna: self.sna.clone(),
            architecture: self.architecture.clone(),
            crelations: self
                .records
                .iter()
                .map(|r| (r.instance.clone(), r.algorithm.clone()))
                .collect(),
        }
    }
}

impl DmdArtifact {
    /// Pair with a trial-cache snapshot into the binary, integrity-hashed
    /// store format (see `automodel-store`). The snapshot is what lets a
    /// later `dmd build` warm-start: restored entries replay as warm hits,
    /// reproducing the cold run's trial history byte for byte.
    pub fn into_store(self, cache: automodel_hpo::CacheSnapshot) -> automodel_store::StoreArtifact {
        automodel_store::StoreArtifact {
            algorithms: self.algorithms,
            key_features: self.key_features,
            standardizer: self.standardizer,
            sna: self.sna,
            architecture: self.architecture,
            crelations: self.crelations,
            cache,
        }
    }

    /// Split a loaded store artifact back into the serving parts and the
    /// warm-start snapshot.
    pub fn from_store(
        artifact: automodel_store::StoreArtifact,
    ) -> (DmdArtifact, automodel_hpo::CacheSnapshot) {
        (
            DmdArtifact {
                algorithms: artifact.algorithms,
                key_features: artifact.key_features,
                standardizer: artifact.standardizer,
                sna: artifact.sna,
                architecture: artifact.architecture,
                crelations: artifact.crelations,
            },
            artifact.cache,
        )
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<DmdArtifact> {
        serde_json::from_str(s)
    }

    /// Re-attach a registry. Fails unless the registry's algorithm list is
    /// exactly the one the model was trained against (names and order).
    pub fn into_dmd(self, registry: Registry) -> Result<Dmd, CoreError> {
        let names: Vec<String> = registry.names().iter().map(|s| s.to_string()).collect();
        if names != self.algorithms {
            let missing = self
                .algorithms
                .iter()
                .find(|a| !names.contains(a))
                .cloned()
                .unwrap_or_else(|| "registry order changed".to_string());
            return Err(CoreError::UnknownAlgorithm(missing));
        }
        if self.key_features.len() != FEATURE_COUNT {
            return Err(CoreError::NoKnowledge);
        }
        let mut key_features = [false; FEATURE_COUNT];
        key_features.copy_from_slice(&self.key_features);
        // Reconstruct minimal records (features/targets are not persisted —
        // they are training intermediates, not needed for inference).
        let records: Vec<KnowledgeRecord> = self
            .crelations
            .iter()
            .filter_map(|(instance, algorithm)| {
                registry
                    .index_of(algorithm)
                    .map(|algorithm_index| KnowledgeRecord {
                        instance: instance.clone(),
                        algorithm: algorithm.clone(),
                        algorithm_index,
                        features: [0.0; FEATURE_COUNT],
                        target: Vec::new(),
                    })
            })
            .collect();
        Ok(Dmd::from_parts(
            registry,
            key_features,
            self.sna,
            self.standardizer,
            records,
            self.architecture,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmd::{DmdConfig, DmdInput};
    use automodel_data::{SynthFamily, SynthSpec};
    use automodel_knowledge::CorpusSpec;

    fn trained() -> Dmd {
        let corpus = CorpusSpec::small().build();
        let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
        DmdConfig::fast().run(&input).unwrap()
    }

    #[test]
    fn artifact_roundtrips_through_json_and_predicts_identically() {
        let dmd = trained();
        let json = dmd.to_artifact().to_json().unwrap();
        let restored = DmdArtifact::from_json(&json)
            .unwrap()
            .into_dmd(Registry::fast())
            .unwrap();
        let data = SynthSpec::new("check", 120, 4, 1, 3, SynthFamily::Mixed, 71).generate();
        // JSON float text rounds at the last ulp; compare with tolerance.
        for (a, b) in dmd.scores(&data).iter().zip(restored.scores(&data)) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(
            dmd.select_algorithm(&data).unwrap(),
            restored.select_algorithm(&data).unwrap()
        );
    }

    #[test]
    fn artifact_rejects_mismatched_registries() {
        let dmd = trained(); // trained against Registry::fast()
        let artifact = dmd.to_artifact();
        let err = artifact.into_dmd(Registry::full()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownAlgorithm(_)));
    }

    #[test]
    fn artifact_preserves_crelations_provenance() {
        let dmd = trained();
        let artifact = dmd.to_artifact();
        assert_eq!(artifact.crelations.len(), dmd.records.len());
        let restored = artifact.into_dmd(Registry::fast()).unwrap();
        assert_eq!(restored.records.len(), dmd.records.len());
    }
}
