//! The Decision-Making Model Designer (§III-C, Algorithms 1–4).
//!
//! `AutoModelDMD` (Algorithm 4) chains:
//!
//! 1. **Knowledge acquisition** (Algorithm 1, in `automodel-knowledge`) —
//!    experiences → `CRelations = {(instance, optimal algorithm)}`;
//! 2. **Instance feature selection** (Algorithm 2) — a GA over boolean
//!    masks of the 23 Table III features; fitness is the k-fold CV accuracy
//!    of a default-architecture MLP classifier predicting the optimal
//!    algorithm from the masked features;
//! 3. **Architecture search** (Algorithm 3) — a GA over the Table II space;
//!    fitness is `−MSE` of an MLP *regressor* predicting the OneHot' target
//!    (one-hot over the registry with −1 at algorithms that cannot process
//!    the instance); the search stops as soon as the MSE beats `precision`
//!    (the paper's default: 0.0015);
//! 4. training the final decision model `SNA` on all pairs.

use crate::error::CoreError;
use crate::table2::{default_mlp_point, mlp_config_from, mlp_space};
use automodel_data::encoding::VecStandardizer;
use automodel_data::features::{meta_features, select_features, FEATURE_COUNT};
use automodel_data::{Dataset, SynthFamily, SynthSpec};
use automodel_hpo::{
    Budget, CheckpointSink, Domain, FnObjective, GaConfig, GeneticAlgorithm, Objective, OptOutcome,
    Optimizer, OptimizerBuilder, SearchSpace, TrialCache, TrialOutcome, TrialPolicy,
};
use automodel_invariant::debug_invariant;
use automodel_knowledge::{knowledge_acquisition, AcquisitionOptions, Corpus, Experience, Paper};
use automodel_ml::Registry;
use automodel_nn::{MlpClassifier, MlpRegressor};
use automodel_trace::{TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything DMD consumes: the paper corpus plus the datasets behind the
/// task instances the corpus talks about.
#[derive(Debug, Clone)]
pub struct DmdInput {
    pub experiences: Vec<Experience>,
    pub papers: Vec<Paper>,
    pub datasets: BTreeMap<String, Dataset>,
}

impl DmdInput {
    /// Attach synthetic datasets (deterministic per instance name) to a
    /// corpus whose instances have no real data — convenient for examples
    /// and doc tests. Real pipelines attach the actual datasets instead.
    pub fn synthetic_from_corpus(corpus: &Corpus, rows: usize, seed: u64) -> DmdInput {
        let mut datasets = BTreeMap::new();
        for (i, instance) in corpus.true_rankings.keys().enumerate() {
            let family = match i % 4 {
                0 => SynthFamily::GaussianBlobs { spread: 1.0 },
                1 => SynthFamily::Hyperplane,
                2 => SynthFamily::RuleBased { depth: 3 },
                _ => SynthFamily::Mixed,
            };
            let spec = SynthSpec::new(
                instance.clone(),
                rows.max(40),
                2 + i % 6,
                i % 4,
                2 + i % 3,
                family,
                seed ^ (i as u64) << 8,
            );
            datasets.insert(instance.clone(), spec.generate());
        }
        DmdInput {
            experiences: corpus.experiences.clone(),
            papers: corpus.papers.clone(),
            datasets,
        }
    }
}

/// One CRelations entry enriched with the instance's dataset features —
/// the training rows of the decision model.
#[derive(Debug, Clone)]
pub struct KnowledgeRecord {
    pub instance: String,
    pub algorithm: String,
    /// Registry index of `algorithm` (the OneHot' coordinate).
    pub algorithm_index: usize,
    /// Full 23-feature Table III vector.
    pub features: [f64; FEATURE_COUNT],
    /// OneHot' target over the registry.
    pub target: Vec<f64>,
}

/// DMD tuning knobs.
#[derive(Debug, Clone)]
pub struct DmdConfig {
    pub registry: Registry,
    /// Algorithm 1's line-6 threshold.
    pub min_algorithms: usize,
    /// Feature-selection GA (Algorithm 2; paper: 50 × 100).
    pub fs_population: usize,
    pub fs_generations: usize,
    /// Architecture-search GA (Algorithm 3; paper: population 50).
    pub arch_population: usize,
    pub arch_generations: usize,
    /// Stop architecture search when CV MSE < `precision`
    /// (paper default −0.0015, i.e. |MSE| < 0.0015).
    pub precision: f64,
    /// Folds for the meta-level cross-validations.
    pub meta_cv_folds: usize,
    /// Cap on MLP training iterations during the meta searches.
    pub mlp_iter_cap: usize,
    /// Ablation: skip Algorithm 2 and use this fixed feature mask
    /// (e.g. all-true = "no feature selection").
    pub feature_mask_override: Option<[bool; FEATURE_COUNT]>,
    /// Ablation: skip Algorithm 3 and use this fixed Table II point
    /// (e.g. [`crate::table2::default_mlp_point`] = "no architecture search").
    pub architecture_override: Option<automodel_hpo::Config>,
    pub seed: u64,
    /// Structured tracer: stage spans around Algorithm 4's four steps, plus
    /// the inner GA runs' full event streams (default: disabled).
    pub tracer: Arc<Tracer>,
    /// Trial cache shared by the Algorithm 2/3 genetic algorithms. The
    /// two searches use disjoint parameter spaces, so their canonical
    /// fingerprints never collide; sharing one cache lets a warm start
    /// (`TrialCache::restore` from a persisted artifact) pre-seed both
    /// stages at once. Default: `AUTOMODEL_CACHE` semantics.
    pub cache: Arc<TrialCache>,
    /// Crash-recovery checkpoint sink, forwarded to the Algorithm 2/3
    /// genetic algorithms so every meta-search batch boundary is
    /// durably checkpointed (default: none).
    pub checkpoint: Option<Arc<dyn CheckpointSink>>,
}

impl DmdConfig {
    /// Paper-scale settings (slow: thousands of MLP trainings).
    pub fn paper(registry: Registry) -> DmdConfig {
        DmdConfig {
            registry,
            min_algorithms: 5,
            fs_population: 50,
            fs_generations: 100,
            arch_population: 50,
            arch_generations: 100,
            precision: 0.0015,
            meta_cv_folds: 5,
            mlp_iter_cap: 500,
            feature_mask_override: None,
            architecture_override: None,
            seed: 0,
            tracer: Arc::new(Tracer::disabled()),
            cache: Arc::new(TrialCache::from_env_or_disabled()),
            checkpoint: None,
        }
    }

    /// Scaled-down settings that finish in seconds (used by tests, examples
    /// and the default experiment harness; EXPERIMENTS.md records the scale).
    pub fn fast() -> DmdConfig {
        DmdConfig {
            registry: Registry::fast(),
            min_algorithms: 3,
            fs_population: 8,
            fs_generations: 4,
            arch_population: 6,
            arch_generations: 3,
            precision: 0.0015,
            meta_cv_folds: 3,
            mlp_iter_cap: 120,
            feature_mask_override: None,
            architecture_override: None,
            seed: 0,
            tracer: Arc::new(Tracer::disabled()),
            cache: Arc::new(TrialCache::from_env_or_disabled()),
            checkpoint: None,
        }
    }

    /// Same scale as [`DmdConfig::fast`] but over a caller-chosen registry.
    pub fn fast_with(registry: Registry) -> DmdConfig {
        DmdConfig {
            registry,
            ..DmdConfig::fast()
        }
    }

    /// Attach a tracer (default: disabled). The tracer is forwarded to the
    /// Algorithm 2/3 genetic algorithms, so a DMD trace contains both the
    /// stage spans and the inner optimizer runs.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> DmdConfig {
        self.tracer = tracer;
        self
    }

    /// Replace the shared trial cache — a cache pre-seeded via
    /// [`TrialCache::restore`] warm-starts both meta searches.
    pub fn with_cache(mut self, cache: Arc<TrialCache>) -> DmdConfig {
        self.cache = cache;
        self
    }

    /// Attach a crash-recovery checkpoint sink (e.g.
    /// `automodel_store::Checkpointer`): both meta-search GAs then
    /// persist their committed state at every batch boundary, so a
    /// killed build can resume via warm replay.
    pub fn with_checkpoint(mut self, sink: Arc<dyn CheckpointSink>) -> DmdConfig {
        self.checkpoint = Some(sink);
        self
    }

    /// Run Algorithm 4 end to end.
    pub fn run(&self, input: &DmdInput) -> Result<Dmd, CoreError> {
        let traced = self.tracer.is_enabled();
        // One strict env read up front: a malformed AUTOMODEL_FAULTS spec
        // aborts the run here instead of silently drilling nothing.
        let policy = TrialPolicy::from_env()?;
        // ---- Step 1: knowledge acquisition (Algorithm 1).
        if traced {
            self.tracer.emit(TraceEvent::stage_start("dmd.knowledge"));
        }
        let pairs = knowledge_acquisition(
            &input.experiences,
            &input.papers,
            &AcquisitionOptions {
                min_algorithms: self.min_algorithms,
            },
        );
        let mut records = Vec::new();
        for pair in &pairs {
            let Some(dataset) = input.datasets.get(&pair.instance) else {
                return Err(CoreError::MissingDataset(pair.instance.clone()));
            };
            let Some(algorithm_index) = self.registry.index_of(&pair.best_algorithm) else {
                // Knowledge about unimplemented algorithms is simply unusable
                // (the paper's UDR would ask the user to implement them).
                continue;
            };
            let features = meta_features(dataset);
            let target = onehot_prime(&self.registry, dataset, algorithm_index);
            records.push(KnowledgeRecord {
                instance: pair.instance.clone(),
                algorithm: pair.best_algorithm.clone(),
                algorithm_index,
                features,
                target,
            });
        }
        if records.len() < 2 {
            return Err(CoreError::NoKnowledge);
        }
        // CRelations invariants: one record per instance, and every OneHot'
        // target spans the registry with entries in {−1, 0, +1} and exactly
        // one +1 (the optimal algorithm).
        debug_invariant!(
            records
                .iter()
                .zip(records.iter().skip(1))
                .all(|(a, b)| a.instance != b.instance),
            "duplicate instance in CRelations"
        );
        debug_invariant!(
            records.iter().all(|r| {
                r.target.len() == self.registry.len()
                    && r.target.iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0)
                    && r.target.iter().filter(|&&v| v == 1.0).count() == 1
            }),
            "malformed OneHot' target in CRelations"
        );
        if traced {
            self.tracer.emit(TraceEvent::stage_end(
                "dmd.knowledge",
                format!("{} CRelations records", records.len()),
            ));
        }

        // ---- Step 2: instance feature selection (Algorithm 2).
        if traced {
            self.tracer
                .emit(TraceEvent::stage_start("dmd.feature-selection"));
        }
        let mut meta_trials = Vec::new();
        let key_features = match self.feature_mask_override {
            Some(mask) if mask.iter().any(|&b| b) => mask,
            Some(_) => [true; FEATURE_COUNT],
            None => {
                let (mask, trials) = self.select_features(&records, &policy);
                meta_trials.extend(trials);
                mask
            }
        };
        if traced {
            let kept = key_features.iter().filter(|&&b| b).count();
            self.tracer.emit(TraceEvent::stage_end(
                "dmd.feature-selection",
                format!("{kept}/{FEATURE_COUNT} key features"),
            ));
        }

        // ---- Step 3: architecture search (Algorithm 3).
        if traced {
            self.tracer
                .emit(TraceEvent::stage_start("dmd.architecture-search"));
        }
        let (xs, standardizer) = selected_matrix(&records, &key_features);
        let targets: Vec<Vec<f64>> = records.iter().map(|r| r.target.clone()).collect();
        let arch = match &self.architecture_override {
            Some(point) => point.clone(),
            None => {
                let (arch, trials) = self.search_architecture(&xs, &targets, &policy);
                meta_trials.extend(trials);
                arch
            }
        };
        if traced {
            self.tracer.emit(TraceEvent::stage_end(
                "dmd.architecture-search",
                format!("{arch}"),
            ));
        }

        // ---- Step 4: train the final SNA on all pairs (Algorithm 4, line 5).
        if traced {
            self.tracer.emit(TraceEvent::stage_start("dmd.train-sna"));
        }
        // The paper's GA keeps searching until the CV MSE beats `Precision`;
        // scaled-down searches may stop earlier, so guard the *final* model:
        // if the searched architecture fails to fit CRelations, retrain with
        // a strong interpolating configuration (L-BFGS, tanh) and keep the
        // better of the two.
        let mut sna = MlpRegressor::new(mlp_config_from(&arch, self.seed, 500));
        sna.fit(&xs, &targets);
        let searched_mse = sna.mse(&xs, &targets);
        if searched_mse > self.precision * 20.0 {
            let strong = automodel_nn::MlpConfig {
                hidden_layers: 2,
                hidden_size: 48,
                activation: automodel_nn::Activation::Tanh,
                solver: automodel_nn::Solver::Lbfgs,
                max_iter: 400,
                validation_fraction: 0.0,
                alpha: 1e-5,
                seed: self.seed,
                ..automodel_nn::MlpConfig::default()
            };
            let mut fallback = MlpRegressor::new(strong);
            fallback.fit(&xs, &targets);
            if fallback.mse(&xs, &targets) < searched_mse {
                sna = fallback;
            }
        }
        if traced {
            self.tracer.emit(TraceEvent::stage_end(
                "dmd.train-sna",
                format!("fit mse {:.6}", sna.mse(&xs, &targets)),
            ));
        }

        Ok(Dmd {
            registry: self.registry.clone(),
            key_features,
            sna,
            standardizer,
            records,
            architecture: arch,
            meta_trials,
        })
    }

    /// Algorithm 2: GA over boolean feature masks.
    fn select_features(
        &self,
        records: &[KnowledgeRecord],
        policy: &TrialPolicy,
    ) -> ([bool; FEATURE_COUNT], Vec<MetaTrial>) {
        let space = {
            let mut b = SearchSpace::builder();
            for name in automodel_data::FEATURE_NAMES {
                b = b.add(name, Domain::Bool);
            }
            // lint:allow(no-panic-lib): space over FEATURE_NAMES is statically valid
            b.build().expect("static feature space")
        };
        let labels: Vec<usize> = records.iter().map(|r| r.algorithm_index).collect();
        let full: Vec<[f64; FEATURE_COUNT]> = records.iter().map(|r| r.features).collect();
        let n_classes = self.registry.len().max(2);
        let folds = meta_folds(labels.len(), self.meta_cv_folds, self.seed);
        let mut cache: BTreeMap<Vec<bool>, f64> = BTreeMap::new();

        let mut objective = FnObjective(|config: &automodel_hpo::Config| {
            let mask: Vec<bool> = automodel_data::FEATURE_NAMES
                .iter()
                .map(|name| config.bool_or(name, false))
                .collect();
            if !mask.iter().any(|&b| b) {
                return 0.0; // the empty mask cannot discriminate anything
            }
            if let Some(&score) = cache.get(&mask) {
                return score;
            }
            let rows: Vec<Vec<f64>> = full.iter().map(|f| select_features(f, &mask)).collect();
            let std = VecStandardizer::fit(&rows);
            let rows: Vec<Vec<f64>> = rows.iter().map(|r| std.transform(r)).collect();
            let score = meta_cv_accuracy(
                &rows,
                &labels,
                n_classes,
                &folds,
                self.seed,
                self.mlp_iter_cap,
            );
            cache.insert(mask, score);
            score
        });

        let budget = Budget::evals(self.fs_population * (self.fs_generations + 1));
        let mut ga = GeneticAlgorithm::with_config(
            self.seed ^ 0xF5,
            GaConfig {
                population: self.fs_population,
                generations: self.fs_generations,
                ..GaConfig::default()
            },
        )
        .with_policy(policy.clone())
        .with_cache(Arc::clone(&self.cache))
        .with_tracer(Arc::clone(&self.tracer));
        if let Some(sink) = &self.checkpoint {
            ga = ga.with_checkpoint(Arc::clone(sink));
        }
        let mut mask = [false; FEATURE_COUNT];
        let mut trials = Vec::new();
        match ga.optimize(&space, &mut objective, &budget) {
            Some(outcome) => {
                for (i, name) in automodel_data::FEATURE_NAMES.iter().enumerate() {
                    mask[i] = outcome.best_config.bool_or(name, false);
                }
                trials = MetaTrial::from_outcome("feature-selection", &outcome);
            }
            // Every trial failed (possible only under fault injection):
            // degrade to the full feature set rather than abort DMD.
            None => mask = [true; FEATURE_COUNT],
        }
        if !mask.iter().any(|&b| b) {
            mask = [true; FEATURE_COUNT]; // degenerate search: keep everything
        }
        debug_invariant!(
            mask.iter().any(|&b| b),
            "feature selection produced an empty key-feature mask"
        );
        (mask, trials)
    }

    /// Algorithm 3: GA over the Table II space, stopping at `precision`.
    fn search_architecture(
        &self,
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        policy: &TrialPolicy,
    ) -> (automodel_hpo::Config, Vec<MetaTrial>) {
        let space = mlp_space();
        let folds = meta_folds(xs.len(), self.meta_cv_folds, self.seed ^ 0xA2);
        let mut objective = ArchObjective {
            xs,
            targets,
            folds: &folds,
            seed: self.seed,
            iter_cap: self.mlp_iter_cap,
        };
        let budget = Budget::evals(self.arch_population * (self.arch_generations + 1))
            .with_target(-self.precision);
        let mut ga = GeneticAlgorithm::with_config(
            self.seed ^ 0xAC,
            GaConfig {
                population: self.arch_population,
                generations: self.arch_generations,
                ..GaConfig::default()
            },
        )
        .with_policy(policy.clone())
        .with_cache(Arc::clone(&self.cache))
        .with_tracer(Arc::clone(&self.tracer));
        if let Some(sink) = &self.checkpoint {
            ga = ga.with_checkpoint(Arc::clone(sink));
        }
        match ga.optimize(&space, &mut objective, &budget) {
            Some(outcome) => {
                let trials = MetaTrial::from_outcome("architecture", &outcome);
                (outcome.best_config, trials)
            }
            None => (default_mlp_point(), Vec::new()),
        }
    }
}

/// One trial of a DMD meta search, reduced to its byte-diffable essence:
/// which stage proposed it, its in-stage index, the config's display form,
/// and the exact recorded score bits. The sequence of these is the "trial
/// history" the warm-start identity contract talks about: a warm-started
/// rebuild must reproduce it byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaTrial {
    /// `"feature-selection"` (Algorithm 2) or `"architecture"`
    /// (Algorithm 3).
    pub stage: &'static str,
    /// Trial index within its stage's GA run.
    pub index: usize,
    /// The trial config's canonical display form.
    pub config: String,
    /// The recorded score (penalties included), compared as exact bits.
    pub score: f64,
}

impl MetaTrial {
    fn from_outcome(stage: &'static str, outcome: &OptOutcome) -> Vec<MetaTrial> {
        outcome
            .trials
            .iter()
            .map(|t| MetaTrial {
                stage,
                index: t.index,
                config: t.config.to_string(),
                score: t.score,
            })
            .collect()
    }
}

/// Algorithm 3's fitness (`−MSE` of the OneHot' regressor under CV),
/// reporting divergent trainings as failed trials. Previously a fold plan
/// with no usable folds scored `−∞`, which leaked a non-finite value into
/// the GA's fitness ranking; both cases are now contained failures that the
/// optimizer maps to its finite penalty.
struct ArchObjective<'a> {
    xs: &'a [Vec<f64>],
    targets: &'a [Vec<f64>],
    folds: &'a [(Vec<usize>, Vec<usize>)],
    seed: u64,
    iter_cap: usize,
}

impl Objective for ArchObjective<'_> {
    fn evaluate(&mut self, config: &automodel_hpo::Config) -> f64 {
        self.evaluate_outcome(config).score().unwrap_or(-1.0e9)
    }

    fn evaluate_outcome(&mut self, config: &automodel_hpo::Config) -> TrialOutcome {
        let mlp_config = mlp_config_from(config, self.seed, self.iter_cap);
        let mut total = 0.0;
        let mut n = 0usize;
        for (train, test) in self.folds {
            if train.is_empty() || test.is_empty() {
                continue;
            }
            let train_x: Vec<Vec<f64>> = train.iter().map(|&i| self.xs[i].clone()).collect();
            let train_y: Vec<Vec<f64>> = train.iter().map(|&i| self.targets[i].clone()).collect();
            let test_x: Vec<Vec<f64>> = test.iter().map(|&i| self.xs[i].clone()).collect();
            let test_y: Vec<Vec<f64>> = test.iter().map(|&i| self.targets[i].clone()).collect();
            let mut reg = MlpRegressor::new(mlp_config.clone());
            let report = reg.fit(&train_x, &train_y);
            if report.diverged {
                return TrialOutcome::Diverged(format!(
                    "regressor diverged after {} epochs",
                    report.epochs
                ));
            }
            total += reg.mse(&test_x, &test_y) * test.len() as f64;
            n += test.len();
        }
        if n == 0 {
            return TrialOutcome::NonFinite;
        }
        TrialOutcome::from_score(-(total / n as f64)) // maximize −MSE
    }
}

/// The trained decision-making model plus everything UDR needs.
#[derive(Debug, Clone)]
pub struct Dmd {
    pub registry: Registry,
    /// The Algorithm 2 output: which of the 23 Table III features feed `SNA`.
    pub key_features: [bool; FEATURE_COUNT],
    /// The Algorithm 3 output, trained on all CRelations pairs.
    pub sna: MlpRegressor,
    standardizer: VecStandardizer,
    /// The enriched CRelations (diagnostics and experiment input).
    pub records: Vec<KnowledgeRecord>,
    /// The winning Table II configuration.
    pub architecture: automodel_hpo::Config,
    /// Byte-diffable history of every meta-search trial that built this
    /// model (empty when the model was reassembled from persisted parts).
    pub meta_trials: Vec<MetaTrial>,
}

impl Dmd {
    /// Reassemble a model from persisted parts (see [`crate::artifact`]).
    pub(crate) fn from_parts(
        registry: Registry,
        key_features: [bool; FEATURE_COUNT],
        sna: MlpRegressor,
        standardizer: VecStandardizer,
        records: Vec<KnowledgeRecord>,
        architecture: automodel_hpo::Config,
    ) -> Dmd {
        Dmd {
            registry,
            key_features,
            sna,
            standardizer,
            records,
            architecture,
            meta_trials: Vec::new(),
        }
    }

    /// The meta-search trial history in its canonical line form, one
    /// trial per line: `stage|index|config#score_bits`. Two runs built
    /// the same way (same seeds, any thread count, warm or cold cache)
    /// must render identical bytes here — this is what the warm-start
    /// identity gate diffs.
    pub fn trial_history(&self) -> String {
        let mut out = String::new();
        for t in &self.meta_trials {
            out.push_str(&format!(
                "{}|{}|{}#{:016x}\n",
                t.stage,
                t.index,
                t.config,
                t.score.to_bits()
            ));
        }
        out
    }

    /// Clone of the internal feature standardizer (for persistence).
    pub(crate) fn standardizer_clone(&self) -> VecStandardizer {
        self.standardizer.clone()
    }

    /// `SNA(KFs(I))`: per-algorithm scores for a dataset, in registry order.
    pub fn scores(&self, data: &Dataset) -> Vec<f64> {
        let features = meta_features(data);
        let selected = select_features(&features, &self.key_features);
        let x = self.standardizer.transform(&selected);
        let scores = self.sna.predict(&x);
        debug_invariant!(
            automodel_invariant::all_finite(&scores),
            "SNA produced a non-finite score for {}",
            data.name()
        );
        scores
    }

    /// Algorithm 5, line 1: the selected algorithm — highest score among
    /// the algorithms that can actually process the dataset.
    pub fn select_algorithm(&self, data: &Dataset) -> Result<String, CoreError> {
        let scores = self.scores(data);
        let mut best: Option<(f64, &str)> = None;
        for (spec, &score) in self.registry.iter().zip(&scores) {
            if spec.check_applicable(data).is_err() {
                continue;
            }
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, spec.name()));
            }
        }
        best.map(|(_, name)| name.to_string())
            .ok_or_else(|| CoreError::NothingApplicable(data.name().to_string()))
    }

    /// Number of selected key features.
    pub fn n_key_features(&self) -> usize {
        self.key_features.iter().filter(|&&b| b).count()
    }

    /// Names of the selected key features (the paper reports its run's as
    /// `{f1, f3, f5, f7, f9, f10, f13, f14, f15, f16, f19}`).
    pub fn key_feature_names(&self) -> Vec<&'static str> {
        automodel_data::FEATURE_NAMES
            .iter()
            .zip(&self.key_features)
            .filter_map(|(&name, &keep)| keep.then_some(name))
            .collect()
    }

    /// Ranked `(algorithm, score)` list for a dataset — `SNA`'s full view,
    /// applicable algorithms only, best first.
    pub fn ranked_algorithms(&self, data: &Dataset) -> Vec<(String, f64)> {
        let scores = self.scores(data);
        let mut out: Vec<(String, f64)> = self
            .registry
            .iter()
            .zip(scores)
            .filter(|(spec, _)| spec.check_applicable(data).is_ok())
            .map(|(spec, s)| (spec.name().to_string(), s))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// OneHot'(OA): +1 at the optimal algorithm, −1 at algorithms that cannot
/// process the instance, 0 elsewhere (Algorithm 3's footnote).
pub fn onehot_prime(registry: &Registry, data: &Dataset, best_index: usize) -> Vec<f64> {
    registry
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            if i == best_index {
                1.0
            } else if spec.check_applicable(data).is_err() {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Standardized selected-feature matrix over the records.
fn selected_matrix(
    records: &[KnowledgeRecord],
    mask: &[bool; FEATURE_COUNT],
) -> (Vec<Vec<f64>>, VecStandardizer) {
    let raw: Vec<Vec<f64>> = records
        .iter()
        .map(|r| select_features(&r.features, mask))
        .collect();
    let std = VecStandardizer::fit(&raw);
    let xs = raw.iter().map(|r| std.transform(r)).collect();
    (xs, std)
}

/// Simple k-fold plan over `n` meta-rows (the meta-dataset is small and its
/// label distribution ragged, so plain shuffled folds are used).
fn meta_folds(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    let k = k.clamp(2, n.max(2));
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in order.iter().enumerate() {
        folds[i % k].push(row);
    }
    (0..k)
        .map(|i| {
            let test = folds[i].clone();
            let train = (0..k)
                .filter(|&j| j != i)
                .flat_map(|j| folds[j].iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

/// CV accuracy of the default-architecture MLP classifier on a meta-dataset
/// (Algorithm 2's fitness).
fn meta_cv_accuracy(
    xs: &[Vec<f64>],
    labels: &[usize],
    n_classes: usize,
    folds: &[(Vec<usize>, Vec<usize>)],
    seed: u64,
    iter_cap: usize,
) -> f64 {
    let config = mlp_config_from(&default_mlp_point(), seed, iter_cap);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (train, test) in folds {
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let train_x: Vec<Vec<f64>> = train.iter().map(|&i| xs[i].clone()).collect();
        let train_y: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let mut clf = MlpClassifier::new(config.clone());
        clf.fit(&train_x, &train_y, n_classes);
        for &i in test {
            if clf.predict(&xs[i]) == labels[i] {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_knowledge::CorpusSpec;

    fn fast_dmd() -> (Dmd, DmdInput) {
        let corpus = CorpusSpec::small().build();
        let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
        let dmd = DmdConfig::fast().run(&input).unwrap();
        (dmd, input)
    }

    #[test]
    fn dmd_pipeline_produces_a_usable_model() {
        let (dmd, input) = fast_dmd();
        assert!(!dmd.records.is_empty());
        assert!(dmd.n_key_features() >= 1);
        // SNA scores every registry algorithm for a fresh dataset.
        let any = input.datasets.values().next().unwrap();
        let scores = dmd.scores(any);
        assert_eq!(scores.len(), dmd.registry.len());
        assert!(scores.iter().all(|s| s.is_finite()));
        // And selects an applicable algorithm.
        let selected = dmd.select_algorithm(any).unwrap();
        assert!(dmd.registry.get(&selected).is_some());
    }

    #[test]
    fn onehot_prime_marks_inapplicable_with_minus_one() {
        let registry = Registry::full();
        // Numeric dataset: Id3 (nominal-only) must get −1.
        let d = SynthSpec::new("n", 50, 3, 0, 2, SynthFamily::Hyperplane, 1).generate();
        let best = registry.index_of("J48").unwrap();
        let target = onehot_prime(&registry, &d, best);
        assert_eq!(target[best], 1.0);
        let id3 = registry.index_of("Id3").unwrap();
        assert_eq!(target[id3], -1.0);
        // Everything else is 0 or −1, exactly one +1.
        assert_eq!(target.iter().filter(|&&v| v == 1.0).count(), 1);
    }

    #[test]
    fn dmd_errors_on_missing_datasets() {
        let corpus = CorpusSpec::small().build();
        let input = DmdInput {
            experiences: corpus.experiences.clone(),
            papers: corpus.papers.clone(),
            datasets: BTreeMap::new(),
        };
        let err = DmdConfig::fast().run(&input).unwrap_err();
        assert!(matches!(err, CoreError::MissingDataset(_)));
    }

    #[test]
    fn dmd_errors_when_knowledge_is_empty() {
        let input = DmdInput {
            experiences: Vec::new(),
            papers: Vec::new(),
            datasets: BTreeMap::new(),
        };
        let err = DmdConfig::fast().run(&input).unwrap_err();
        assert_eq!(err, CoreError::NoKnowledge);
    }

    #[test]
    fn meta_folds_partition_rows() {
        let folds = meta_folds(17, 4, 3);
        assert_eq!(folds.len(), 4);
        let mut seen = [false; 17];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 17);
            for &t in test {
                assert!(!seen[t]);
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn key_feature_names_match_mask() {
        let (dmd, _) = fast_dmd();
        let names = dmd.key_feature_names();
        assert_eq!(names.len(), dmd.n_key_features());
        for name in &names {
            assert!(automodel_data::FEATURE_NAMES.contains(name));
        }
    }

    #[test]
    fn ranked_algorithms_are_sorted_and_applicable() {
        let (dmd, input) = fast_dmd();
        let data = input.datasets.values().next().unwrap();
        let ranked = dmd.ranked_algorithms(data);
        assert!(!ranked.is_empty());
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        // The UDR selection is exactly the head of the ranking.
        assert_eq!(dmd.select_algorithm(data).unwrap(), ranked[0].0);
    }

    #[test]
    fn dmd_is_deterministic_in_seed() {
        let corpus = CorpusSpec::small().build();
        let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
        let a = DmdConfig::fast().run(&input).unwrap();
        let b = DmdConfig::fast().run(&input).unwrap();
        assert_eq!(a.key_features, b.key_features);
        let d = input.datasets.values().next().unwrap();
        assert_eq!(
            a.select_algorithm(d).unwrap(),
            b.select_algorithm(d).unwrap()
        );
    }
}
