//! # automodel-core
//!
//! The paper's contribution: the Auto-Model CASH solver.
//!
//! * [`table2`] — the 10-hyperparameter MLP architecture space of Table II
//!   and its mapping onto [`automodel_nn::MlpConfig`].
//! * [`dmd`] — the Decision-Making Model Designer (§III-C, Algorithms 1–4):
//!   knowledge acquisition → instance-feature selection (GA over boolean
//!   masks, Algorithm 2) → MLP architecture search (GA over Table II with a
//!   `Precision` stopping target, Algorithm 3) → the trained decision model
//!   `SNA`.
//! * [`udr`] — the User Demand Responser (§III-D, Algorithm 5): select the
//!   algorithm with `SNA`, probe the cost of one evaluation on a small
//!   sample, tune with GA (cheap evaluations) or BO (expensive ones).
//! * [`autoweka`] — the Auto-Weka baseline: the CASH problem as one
//!   hierarchical space (`algorithm` gating every subspace) searched by
//!   SMAC-lite.
//! * [`artifact`] — persistence of a trained decision model
//!   (train once offline, ship the JSON artifact, re-attach the registry).
//! * [`poratio`] — the §IV evaluation metrics: `P(A, D)` (GA-tuned 10-fold
//!   CV accuracy), `Pmax`, `Pavg` and Definition 1's PORatio, with a shared
//!   evaluation cache and an executor-parallel sweep over the registry.

pub mod artifact;
pub mod autoweka;
pub mod dmd;
pub mod error;
pub mod fidelity;
pub mod poratio;
pub mod table2;
pub mod udr;

pub use artifact::DmdArtifact;
pub use autoweka::AutoWekaConfig;
pub use dmd::{Dmd, DmdConfig, DmdInput};
pub use error::CoreError;
pub use fidelity::{FidelityCashObjective, FidelityCvObjective, InnerOptimizer};
pub use poratio::{po_ratio, EvalContext};
pub use table2::{mlp_config_from, mlp_space};
pub use udr::{Solution, UdrConfig};
