//! Error type for the Auto-Model pipeline.

use std::fmt;

/// Errors raised by DMD, UDR or the baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The knowledge corpus produced no usable CRelations.
    NoKnowledge,
    /// A knowledge pair references an instance with no dataset attached.
    MissingDataset(String),
    /// A knowledge pair references an algorithm missing from the registry.
    UnknownAlgorithm(String),
    /// No registered algorithm can process the given dataset.
    NothingApplicable(String),
    /// The optimizer returned no trials (zero budget).
    EmptySearch,
    /// Wrapped classification-substrate error.
    Ml(automodel_ml::MlError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoKnowledge => write!(f, "knowledge acquisition produced no CRelations"),
            CoreError::MissingDataset(i) => write!(f, "no dataset registered for instance '{i}'"),
            CoreError::UnknownAlgorithm(a) => {
                write!(f, "knowledge references unregistered algorithm '{a}'")
            }
            CoreError::NothingApplicable(d) => {
                write!(f, "no registered algorithm can process dataset '{d}'")
            }
            CoreError::EmptySearch => write!(f, "optimizer returned no trials (budget too small?)"),
            CoreError::Ml(e) => write!(f, "classification substrate: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<automodel_ml::MlError> for CoreError {
    fn from(e: automodel_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<automodel_data::DataError> for CoreError {
    fn from(e: automodel_data::DataError) -> Self {
        CoreError::Ml(automodel_ml::MlError::Data(e))
    }
}
