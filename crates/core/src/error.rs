//! Error type for the Auto-Model pipeline.

use automodel_hpo::{TrialFailure, TrialOutcome};
use automodel_trace::EnvError;
use std::fmt;

/// Errors raised by DMD, UDR or the baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The knowledge corpus produced no usable CRelations.
    NoKnowledge,
    /// A knowledge pair references an instance with no dataset attached.
    MissingDataset(String),
    /// A knowledge pair references an algorithm missing from the registry.
    UnknownAlgorithm(String),
    /// No registered algorithm can process the given dataset.
    NothingApplicable(String),
    /// The optimizer returned no trials (zero budget).
    EmptySearch,
    /// Every trial of a search failed; carries the last trial's failure.
    Trial(TrialFailure),
    /// Wrapped classification-substrate error.
    Ml(automodel_ml::MlError),
    /// A malformed `AUTOMODEL_*` environment variable.
    Env(EnvError),
}

impl CoreError {
    /// Lift a failed [`TrialOutcome`] into a [`CoreError::Trial`];
    /// `None` for [`TrialOutcome::Ok`].
    pub fn from_outcome(outcome: &TrialOutcome) -> Option<CoreError> {
        outcome.failure().map(CoreError::Trial)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoKnowledge => write!(f, "knowledge acquisition produced no CRelations"),
            CoreError::MissingDataset(i) => write!(f, "no dataset registered for instance '{i}'"),
            CoreError::UnknownAlgorithm(a) => {
                write!(f, "knowledge references unregistered algorithm '{a}'")
            }
            CoreError::NothingApplicable(d) => {
                write!(f, "no registered algorithm can process dataset '{d}'")
            }
            CoreError::EmptySearch => write!(f, "optimizer returned no trials (budget too small?)"),
            CoreError::Trial(e) => write!(f, "every trial failed; last failure: {e}"),
            CoreError::Ml(e) => write!(f, "classification substrate: {e}"),
            CoreError::Env(e) => write!(f, "environment: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            CoreError::Trial(e) => Some(e),
            CoreError::Env(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrialFailure> for CoreError {
    fn from(e: TrialFailure) -> Self {
        CoreError::Trial(e)
    }
}

impl From<automodel_ml::MlError> for CoreError {
    fn from(e: automodel_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<automodel_data::DataError> for CoreError {
    fn from(e: automodel_data::DataError) -> Self {
        CoreError::Ml(automodel_ml::MlError::Data(e))
    }
}

impl From<EnvError> for CoreError {
    fn from(e: EnvError) -> Self {
        CoreError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_hpo::FailureKind;
    use std::error::Error;

    fn trial_failure() -> TrialFailure {
        TrialFailure {
            kind: FailureKind::Panicked,
            message: "boom".into(),
        }
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(CoreError, &str)> = vec![
            (CoreError::NoKnowledge, "no CRelations"),
            (CoreError::MissingDataset("iris".into()), "'iris'"),
            (CoreError::UnknownAlgorithm("J99".into()), "'J99'"),
            (CoreError::NothingApplicable("blobs".into()), "'blobs'"),
            (CoreError::EmptySearch, "no trials"),
            (CoreError::Trial(trial_failure()), "trial panicked: boom"),
            (
                CoreError::Ml(automodel_ml::MlError::EmptyTrainingSet),
                "empty training set",
            ),
            (
                CoreError::Env(EnvError::new("AUTOMODEL_CACHE", "65k", "a capacity")),
                "AUTOMODEL_CACHE",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }

    #[test]
    fn source_is_exposed_for_wrapped_errors_only() {
        assert!(CoreError::NoKnowledge.source().is_none());
        assert!(CoreError::MissingDataset("x".into()).source().is_none());
        assert!(CoreError::UnknownAlgorithm("x".into()).source().is_none());
        assert!(CoreError::NothingApplicable("x".into()).source().is_none());
        assert!(CoreError::EmptySearch.source().is_none());
        let trial = CoreError::Trial(trial_failure());
        assert_eq!(trial.source().unwrap().to_string(), "trial panicked: boom");
        let ml = CoreError::Ml(automodel_ml::MlError::NotFitted);
        assert_eq!(
            ml.source().unwrap().to_string(),
            "classifier used before fit"
        );
        let env = CoreError::Env(EnvError::new("AUTOMODEL_THREADS", "two", "a count"));
        assert!(env.source().unwrap().to_string().contains("two"));
    }

    #[test]
    fn failed_outcomes_convert_and_ok_scores_do_not() {
        assert!(CoreError::from_outcome(&TrialOutcome::Ok(0.5)).is_none());
        let cases = [
            (TrialOutcome::Panicked("p".into()), FailureKind::Panicked),
            (TrialOutcome::Diverged("d".into()), FailureKind::Diverged),
            (TrialOutcome::NonFinite, FailureKind::NonFinite),
            (TrialOutcome::TimedOut, FailureKind::TimedOut),
        ];
        for (outcome, kind) in cases {
            match CoreError::from_outcome(&outcome) {
                Some(CoreError::Trial(f)) => assert_eq!(f.kind, kind),
                other => panic!("expected Trial, got {other:?}"),
            }
        }
    }

    #[test]
    fn trial_failure_converts_via_from() {
        let err: CoreError = trial_failure().into();
        assert!(matches!(err, CoreError::Trial(_)));
    }
}
