//! The User Demand Responser (§III-D, Algorithm 5).
//!
//! Given a trained [`Dmd`] and a user's dataset: select the algorithm with
//! `SNA`, then tune *only that algorithm's* hyperparameters. The HPO
//! technique follows the paper's rule — time one configuration evaluation
//! on a small sample; cheap evaluations get the Genetic Algorithm,
//! expensive ones Bayesian Optimization (the paper's threshold is 10
//! minutes; scaled deployments pass their own).

use crate::dmd::Dmd;
use crate::error::CoreError;
use crate::fidelity::{FidelityCvObjective, InnerOptimizer};
use automodel_data::Dataset;
use automodel_hpo::{
    BatchGate, BayesianOptimization, Budget, CheckpointSink, Clock, Config, GaConfig,
    GeneticAlgorithm, Hyperband, MonotonicClock, Objective, Optimizer, OptimizerBuilder,
    SuccessiveHalving, TrialCache, TrialFailure, TrialOutcome, TrialPolicy,
};
use automodel_ml::{cross_val_accuracy, AlgorithmSpec, Registry};
use automodel_trace::{TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// The CASH answer: algorithm + hyperparameter setting (+ provenance).
#[derive(Debug, Clone)]
pub struct Solution {
    pub algorithm: String,
    pub config: Config,
    /// k-fold CV accuracy of the tuned configuration.
    pub score: f64,
    /// Which HPO technique produced it.
    pub technique: String,
    /// Configurations evaluated.
    pub trials: usize,
    /// Configurations quarantined after exhausting their trial retries.
    pub quarantined: usize,
    /// Trials served from the evaluation cache (see `AUTOMODEL_CACHE`).
    pub cache_hits: u64,
    /// Cache lookups that fell through to a live evaluation.
    pub cache_misses: u64,
}

/// The tuning objective `f(λ, SA, I)` with trial-failure reporting: an
/// evaluation error becomes a failed [`TrialOutcome`] (quarantined by the
/// optimizer) instead of silently scoring 0, and the last failure is kept so
/// an all-failed search can explain itself.
struct CvObjective<'a> {
    spec: &'a Arc<dyn AlgorithmSpec>,
    data: &'a Dataset,
    folds: usize,
    seed: u64,
    last_failure: Option<TrialFailure>,
}

impl Objective for CvObjective<'_> {
    fn evaluate(&mut self, config: &Config) -> f64 {
        self.evaluate_outcome(config).score().unwrap_or(0.0)
    }

    fn evaluate_outcome(&mut self, config: &Config) -> TrialOutcome {
        let spec = self.spec;
        let seed = self.seed;
        match cross_val_accuracy(|| spec.build(config, seed), self.data, self.folds, seed) {
            Ok(score) => TrialOutcome::from_score(score),
            Err(e) => {
                let outcome = TrialOutcome::Diverged(e.to_string());
                self.last_failure = outcome.failure();
                outcome
            }
        }
    }
}

/// UDR knobs.
#[derive(Clone)]
pub struct UdrConfig {
    /// Budget for the hyperparameter search (Algorithm 5, line 4; the user
    /// "can stop HPOAlg at any time").
    pub tuning_budget: Budget,
    /// Rows sampled for the evaluation-cost probe.
    pub probe_rows: usize,
    /// GA below this single-evaluation duration, BO above
    /// (paper: 10 minutes).
    pub eval_time_threshold: Duration,
    /// Folds of the tuning objective `f(λ, SA, I)`.
    pub cv_folds: usize,
    pub seed: u64,
    /// Time source for the evaluation-cost probe. Production uses the real
    /// [`MonotonicClock`]; tests inject a
    /// [`ManualClock`](automodel_parallel::ManualClock) so the GA-vs-BO
    /// routing decision is deterministic instead of wall-clock-dependent.
    pub probe_clock: Arc<dyn Clock>,
    /// Structured tracer: stage spans around the probe and the tuning run,
    /// plus the chosen optimizer's full event stream (default: disabled).
    pub tracer: Arc<Tracer>,
    /// Trial cache for the tuning search. A cache pre-seeded via
    /// `TrialCache::restore` warm-replays a prior (e.g. interrupted)
    /// tuning run. Default: `AUTOMODEL_CACHE` semantics.
    pub cache: Arc<TrialCache>,
    /// Crash-recovery checkpoint sink forwarded to the tuning optimizer
    /// (default: none).
    pub checkpoint: Option<Arc<dyn CheckpointSink>>,
    /// Which optimizer runs the tuning search. [`InnerOptimizer::Auto`]
    /// (the default) is the paper's probe-routed GA/BO; `Sha` and
    /// `Hyperband` skip the probe and run the multi-fidelity schedulers
    /// over row/fold/iteration-reduced evaluations instead.
    pub optimizer: InnerOptimizer,
    /// Trial fault-handling policy for the tuning optimizer. `None` (the
    /// default) reads `AUTOMODEL_FAULTS` from the environment at tune
    /// time; a server hosting many sessions in one process sets an
    /// explicit per-session policy here instead, since the environment is
    /// process-global.
    pub policy: Option<TrialPolicy>,
    /// Pre-batch admission gate forwarded to the tuning optimizer
    /// (default: none). Timing only — see [`BatchGate`].
    pub gate: Option<Arc<dyn BatchGate>>,
}

impl std::fmt::Debug for UdrConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdrConfig")
            .field("tuning_budget", &self.tuning_budget)
            .field("probe_rows", &self.probe_rows)
            .field("eval_time_threshold", &self.eval_time_threshold)
            .field("cv_folds", &self.cv_folds)
            .field("seed", &self.seed)
            .finish_non_exhaustive() // probe_clock: Arc<dyn Clock> is opaque
    }
}

impl UdrConfig {
    /// Paper-faithful thresholds (10-minute eval threshold, 10-fold CV) with
    /// an explicit tuning budget.
    pub fn paper(tuning_budget: Budget) -> UdrConfig {
        UdrConfig {
            tuning_budget,
            probe_rows: 200,
            eval_time_threshold: Duration::from_secs(600),
            cv_folds: 10,
            seed: 0,
            probe_clock: Arc::new(MonotonicClock::new()),
            tracer: Arc::new(Tracer::disabled()),
            cache: Arc::new(TrialCache::from_env_or_disabled()),
            checkpoint: None,
            optimizer: InnerOptimizer::Auto,
            policy: None,
            gate: None,
        }
    }

    /// Scaled-down defaults for tests/examples: 40 evaluations, 3-fold CV,
    /// 250 ms probe threshold.
    pub fn fast() -> UdrConfig {
        UdrConfig {
            tuning_budget: Budget::evals(40),
            probe_rows: 120,
            eval_time_threshold: Duration::from_millis(250),
            cv_folds: 3,
            seed: 0,
            probe_clock: Arc::new(MonotonicClock::new()),
            tracer: Arc::new(Tracer::disabled()),
            cache: Arc::new(TrialCache::from_env_or_disabled()),
            checkpoint: None,
            optimizer: InnerOptimizer::Auto,
            policy: None,
            gate: None,
        }
    }

    /// Attach a tracer (default: disabled).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> UdrConfig {
        self.tracer = tracer;
        self
    }

    /// Replace the tuning trial cache (restore a checkpoint snapshot
    /// into it to warm-replay an interrupted tuning run).
    pub fn with_cache(mut self, cache: Arc<TrialCache>) -> UdrConfig {
        self.cache = cache;
        self
    }

    /// Attach a crash-recovery checkpoint sink: the tuning optimizer
    /// (GA or BO, whichever the probe routes to) then persists its
    /// committed state at every batch boundary.
    pub fn with_checkpoint(mut self, sink: Arc<dyn CheckpointSink>) -> UdrConfig {
        self.checkpoint = Some(sink);
        self
    }

    /// Select the tuning optimizer explicitly (`sha` / `hyperband`
    /// replace the probe-routed GA/BO with a multi-fidelity scheduler).
    pub fn with_optimizer(mut self, optimizer: InnerOptimizer) -> UdrConfig {
        self.optimizer = optimizer;
        self
    }

    /// Set an explicit trial fault-handling policy instead of reading
    /// `AUTOMODEL_FAULTS` at tune time (the server's per-session path).
    pub fn with_policy(mut self, policy: TrialPolicy) -> UdrConfig {
        self.policy = Some(policy);
        self
    }

    /// Attach a pre-batch admission gate forwarded to the tuning
    /// optimizer (timing only; see [`BatchGate`]).
    pub fn with_gate(mut self, gate: Arc<dyn BatchGate>) -> UdrConfig {
        self.gate = Some(gate);
        self
    }

    /// The effective trial policy: the explicit override when set, the
    /// `AUTOMODEL_FAULTS` environment otherwise.
    fn effective_policy(&self) -> Result<TrialPolicy, CoreError> {
        match &self.policy {
            Some(policy) => Ok(policy.clone()),
            None => Ok(TrialPolicy::from_env()?),
        }
    }

    /// Algorithm 5 end to end.
    pub fn solve(&self, dmd: &Dmd, data: &Dataset) -> Result<Solution, CoreError> {
        let algorithm = dmd.select_algorithm(data)?;
        self.tune(&dmd.registry, &algorithm, data)
    }

    /// Lines 2–4: tune one named algorithm on the dataset. Public so the
    /// experiments can tune arbitrary algorithms (e.g. for `P(A, D)`).
    pub fn tune(
        &self,
        registry: &Registry,
        algorithm: &str,
        data: &Dataset,
    ) -> Result<Solution, CoreError> {
        let spec = registry.require(algorithm)?.clone();
        spec.check_applicable(data)?;
        let space = spec.param_space();
        let seed = self.seed;

        if self.optimizer != InnerOptimizer::Auto {
            return self.tune_multifidelity(&spec, algorithm, &space, data);
        }

        let traced = self.tracer.is_enabled();
        // Probe: time one default-config evaluation on a small sample. The
        // clock is injectable so tests can pin the GA-vs-BO decision.
        if traced {
            self.tracer.emit(TraceEvent::stage_start("udr.probe"));
        }
        let probe_time = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9A0B);
            let rows = data.sample_rows(self.probe_rows, &mut rng);
            let sample = data.subset(&rows)?;
            let start = self.probe_clock.now();
            let _ = cross_val_accuracy(
                || spec.build(&spec.default_config(), seed),
                &sample,
                self.cv_folds.min(3),
                seed,
            );
            self.probe_clock.now().saturating_sub(start)
        };
        let use_ga = probe_time < self.eval_time_threshold;
        if traced {
            self.tracer.emit(TraceEvent::stage_end(
                "udr.probe",
                format!(
                    "{algorithm} routed to {}",
                    if use_ga {
                        "genetic-algorithm"
                    } else {
                        "bayesian-optimization"
                    }
                ),
            ));
        }

        let folds = self.cv_folds;
        let mut objective = CvObjective {
            spec: &spec,
            data,
            folds,
            seed,
            last_failure: None,
        };

        let policy = self.effective_policy()?;
        if traced {
            self.tracer.emit(TraceEvent::stage_start("udr.tune"));
        }
        let outcome = if use_ga {
            let mut ga = GeneticAlgorithm::with_config(
                seed,
                GaConfig {
                    population: 12,
                    generations: 1000, // budget-bound, not generation-bound
                    ..GaConfig::default()
                },
            )
            .with_policy(policy)
            .with_cache(Arc::clone(&self.cache))
            .with_tracer(Arc::clone(&self.tracer));
            if let Some(sink) = &self.checkpoint {
                ga = ga.with_checkpoint(Arc::clone(sink));
            }
            if let Some(gate) = &self.gate {
                ga = ga.with_gate(Arc::clone(gate));
            }
            ga.optimize(&space, &mut objective, &self.tuning_budget)
        } else {
            let mut bo = BayesianOptimization::new(seed)
                .with_policy(policy)
                .with_cache(Arc::clone(&self.cache))
                .with_tracer(Arc::clone(&self.tracer));
            if let Some(sink) = &self.checkpoint {
                bo = bo.with_checkpoint(Arc::clone(sink));
            }
            if let Some(gate) = &self.gate {
                bo = bo.with_gate(Arc::clone(gate));
            }
            bo.optimize(&space, &mut objective, &self.tuning_budget)
        };
        if traced {
            let detail = match &outcome {
                Some(o) => format!("{algorithm} tuned over {} trials", o.trials.len()),
                None => format!("{algorithm} search returned nothing"),
            };
            self.tracer.emit(TraceEvent::stage_end("udr.tune", detail));
        }
        let Some(outcome) = outcome else {
            // Degenerate: empty space or zero budget — fall back to defaults.
            if space.is_empty() {
                let config = spec.default_config();
                let score = cross_val_accuracy(|| spec.build(&config, seed), data, folds, seed)?;
                return Ok(Solution {
                    algorithm: algorithm.to_string(),
                    config,
                    score,
                    technique: "default".into(),
                    trials: 1,
                    quarantined: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                });
            }
            // Non-empty space: either no trial ran (zero budget) or every
            // trial failed — surface the last failure in the latter case.
            return Err(match objective.last_failure.take() {
                Some(failure) => CoreError::Trial(failure),
                None => CoreError::EmptySearch,
            });
        };
        Ok(Solution {
            algorithm: algorithm.to_string(),
            config: outcome.best_config,
            score: outcome.best_score,
            technique: if use_ga {
                "genetic-algorithm".into()
            } else {
                "bayesian-optimization".into()
            },
            trials: outcome.trials.len(),
            quarantined: outcome.quarantine.len(),
            cache_hits: outcome.cache.hits,
            cache_misses: outcome.cache.misses,
        })
    }

    /// The `sha`/`hyperband` tuning path: no evaluation-cost probe — the
    /// scheduler's fidelity ladder is the cost control — and the CV
    /// objective runs on seeded nested row subsets with scaled folds and
    /// iteration caps.
    fn tune_multifidelity(
        &self,
        spec: &Arc<dyn AlgorithmSpec>,
        algorithm: &str,
        space: &automodel_hpo::SearchSpace,
        data: &Dataset,
    ) -> Result<Solution, CoreError> {
        let seed = self.seed;
        let folds = self.cv_folds;
        let mut objective = FidelityCvObjective::new(spec, data, folds, seed);
        let policy = self.effective_policy()?;
        let traced = self.tracer.is_enabled();
        if traced {
            self.tracer.emit(TraceEvent::stage_start("udr.tune"));
        }
        let outcome = match self.optimizer {
            InnerOptimizer::Sha => {
                let mut sha = SuccessiveHalving::new(seed)
                    .with_policy(policy)
                    .with_cache(Arc::clone(&self.cache))
                    .with_tracer(Arc::clone(&self.tracer));
                if let Some(sink) = &self.checkpoint {
                    sha = sha.with_checkpoint(Arc::clone(sink));
                }
                if let Some(gate) = &self.gate {
                    sha = sha.with_gate(Arc::clone(gate));
                }
                sha.optimize_fidelity(space, &mut objective, &self.tuning_budget)
            }
            InnerOptimizer::Hyperband => {
                let mut hb = Hyperband::new(seed)
                    .with_policy(policy)
                    .with_cache(Arc::clone(&self.cache))
                    .with_tracer(Arc::clone(&self.tracer));
                if let Some(sink) = &self.checkpoint {
                    hb = hb.with_checkpoint(Arc::clone(sink));
                }
                if let Some(gate) = &self.gate {
                    hb = hb.with_gate(Arc::clone(gate));
                }
                hb.optimize_fidelity(space, &mut objective, &self.tuning_budget)
            }
            // tune() already dispatched Auto to the probe-routed path.
            // lint:allow(no-panic-lib): `tune` only dispatches here when optimizer != Auto
            InnerOptimizer::Auto => unreachable!("auto never reaches tune_multifidelity"),
        };
        if traced {
            let detail = match &outcome {
                Some(o) => format!("{algorithm} tuned over {} trials", o.trials.len()),
                None => format!("{algorithm} search returned nothing"),
            };
            self.tracer.emit(TraceEvent::stage_end("udr.tune", detail));
        }
        let Some(outcome) = outcome else {
            if space.is_empty() {
                let config = spec.default_config();
                let score = cross_val_accuracy(|| spec.build(&config, seed), data, folds, seed)?;
                return Ok(Solution {
                    algorithm: algorithm.to_string(),
                    config,
                    score,
                    technique: "default".into(),
                    trials: 1,
                    quarantined: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                });
            }
            return Err(match objective.last_failure.take() {
                Some(failure) => CoreError::Trial(failure),
                None => CoreError::EmptySearch,
            });
        };
        Ok(Solution {
            algorithm: algorithm.to_string(),
            config: outcome.best_config,
            score: outcome.best_score,
            technique: self.optimizer.to_string(),
            trials: outcome.trials.len(),
            quarantined: outcome.quarantine.len(),
            cache_hits: outcome.cache.hits,
            cache_misses: outcome.cache.misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmd::{DmdConfig, DmdInput};
    use automodel_data::{SynthFamily, SynthSpec};
    use automodel_knowledge::CorpusSpec;

    fn dmd() -> Dmd {
        let corpus = CorpusSpec::small().build();
        let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
        DmdConfig::fast().run(&input).unwrap()
    }

    #[test]
    fn udr_returns_a_tuned_solution() {
        let dmd = dmd();
        let data = SynthSpec::new("user", 120, 4, 1, 2, SynthFamily::Hyperplane, 77).generate();
        let solution = UdrConfig::fast().solve(&dmd, &data).unwrap();
        assert!(dmd.registry.get(&solution.algorithm).is_some());
        assert!(solution.score > 0.5, "score = {}", solution.score);
        assert!(solution.trials <= 40);
        assert!(
            solution.technique == "genetic-algorithm"
                || solution.technique == "bayesian-optimization"
                || solution.technique == "default"
        );
    }

    #[test]
    fn tuning_beats_or_matches_defaults() {
        let dmd = dmd();
        let data = SynthSpec::new(
            "t",
            150,
            3,
            0,
            2,
            SynthFamily::GaussianBlobs { spread: 1.5 },
            9,
        )
        .with_label_noise(0.1)
        .generate();
        let udr = UdrConfig::fast();
        let solution = udr.tune(&dmd.registry, "IBk", &data).unwrap();
        let spec = dmd.registry.get("IBk").unwrap();
        let default_score =
            cross_val_accuracy(|| spec.build(&spec.default_config(), 0), &data, 3, 0).unwrap();
        assert!(
            solution.score >= default_score - 1e-9,
            "tuned {} vs default {default_score}",
            solution.score
        );
    }

    #[test]
    fn tune_rejects_inapplicable_algorithms() {
        let registry = automodel_ml::Registry::full();
        let numeric = SynthSpec::new("n", 80, 3, 0, 2, SynthFamily::Hyperplane, 3).generate();
        let udr = UdrConfig::fast();
        let err = udr.tune(&registry, "Id3", &numeric).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Ml(automodel_ml::MlError::NotApplicable { .. })
        ));
    }

    #[test]
    fn tune_handles_empty_spaces_via_defaults() {
        let registry = automodel_ml::Registry::full();
        let data = SynthSpec::new("z", 80, 2, 0, 2, SynthFamily::Hyperplane, 4).generate();
        let mut udr = UdrConfig::fast();
        udr.tuning_budget = Budget::evals(10);
        // ZeroR has an empty hyperparameter space.
        let solution = udr.tune(&registry, "ZeroR", &data).unwrap();
        assert_eq!(solution.algorithm, "ZeroR");
        assert!(solution.score > 0.0);
    }

    #[test]
    fn sha_path_tunes_deterministically() {
        let registry = automodel_ml::Registry::fast();
        let data = SynthSpec::new("mf", 130, 3, 0, 2, SynthFamily::Hyperplane, 11).generate();
        let udr = UdrConfig::fast().with_optimizer(InnerOptimizer::Sha);
        let a = udr.tune(&registry, "IBk", &data).unwrap();
        let b = udr.tune(&registry, "IBk", &data).unwrap();
        assert_eq!(a.technique, "successive-halving");
        assert_eq!(a.config, b.config);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert!(a.trials <= 40, "trials = {}", a.trials);
        assert!(a.score > 0.5, "score = {}", a.score);
    }

    #[test]
    fn hyperband_path_tunes_deterministically() {
        let registry = automodel_ml::Registry::fast();
        let data = SynthSpec::new("hb", 130, 3, 0, 2, SynthFamily::Hyperplane, 12).generate();
        let mut udr = UdrConfig::fast().with_optimizer(InnerOptimizer::Hyperband);
        udr.tuning_budget = Budget::evals(69); // the full bracket grid
        let a = udr.tune(&registry, "IBk", &data).unwrap();
        let b = udr.tune(&registry, "IBk", &data).unwrap();
        assert_eq!(a.technique, "hyperband");
        assert_eq!(a.config, b.config);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.trials, 69);
    }

    #[test]
    fn forced_bo_path_works() {
        let dmd = dmd();
        let data = SynthSpec::new("bo", 100, 3, 0, 2, SynthFamily::Hyperplane, 5).generate();
        let mut udr = UdrConfig::fast();
        // A never-advancing clock reads the probe as 0 elapsed; with a zero
        // threshold `0 < 0` fails, so BO is forced deterministically (no
        // dependence on how fast the probe really ran).
        udr.probe_clock = Arc::new(automodel_hpo::ManualClock::new());
        udr.eval_time_threshold = Duration::ZERO;
        udr.tuning_budget = Budget::evals(15);
        let solution = udr.tune(&dmd.registry, "IBk", &data).unwrap();
        assert_eq!(solution.technique, "bayesian-optimization");
    }
}
