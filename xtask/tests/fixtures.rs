//! Fixture tests: one passing and one violating snippet per rule family,
//! exercised through the same entry points the CLI uses.

use xtask::manifest::{check_workspace, Manifest};
use xtask::rules::check_file;
use xtask::scan::SourceFile;

/// Findings for `src` placed at `path`, filtered to `rule`.
fn findings(path: &str, src: &str, rule: &str) -> Vec<(usize, usize)> {
    let file = SourceFile::parse(path, src);
    check_file(&file)
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.col))
        .collect()
}

// ---------------------------------------------------------------- L1 --

#[test]
fn l1_violation_unwrap_in_library_code() {
    let hits = findings(
        "crates/hpo/src/x.rs",
        "pub fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap()\n}\n",
        "no-panic-lib",
    );
    assert_eq!(hits, vec![(2, 15)]);
}

#[test]
fn l1_passing_result_test_module_and_allow() {
    let src = "\
pub fn f(v: &[u32]) -> Option<u32> {\n\
    v.first().copied() // lint:allow in a comment is inert text\n\
}\n\
pub fn g() -> usize {\n\
    // lint:allow(no-panic-lib): slice is non-empty by construction\n\
    [1].iter().max().unwrap().to_owned() as usize\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() {\n\
        super::f(&[1]).unwrap();\n\
        panic!(\"test code may panic\");\n\
    }\n\
}\n";
    assert!(findings("crates/core/src/x.rs", src, "no-panic-lib").is_empty());
}

#[test]
fn l1_only_applies_to_the_seven_product_crates() {
    let src = "pub fn f() { Vec::<u32>::new().first().unwrap(); }\n";
    assert_eq!(findings("crates/nn/src/x.rs", src, "no-panic-lib").len(), 1);
    assert_eq!(
        findings("crates/parallel/src/x.rs", src, "no-panic-lib").len(),
        1
    );
    // bench, xtask, vendor, integration tests: out of scope.
    assert!(findings("crates/bench/src/x.rs", src, "no-panic-lib").is_empty());
    assert!(findings("crates/nn/tests/x.rs", src, "no-panic-lib").is_empty());
    assert!(findings("xtask/src/x.rs", src, "no-panic-lib").is_empty());
}

// ---------------------------------------------------------------- L2 --

#[test]
fn l2_violation_ambient_and_clock_randomness() {
    let src = "\
fn a() { let mut rng = rand::thread_rng(); }\n\
fn b() -> u64 { rand::random() }\n\
fn c() { let rng = StdRng::seed_from_u64(SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_secs()); }\n";
    let hits = findings("crates/bench/src/x.rs", src, "determinism");
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn l2_passing_seeded_rng_everywhere() {
    let src = "\
fn run(seed: u64) {\n\
    let mut rng = StdRng::seed_from_u64(seed);\n\
    let x: f64 = rng.gen_range(0.0..1.0);\n\
    // Mentioning thread_rng() in a comment is fine.\n\
    let s = \"thread_rng()\";\n\
}\n";
    assert!(findings("crates/hpo/src/x.rs", src, "determinism").is_empty());
}

// ---------------------------------------------------------------- L3 --

#[test]
fn l3_violation_hashmap_in_order_sensitive_module() {
    let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<String, u32>) {}\n";
    let hits = findings("crates/knowledge/src/graph.rs", src, "ordered-iteration");
    assert_eq!(hits.len(), 2);
}

#[test]
fn l3_passing_btree_or_other_module_or_allowed() {
    let btree = "use std::collections::BTreeMap;\npub fn f(m: &BTreeMap<String, u32>) {}\n";
    assert!(findings("crates/knowledge/src/graph.rs", btree, "ordered-iteration").is_empty());
    // Same hash code outside the sensitive list is fine.
    let hash = "use std::collections::HashMap;\n";
    assert!(findings("crates/ml/src/x.rs", hash, "ordered-iteration").is_empty());
    // And an allowed site (order restored by sorting) passes.
    let allowed = "// lint:allow(ordered-iteration): keys sorted before use\nuse std::collections::HashMap;\n";
    assert!(findings("crates/hpo/src/ga.rs", allowed, "ordered-iteration").is_empty());
}

// ---------------------------------------------------------------- L4 --

#[test]
fn l4_violation_partial_cmp_unwrap() {
    let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
    assert_eq!(findings("crates/ml/src/x.rs", src, "nan-ordering").len(), 1);
    let expect =
        "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).expect(\"no NaN\") }\n";
    assert_eq!(
        findings("crates/ml/src/x.rs", expect, "nan-ordering").len(),
        1
    );
}

#[test]
fn l4_passing_total_cmp() {
    let src = "\
fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n\
fn g(a: f64, b: f64) -> Option<std::cmp::Ordering> { a.partial_cmp(&b) }\n";
    assert!(findings("crates/ml/src/x.rs", src, "nan-ordering").is_empty());
}

// ---------------------------------------------------------------- L6 --

#[test]
fn l6_violation_adhoc_pools_outside_the_executor_crate() {
    let src = "\
fn a() { crossbeam::scope(|s| { s.spawn(|_| {}); }).unwrap(); }\n\
fn b() { std::thread::spawn(|| {}); }\n\
fn c() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    let hits = findings("crates/core/src/x.rs", src, "no-adhoc-threads");
    assert_eq!(hits.len(), 3, "{hits:?}");
    // Bins and the bench harness are in scope too — determinism there is
    // exactly what the executor exists to protect.
    assert_eq!(
        findings("crates/bench/src/bin/x.rs", src, "no-adhoc-threads").len(),
        3
    );
}

#[test]
fn l6_passing_executor_crate_tests_and_allowed_sites() {
    let src = "fn a() { crossbeam::scope(|s| { s.spawn(|_| {}); }).unwrap(); }\n";
    // The executor crate itself owns the one sanctioned pool.
    assert!(findings("crates/parallel/src/executor.rs", src, "no-adhoc-threads").is_empty());
    // Inline test modules may spawn threads directly.
    let test_mod = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
    assert!(findings("crates/core/src/x.rs", &test_mod, "no-adhoc-threads").is_empty());
    // And an allowed site passes.
    let allowed =
        format!("// lint:allow(no-adhoc-threads): watchdog thread, no result ordering\n{src}");
    assert!(findings("crates/core/src/x.rs", &allowed, "no-adhoc-threads").is_empty());
}

// ---------------------------------------------------------------- L7 --

#[test]
fn l7_violation_catch_unwind_outside_the_containment_crate() {
    let src = "\
fn a() { let _ = std::panic::catch_unwind(|| eval()); }\n\
fn b() { let _ = panic::catch_unwind(AssertUnwindSafe(|| eval())); }\n";
    let hits = findings("crates/hpo/src/x.rs", src, "no-adhoc-catch-unwind");
    assert_eq!(hits.len(), 2, "{hits:?}");
    // The bench harness and bins are in scope too.
    assert_eq!(
        findings("crates/bench/src/bin/x.rs", src, "no-adhoc-catch-unwind").len(),
        2
    );
}

#[test]
fn l7_passing_containment_crate_tests_and_allowed_sites() {
    let src = "fn a() { let _ = std::panic::catch_unwind(|| eval()); }\n";
    // The containment layer owns the one sanctioned catch_unwind.
    assert!(findings("crates/parallel/src/fault.rs", src, "no-adhoc-catch-unwind").is_empty());
    // Inline test modules may catch panics directly.
    let test_mod = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
    assert!(findings("crates/core/src/x.rs", &test_mod, "no-adhoc-catch-unwind").is_empty());
    // And an allowed site passes.
    let allowed = format!("// lint:allow(no-adhoc-catch-unwind): ffi boundary\n{src}");
    assert!(findings("crates/core/src/x.rs", &allowed, "no-adhoc-catch-unwind").is_empty());
}

// ---------------------------------------------------------------- L8 --

#[test]
fn l8_violation_config_keyed_maps_outside_the_cache_crate() {
    let src = "\
struct A { memo: HashMap<Config, f64> }\n\
struct B { memo: BTreeMap<Config, TrialOutcome> }\n\
fn c(m: &mut HashMap<&Config, f64>) {}\n";
    let hits = findings("crates/hpo/src/x.rs", src, "no-adhoc-memo");
    assert_eq!(hits.len(), 3, "{hits:?}");
    // The bench harness and bins are in scope too.
    assert_eq!(
        findings("crates/bench/src/bin/x.rs", src, "no-adhoc-memo").len(),
        3
    );
}

#[test]
fn l8_passing_cache_crate_other_keys_tests_and_allowed_sites() {
    let src = "struct A { memo: HashMap<Config, f64> }\n";
    // The cache module's own crate owns the sanctioned memoization.
    assert!(findings("crates/parallel/src/cache.rs", src, "no-adhoc-memo").is_empty());
    // Maps keyed on other types — including Config-prefixed names — pass.
    let other = "\
struct B { by_mask: HashMap<Vec<bool>, f64> }\n\
struct C { by_id: BTreeMap<ConfigId, f64> }\n";
    assert!(findings("crates/core/src/x.rs", other, "no-adhoc-memo").is_empty());
    // Inline test modules may build Config-keyed maps to assert on caching.
    let test_mod = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
    assert!(findings("crates/hpo/src/x.rs", &test_mod, "no-adhoc-memo").is_empty());
    // And an allowed site passes.
    let allowed = format!("// lint:allow(no-adhoc-memo): dedup set, not a result cache\n{src}");
    assert!(findings("crates/hpo/src/x.rs", &allowed, "no-adhoc-memo").is_empty());
}

// ---------------------------------------------------------------- L5 --

const GOOD_ROOT: &str = "\
[workspace.package]\n\
rust-version = \"1.82\"\n\
repository = \"https://github.com/paper-repo-growth/auto-model\"\n\
[workspace.dependencies]\n\
rand = { path = \"vendor/rand\" }\n";

fn member(body: &str) -> Manifest {
    Manifest::parse(
        "crates/demo/Cargo.toml",
        &format!(
            "[package]\nname = \"demo\"\nrust-version.workspace = true\n[lints]\nworkspace = true\n{body}"
        ),
    )
}

#[test]
fn l5_violation_adhoc_version_placeholder_repo_and_dead_entry() {
    let root = Manifest::parse(
        "Cargo.toml",
        "[workspace.package]\nrepository = \"https://example.com/auto-model\"\n\
         [workspace.dependencies]\nunused-dep = \"1.0\"\n",
    );
    let m = member("[dependencies]\nrand = \"0.8\"\n");
    let msgs: Vec<String> = check_workspace(&root, &[m])
        .into_iter()
        .map(|d| d.message)
        .collect();
    assert!(msgs.iter().any(|m| m.contains("MSRV")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("placeholder")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unused-dep")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("bypasses the workspace")),
        "{msgs:?}"
    );
}

#[test]
fn l5_passing_workspace_table_and_inherited_msrv() {
    let root = Manifest::parse("Cargo.toml", GOOD_ROOT);
    let m =
        member("[dependencies]\nrand.workspace = true\nautomodel-hpo = { path = \"../hpo\" }\n");
    let diags = check_workspace(&root, &[m]);
    assert!(
        diags.is_empty(),
        "{:?}",
        diags.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
}

#[test]
fn l5_violation_member_without_lint_wall() {
    let root = Manifest::parse("Cargo.toml", GOOD_ROOT);
    let m = Manifest::parse(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"demo\"\nrust-version.workspace = true\n\
         [dependencies]\nrand.workspace = true\n",
    );
    let msgs: Vec<String> = check_workspace(&root, &[m])
        .into_iter()
        .map(|d| d.message)
        .collect();
    assert!(msgs.iter().any(|m| m.contains("lint wall")), "{msgs:?}");
}

// ------------------------------------------------------- end-to-end --

/// The repository's own tree must lint clean against its baseline — this is
/// the same invariant CI (`scripts/check.sh`) enforces, kept here so plain
/// `cargo test` catches violations too.
#[test]
fn workspace_lints_clean_against_baseline() {
    let root = xtask::workspace_root();
    let diags = xtask::run_lint(&root).expect("lint pass is infallible on a checked-out tree");
    let current = xtask::baseline::tally(&diags);
    let text = std::fs::read_to_string(root.join("xtask/lint-baseline.txt")).unwrap_or_default();
    let allowed = xtask::baseline::parse(&text).expect("baseline parses");
    let verdict = xtask::baseline::compare(&current, &allowed);
    assert!(
        verdict.is_clean(),
        "regressed: {:?}\nstale: {:?}",
        verdict.regressed,
        verdict.stale
    );
}
