//! Fixture-crate harness: every rule ships on-disk examples under
//! `xtask/tests/fixtures/<rule-id>/` — `violate.rs` (true positive),
//! `fix.rs` (true negative) and `allow.rs` (a justified `lint:allow`
//! escape). This test drives all of them through the full semantic
//! engine; `cargo xtask lint --explain <code>` prints the same files, so
//! explanations can never rot away from what the engine actually flags.
//!
//! Each fixture's first line is `//@path <workspace-relative path>`,
//! which decides rule scoping (crate membership, module lists).

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::sem::rules::RULES;
use xtask::sem::source::File;
use xtask::{baseline, manifest, sem};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Load one fixture, honoring its `//@path` scoping directive.
fn load(dir: &Path, name: &str) -> File {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let declared = text
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//@path "))
        .unwrap_or_else(|| panic!("{} must start with `//@path <path>`", path.display()));
    File::parse(declared.trim(), &text)
}

fn counts(report: &sem::Report, rule: &str) -> (usize, usize) {
    (
        report.active.iter().filter(|d| d.rule == rule).count(),
        report.suppressed.iter().filter(|d| d.rule == rule).count(),
    )
}

#[test]
fn every_rule_has_a_conforming_fixture_triplet() {
    for meta in &RULES {
        if meta.id == "manifest-hygiene" {
            continue; // TOML fixtures, separate test below
        }
        let dir = fixtures_root().join(meta.id);

        let violate = sem::analyze(&[load(&dir, "violate.rs")]);
        let (active, _) = counts(&violate, meta.id);
        assert!(
            active >= 1,
            "{}: violate.rs must trip the rule, findings: {:?}",
            meta.id,
            violate.active
        );

        let fix = sem::analyze(&[load(&dir, "fix.rs")]);
        let (active, suppressed) = counts(&fix, meta.id);
        assert_eq!(
            (active, suppressed),
            (0, 0),
            "{}: fix.rs must be clean of the rule",
            meta.id
        );

        let allow = sem::analyze(&[load(&dir, "allow.rs")]);
        let (active, suppressed) = counts(&allow, meta.id);
        assert_eq!(
            active, 0,
            "{}: allow.rs escape must silence the rule",
            meta.id
        );
        assert!(
            suppressed >= 1,
            "{}: allow.rs must still produce a suppressed finding",
            meta.id
        );
        // The escape itself must be live — no stale-allow fallout.
        let (stale_active, _) = counts(&allow, "stale-allow");
        assert_eq!(stale_active, 0, "{}: allow.rs escape must be live", meta.id);
    }
}

#[test]
fn manifest_fixtures_conform() {
    let dir = fixtures_root().join("manifest-hygiene");
    let root = manifest::Manifest::parse(
        "Cargo.toml",
        "[workspace.package]\n\
         rust-version = \"1.82\"\n\
         repository = \"https://git.invalid/auto-model\"\n\
         [workspace.dependencies]\n\
         rand = { path = \"vendor/rand\" }\n",
    );
    let violate = manifest::Manifest::parse(
        "crates/fixture/Cargo.toml",
        &std::fs::read_to_string(dir.join("violate.toml")).unwrap(),
    );
    let findings = manifest::check_workspace(&root, std::slice::from_ref(&violate));
    assert!(
        findings.iter().any(|d| d.rule == "manifest-hygiene"),
        "violate.toml must trip manifest-hygiene: {findings:?}"
    );

    let fix = manifest::Manifest::parse(
        "crates/fixture/Cargo.toml",
        &std::fs::read_to_string(dir.join("fix.toml")).unwrap(),
    );
    let findings = manifest::check_workspace(&root, std::slice::from_ref(&fix));
    assert!(findings.is_empty(), "fix.toml must be clean: {findings:?}");
}

#[test]
fn seeded_defect_hash_iteration_score_is_caught() {
    // The acceptance fixture from the issue: a HashMap-iteration-derived
    // trial score must be flagged by L10 wherever it hides in hpo code.
    let f = File::parse(
        "crates/hpo/src/seeded.rs",
        "use std::collections::HashMap;\n\
         pub fn aggregate(folds: &HashMap<u32, f64>) -> TrialOutcome {\n\
             let mut acc = 0.0;\n\
             for v in folds.values() {\n\
                 acc += v;\n\
             }\n\
             let adjusted = acc / 5.0;\n\
             TrialOutcome::from_score(adjusted)\n\
         }\n",
    );
    let r = sem::analyze(std::slice::from_ref(&f));
    assert!(
        r.active.iter().any(|d| d.rule == "determinism-taint"),
        "{:?}",
        r.active
    );
}

#[test]
fn seeded_defect_inverted_lock_pair_is_caught() {
    let f = load(&fixtures_root().join("lock-order"), "violate.rs");
    let r = sem::analyze(std::slice::from_ref(&f));
    let hits: Vec<_> = r.active.iter().filter(|d| d.rule == "lock-order").collect();
    assert_eq!(
        hits.len(),
        2,
        "both inverted edges must be reported: {hits:?}"
    );
}

// ---------------------------------------------------------------------
// End-to-end: the shipped binary, the JSON schema, the baseline file.
// ---------------------------------------------------------------------

fn run_xtask(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{key}`")),
        other => panic!("expected object with `{key}`, got {other:?}"),
    }
}

#[test]
fn json_report_validates_against_the_documented_schema() {
    let (stdout, stderr, code) = run_xtask(&["lint", "--format", "json"]);
    assert_eq!(
        code,
        Some(0),
        "lint must be clean on the repo\n{stderr}\n{stdout}"
    );
    let v: Value = serde_json::from_str(&stdout).expect("--format json must emit valid JSON");

    assert_eq!(
        field(&v, "schema"),
        &Value::String("automodel-lint/v2".to_string())
    );
    let Value::Array(rules) = field(&v, "rules") else {
        panic!("rules must be an array")
    };
    assert_eq!(rules.len(), 16, "one rule entry per L1–L16");
    for r in rules {
        for key in ["code", "id", "summary"] {
            assert!(matches!(field(r, key), Value::String(_)));
        }
    }
    let Value::Array(findings) = field(&v, "findings") else {
        panic!("findings must be an array")
    };
    for f in findings {
        for key in ["code", "rule", "file", "item", "message", "help", "snippet"] {
            assert!(matches!(field(f, key), Value::String(_)), "finding.{key}");
        }
        for key in ["line", "col"] {
            assert!(
                matches!(field(f, key), Value::U64(_) | Value::I64(_)),
                "finding.{key}"
            );
        }
        let Value::String(fp) = field(f, "fingerprint") else {
            panic!("fingerprint must be a string")
        };
        assert_eq!(fp.len(), 16, "fingerprints are 16 hex chars");
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(matches!(field(f, "baselined"), Value::Bool(_)));
    }
    assert!(matches!(field(&v, "suppressed"), Value::Array(_)));
    let summary = field(&v, "summary");
    for key in [
        "total",
        "new",
        "baselined",
        "suppressed",
        "regressed_buckets",
        "stale_buckets",
    ] {
        assert!(
            matches!(field(summary, key), Value::U64(_) | Value::I64(_)),
            "summary.{key}"
        );
    }
    assert_eq!(field(summary, "clean"), &Value::Bool(true));
    assert_eq!(
        field(summary, "new"),
        &Value::U64(0),
        "no new findings allowed"
    );
}

#[test]
fn explain_prints_rationale_with_fixture_examples() {
    let (stdout, _, code) = run_xtask(&["lint", "--explain", "L10"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("determinism-taint"));
    assert!(
        stdout.contains("intraprocedural dataflow"),
        "rationale text"
    );
    assert!(stdout.contains("violates the rule"), "violating example");
    assert!(stdout.contains("--- fixed"), "fixed example");
    assert!(stdout.contains("from_score"), "example body shown");

    // Lookup by rule id works too.
    let (by_id, _, code) = run_xtask(&["lint", "--explain", "lock-order"]);
    assert_eq!(code, Some(0));
    assert!(by_id.contains("L11"));
}

#[test]
fn explain_unknown_rule_lists_the_table_and_fails() {
    let (_, stderr, code) = run_xtask(&["lint", "--explain", "L99"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("no-panic-lib"), "table listed on stderr");
}

#[test]
fn shipped_baseline_is_v2_and_matches_the_tree() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("lint-baseline.txt");
    let text = std::fs::read_to_string(&path).expect("baseline file present");
    let parsed = baseline::parse(&text).expect("baseline parses");
    assert!(parsed.v2, "shipped baseline must use fingerprint keys");

    let report = xtask::run_lint(&xtask::workspace_root()).expect("lint runs");
    let verdict = baseline::compare(&baseline::tally_v2(&report.active), &parsed.counts);
    assert!(
        verdict.is_clean(),
        "tree must match baseline exactly: {verdict:?}"
    );
}
