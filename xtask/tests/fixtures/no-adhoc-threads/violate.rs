//@path crates/hpo/src/fixture.rs
pub fn evaluate_all(configs: &[Config]) -> Vec<f64> {
    let handles: Vec<_> = configs
        .iter()
        .map(|c| std::thread::spawn(move || score(c)))
        .collect();
    handles.into_iter().map(|h| h.join().unwrap_or(f64::NAN)).collect()
}
