//@path crates/hpo/src/fixture.rs
pub fn watchdog() {
    // One long-lived monitor thread, not a result-producing pool.
    std::thread::spawn(|| monitor_loop()); // lint:allow(no-adhoc-threads): monitor thread, produces no results
}
