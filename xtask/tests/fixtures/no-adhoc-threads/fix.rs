//@path crates/hpo/src/fixture.rs
pub fn evaluate_all(exec: &Executor, configs: &[Config]) -> Vec<TrialOutcome> {
    exec.map(configs.len(), |i| run_trial(|| score(&configs[i])))
}
