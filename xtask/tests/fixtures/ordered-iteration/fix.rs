//@path crates/hpo/src/ga.rs
use std::collections::BTreeMap;
pub fn tally(pop: &[Config]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for c in pop {
        *counts.entry(c.name().to_string()).or_insert(0) += 1;
    }
    counts
}
