//@path crates/hpo/src/ga.rs
use std::collections::HashMap; // lint:allow(ordered-iteration): drained into a sorted Vec below
pub fn tally(pop: &[Config]) -> Vec<(String, usize)> {
    let mut counts = HashMap::new(); // lint:allow(ordered-iteration): drained into a sorted Vec below
    for c in pop {
        *counts.entry(c.name().to_string()).or_insert(0) += 1;
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort();
    out
}
