//@path crates/hpo/src/ga.rs
use std::collections::HashMap;
pub fn tally(pop: &[Config]) -> HashMap<String, usize> {
    let mut counts = HashMap::new();
    for c in pop {
        *counts.entry(c.name().to_string()).or_insert(0) += 1;
    }
    counts
}
