//@path crates/core/src/fixture.rs
pub fn parse_rate(raw: &str) -> f64 {
    let rate: f64 = raw.parse().unwrap();
    if rate < 0.0 {
        panic!("negative rate");
    }
    rate
}
