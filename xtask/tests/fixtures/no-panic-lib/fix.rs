//@path crates/core/src/fixture.rs
pub fn parse_rate(raw: &str) -> Result<f64, ModelError> {
    let rate: f64 = raw.parse().map_err(|_| ModelError::BadRate)?;
    if rate < 0.0 {
        return Err(ModelError::BadRate);
    }
    Ok(rate)
}
