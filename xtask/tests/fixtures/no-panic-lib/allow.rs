//@path crates/core/src/fixture.rs
pub fn column_mean(xs: &[f64]) -> f64 {
    // The slice is validated non-empty by the caller's schema check.
    let first = xs.first().unwrap(); // lint:allow(no-panic-lib): validated non-empty above
    first + 0.0
}
