//@path crates/hpo/src/fixture.rs
impl HillClimb {
    pub fn with_policy(mut self, policy: TrialPolicy) -> HillClimb {
        self.policy = policy;
        self
    }
    pub fn optimize(&self, space: &SearchSpace, budget: &Budget) -> OptOutcome {
        self.walk(space, budget)
    }
}
