//@path crates/hpo/src/fixture.rs
impl HillClimb {
    pub fn with_policy(mut self, policy: TrialPolicy) -> HillClimb {
        self.policy = policy;
        self
    }
    pub fn with_cache(mut self, cache: Arc<TrialCache>) -> HillClimb {
        self.cache = Some(cache);
        self
    }
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> HillClimb {
        self.tracer = Some(tracer);
        self
    }
    pub fn optimize(&self, space: &SearchSpace, budget: &Budget) -> OptOutcome {
        self.walk(space, budget)
    }
}
