//@path crates/hpo/src/fixture.rs
impl Exhaustive {
    // Enumerates a finite space with no trials, faults or caching.
    pub fn optimize(&self, space: &FiniteSpace) -> OptOutcome { // lint:allow(contract-conformance): exhaustive enumeration, no trial substrate
        space.enumerate_all()
    }
}
