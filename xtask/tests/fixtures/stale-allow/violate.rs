//@path crates/core/src/fixture.rs
pub fn mean(xs: &[f64]) -> f64 {
    // The unwrap this escape once covered was refactored away.
    xs.iter().sum::<f64>() / xs.len() as f64 // lint:allow(no-panic-lib): checked non-empty
}
