//@path crates/core/src/fixture.rs
pub fn mean(xs: &[f64]) -> f64 {
    // Escape kept on purpose as reference material for the docs.
    xs.iter().sum::<f64>() / xs.len() as f64 // lint:allow(no-panic-lib, stale-allow): documentation keeper
}
