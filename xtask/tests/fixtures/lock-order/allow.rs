//@path crates/hpo/src/fixture.rs
pub struct ScoreBoard {
    board: Mutex<Vec<f64>>,
}
pub struct History {
    log: Mutex<Vec<u64>>,
}
impl ScoreBoard {
    pub fn merge(&self, h: &History) {
        let b = self.board.lock();
        let l = h.log.lock(); // lint:allow(lock-order): merge/absorb are never concurrent (single owner)
        drop((b, l));
    }
}
impl History {
    pub fn absorb(&self, s: &ScoreBoard) {
        let l = self.log.lock();
        let b = s.board.lock(); // lint:allow(lock-order): merge/absorb are never concurrent (single owner)
        drop((l, b));
    }
}
