//@path crates/hpo/src/fixture.rs
use std::collections::HashMap;
pub struct Memo {
    seen: HashMap<Config, f64>,
}
