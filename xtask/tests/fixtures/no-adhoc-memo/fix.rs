//@path crates/hpo/src/fixture.rs
pub struct Memo {
    cache: Arc<TrialCache>,
}
