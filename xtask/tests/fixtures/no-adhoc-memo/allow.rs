//@path crates/hpo/src/fixture.rs
use std::collections::BTreeMap;
pub struct Audit {
    // Diagnostic-only ledger, never consulted before evaluation.
    trail: BTreeMap<Config, u32>, // lint:allow(no-adhoc-memo): audit ledger, not a cache
}
