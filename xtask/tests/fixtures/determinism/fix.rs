//@path crates/hpo/src/fixture.rs
pub fn sample(space: &SearchSpace, seed: u64) -> Config {
    let mut rng = StdRng::seed_from_u64(seed);
    space.sample(&mut rng)
}
