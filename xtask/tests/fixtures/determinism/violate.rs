//@path crates/hpo/src/fixture.rs
pub fn sample(space: &SearchSpace) -> Config {
    let mut rng = rand::thread_rng();
    space.sample(&mut rng)
}
