//@path crates/hpo/src/fixture.rs
pub fn jitter_id() -> u64 {
    // Used only for a log correlation id, never for results.
    let mut rng = rand::thread_rng(); // lint:allow(determinism): correlation id only, not in results
    rng.next_u64()
}
