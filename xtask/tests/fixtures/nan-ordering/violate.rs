//@path crates/hpo/src/fixture.rs
pub fn best_first(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
