//@path crates/hpo/src/fixture.rs
pub fn best_first(scores: &mut [f64]) {
    scores.sort_by(f64::total_cmp);
}
