//@path crates/hpo/src/fixture.rs
pub fn best_first(scores: &mut [f64]) {
    // Scores are clamped finite by TrialOutcome before they get here.
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap()); // lint:allow(nan-ordering): clamped finite upstream
}
