//@path crates/core/src/fixture.rs
pub fn save_model(model: &Dmd, cache: &TrialCache, path: &Path) -> Result<(), StoreError> {
    // The store container carries magic, format version and per-section
    // digests; corruption comes back as a typed StoreError.
    let artifact = model.to_artifact().into_store(cache.snapshot());
    artifact.save(path)
}
