//@path crates/core/src/fixture.rs
pub fn write_crash_report(path: &Path, report: &str) {
    // Best-effort diagnostics on the abort path: the process is dying and
    // the bytes are for a human, not a future load.
    let _ = std::fs::write(path, report); // lint:allow(no-adhoc-persistence): crash diagnostics, not a model artifact
}
