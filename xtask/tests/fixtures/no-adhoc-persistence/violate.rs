//@path crates/core/src/fixture.rs
pub fn save_model(model: &Dmd, path: &Path) -> Result<(), CoreError> {
    // Raw bytes with no magic, no version, no digests: a truncated file
    // reads back as garbage instead of a typed error.
    let bytes = serialize(model);
    std::fs::write(path, bytes)?;
    Ok(())
}
