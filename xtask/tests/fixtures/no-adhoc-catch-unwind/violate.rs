//@path crates/hpo/src/fixture.rs
pub fn guarded_score(c: &Config) -> f64 {
    std::panic::catch_unwind(|| score(c)).unwrap_or(f64::NEG_INFINITY)
}
