//@path crates/hpo/src/fixture.rs
pub fn ffi_guard(f: extern "C" fn()) {
    // FFI boundary: unwinding across it is UB, containment cannot wrap this.
    let _ = std::panic::catch_unwind(|| f()); // lint:allow(no-adhoc-catch-unwind): FFI abort guard, not a trial
}
