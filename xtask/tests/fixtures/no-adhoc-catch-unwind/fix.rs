//@path crates/hpo/src/fixture.rs
pub fn guarded_score(c: &Config, policy: &TrialPolicy) -> TrialOutcome {
    run_trial(policy, || score(c))
}
