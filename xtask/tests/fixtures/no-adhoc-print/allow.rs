//@path crates/data/src/fixture.rs
pub fn panic_hook_banner() {
    // Runs inside the panic hook where no Tracer can exist.
    eprintln!("data loader aborted"); // lint:allow(no-adhoc-print): panic hook, tracer unavailable
}
