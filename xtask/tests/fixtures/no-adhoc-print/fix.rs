//@path crates/data/src/fixture.rs
pub fn load(path: &str, tracer: &Tracer) -> Dataset {
    tracer.emit(TraceEvent::stage_start("load", path));
    Dataset::from_path(path)
}
