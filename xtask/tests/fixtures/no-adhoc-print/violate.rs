//@path crates/data/src/fixture.rs
pub fn load(path: &str) -> Dataset {
    println!("loading {path}");
    Dataset::from_path(path)
}
