//@path crates/hpo/src/fixture.rs
use std::collections::BTreeMap;
pub fn fold_score(weights: &BTreeMap<String, f64>) -> TrialOutcome {
    let mut total = 0.0;
    for (_name, w) in weights.iter() {
        total += w;
    }
    TrialOutcome::from_score(total)
}
