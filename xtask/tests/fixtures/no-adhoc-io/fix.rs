//@path crates/core/src/fixture.rs
pub fn tune_remote(server: &Arc<Server>, line: &str) -> SessionResult {
    // External bytes enter through the serve transport seam, where the
    // protocol's length cap, typed errors and round-robin admission
    // gate all apply before any trial runs.
    server.handle_line(line)
}
