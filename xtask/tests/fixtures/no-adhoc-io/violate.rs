//@path crates/core/src/fixture.rs
pub fn fetch_remote_corpus(addr: &str) -> Result<Corpus, CoreError> {
    // An unaudited ingress: bytes arrive with no length cap, no typed
    // rejection and no admission gating.
    let stream = TcpStream::connect(addr)?;
    decode_corpus(stream)
}
