//@path crates/core/src/fixture.rs
pub fn probe_port_free(addr: &str) -> bool {
    // Bind-and-drop availability probe: no request bytes are ever read,
    // so the protocol validation pipeline has nothing to validate.
    TcpListener::bind(addr).is_ok() // lint:allow(no-adhoc-io): availability probe, no ingress bytes are read
}
