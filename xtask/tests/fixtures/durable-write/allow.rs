//@path crates/store/src/fixture.rs
pub fn probe_writable(dir: &Path) -> bool {
    // A capability probe: the byte is deleted immediately and never read
    // back, so durability guarantees are irrelevant here.
    let p = dir.join(".probe");
    let ok = std::fs::write(&p, b"w").is_ok(); // lint:allow(durable-write): capability probe, bytes never read back
    let _ = std::fs::remove_file(&p);
    ok
}
