//@path crates/store/src/fixture.rs
pub fn persist_generation(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Write-temp + fsync + rename with bounded deterministic retry: a
    // reader observes the old bytes or the new bytes, never a torn
    // file, and seeded IO faults inject here for the kill-drill.
    atomic_write(vfs, path, bytes)
}
