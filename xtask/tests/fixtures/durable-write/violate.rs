//@path crates/store/src/fixture.rs
pub fn persist_generation(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Raw create + write: no fsync, no temp + rename, no fault
    // injection — a crash mid-call leaves a torn generation file that
    // the store promised could never exist.
    std::fs::write(path, bytes)
}
