//! Baseline ratchet for grandfathered violations.
//!
//! Two on-disk formats are understood:
//!
//! * **v2** (written by `--update-baseline`): entries are keyed by the
//!   finding's stable *fingerprint* — rule + item path + normalized
//!   snippet, see [`Diagnostic::fingerprint`] — so renaming a file or
//!   moving a function produces **zero baseline churn**. Format:
//!   `<rule> <fingerprint16> <count>` under a `# lint-baseline v2`
//!   header, with a human-readable `#` comment per entry.
//! * **v1** (legacy): `<rule> <file> <count>` buckets. Still parsed and
//!   enforced with the old per-file semantics so an old checkout fails
//!   safe; the runner prints a migration note until the file is
//!   regenerated.
//!
//! Enforcement is an exact two-sided match in both formats:
//!
//! * **more** violations than the baseline → the new ones are hard errors;
//! * **fewer** violations → the fix is real progress, but the run still
//!   fails with a "stale baseline" message until the file is regenerated
//!   with `cargo xtask lint --update-baseline` — so burn-down is recorded
//!   in the same commit, never silently re-grandfathered.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Header marking the fingerprint-keyed format.
pub const V2_HEADER: &str = "# lint-baseline v2";

/// Counted buckets. v1 keys are `(rule, file)`; v2 keys are
/// `(rule, fingerprint)`.
pub type Counts = BTreeMap<(String, String), usize>;

/// A parsed baseline file.
#[derive(Debug, PartialEq, Eq)]
pub struct Baseline {
    /// True when the file carried the [`V2_HEADER`].
    pub v2: bool,
    pub counts: Counts,
}

impl Baseline {
    pub fn empty_v2() -> Baseline {
        Baseline {
            v2: true,
            counts: Counts::new(),
        }
    }
}

/// Parse either baseline format; the v2 header decides which.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let v2 = text.lines().next().is_some_and(|l| l.trim() == V2_HEADER);
    let mut counts = Counts::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(key), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `<rule> <{}> <count>`",
                i + 1,
                if v2 { "fingerprint" } else { "file" }
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        *counts
            .entry((rule.to_string(), key.to_string()))
            .or_insert(0) += count;
    }
    Ok(Baseline { v2, counts })
}

/// Tally diagnostics into legacy `(rule, file)` buckets.
pub fn tally_v1(diags: &[Diagnostic]) -> Counts {
    let mut counts = Counts::new();
    for d in diags {
        *counts.entry(d.baseline_key()).or_insert(0) += 1;
    }
    counts
}

/// Tally diagnostics into `(rule, fingerprint)` buckets.
pub fn tally_v2(diags: &[Diagnostic]) -> Counts {
    let mut counts = Counts::new();
    for d in diags {
        *counts
            .entry((d.rule.to_string(), d.fingerprint()))
            .or_insert(0) += 1;
    }
    counts
}

/// Serialize diagnostics as a v2 baseline file, one commented entry per
/// fingerprint bucket. Comments carry the item path and snippet purely
/// for humans; only `<rule> <fingerprint> <count>` lines are parsed.
pub fn render_v2(diags: &[Diagnostic]) -> String {
    let mut buckets: BTreeMap<(String, String), (usize, &Diagnostic)> = BTreeMap::new();
    for d in diags {
        let e = buckets
            .entry((d.rule.to_string(), d.fingerprint()))
            .or_insert((0, d));
        e.0 += 1;
    }
    let mut out = format!(
        "{V2_HEADER}\n\
         # Grandfathered violations, keyed by stable fingerprint\n\
         # (rule + item path + normalized snippet — survives file renames\n\
         # and line churn). Burn these down; regenerate with\n\
         # `cargo xtask lint --update-baseline`.\n\
         # Format: <rule> <fingerprint> <count>\n"
    );
    for ((rule, fp), (count, d)) in &buckets {
        let mut snip = d.normalized_snippet();
        if snip.len() > 60 {
            snip.truncate(57);
            snip.push_str("...");
        }
        let loc = if d.item.is_empty() {
            d.file.display().to_string()
        } else {
            format!("{} ({})", d.item, d.file.display())
        };
        let _ = writeln!(out, "# {loc}: {snip}");
        let _ = writeln!(out, "{rule} {fp} {count}");
    }
    out
}

/// Outcome of comparing a run against the baseline.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Buckets with more violations than allowed (rule, key, have, allowed).
    pub regressed: Vec<(String, String, usize, usize)>,
    /// Buckets that improved but whose baseline entry was not updated.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Verdict {
    pub fn is_clean(&self) -> bool {
        self.regressed.is_empty() && self.stale.is_empty()
    }
}

/// Compare current counts against baseline counts (same key space).
pub fn compare(current: &Counts, baseline: &Counts) -> Verdict {
    let mut v = Verdict::default();
    for (key, &have) in current {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if have > allowed {
            v.regressed
                .push((key.0.clone(), key.1.clone(), have, allowed));
        } else if have < allowed {
            v.stale.push((key.0.clone(), key.1.clone(), have, allowed));
        }
    }
    for (key, &allowed) in baseline {
        if !current.contains_key(key) {
            v.stale.push((key.0.clone(), key.1.clone(), 0, allowed));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(rule: &'static str, file: &str, line: usize, item: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            code: "L1",
            file: PathBuf::from(file),
            line,
            col: 1,
            len: 1,
            item: item.to_string(),
            message: String::new(),
            help: "",
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn v2_roundtrip_preserves_every_bucket() {
        let diags = vec![
            diag(
                "no-panic-lib",
                "crates/core/src/a.rs",
                3,
                "A::f",
                "x.unwrap();",
            ),
            diag(
                "no-panic-lib",
                "crates/core/src/a.rs",
                9,
                "A::f",
                "x.unwrap();",
            ),
            diag(
                "determinism",
                "crates/hpo/src/b.rs",
                2,
                "go",
                "thread_rng()",
            ),
        ];
        let text = render_v2(&diags);
        let parsed = parse(&text).unwrap();
        assert!(parsed.v2);
        assert_eq!(parsed.counts, tally_v2(&diags));
        assert_eq!(parsed.counts.values().sum::<usize>(), 3);
    }

    #[test]
    fn v1_files_are_recognized_and_parsed_with_file_keys() {
        let legacy = "# cargo xtask lint — grandfathered violation counts.\n\
                      no-panic-lib crates/ml/src/algorithms/bayes.rs 6\n";
        let parsed = parse(legacy).unwrap();
        assert!(!parsed.v2);
        assert_eq!(
            parsed.counts.get(&(
                "no-panic-lib".to_string(),
                "crates/ml/src/algorithms/bayes.rs".to_string()
            )),
            Some(&6)
        );
    }

    #[test]
    fn rename_and_move_refactors_produce_zero_v2_churn() {
        let before = vec![
            diag(
                "no-panic-lib",
                "crates/core/src/old.rs",
                42,
                "A::f",
                "  x.unwrap();",
            ),
            diag(
                "determinism",
                "crates/hpo/src/b.rs",
                7,
                "go",
                "thread_rng()",
            ),
        ];
        // Same findings after: file renamed, lines shifted, reindented.
        let after = vec![
            diag(
                "no-panic-lib",
                "crates/core/src/renamed.rs",
                7,
                "A::f",
                "x.unwrap();",
            ),
            diag(
                "determinism",
                "crates/hpo/src/moved/b.rs",
                100,
                "go",
                "    thread_rng()",
            ),
        ];
        assert_eq!(tally_v2(&before), tally_v2(&after));
        assert!(compare(&tally_v2(&after), &tally_v2(&before)).is_clean());
        // The legacy keying would have churned on both entries.
        assert_ne!(tally_v1(&before), tally_v1(&after));
    }

    #[test]
    fn regression_and_staleness_are_both_failures() {
        let one = vec![diag("r", "a.rs", 1, "f", "bad()")];
        let two = vec![
            diag("r", "a.rs", 1, "f", "bad()"),
            diag("r", "a.rs", 2, "f", "bad()"),
        ];
        // More hits on the same fingerprint than recorded → regressed.
        let v = compare(&tally_v2(&two), &tally_v2(&one));
        assert_eq!(v.regressed.len(), 1);
        assert!(v.stale.is_empty());
        // Fixing one → stale until regenerated.
        let v = compare(&tally_v2(&one), &tally_v2(&two));
        assert!(v.regressed.is_empty());
        assert_eq!(v.stale.len(), 1);
        // Exact match → clean.
        assert!(compare(&tally_v2(&two), &tally_v2(&two)).is_clean());
    }
}
