//! Baseline ratchet for grandfathered violations.
//!
//! `xtask/lint-baseline.txt` records, per `(rule, file)`, how many
//! violations existed when the rule landed. The lint run then enforces an
//! exact match in both directions:
//!
//! * **more** violations than the baseline → the new ones are hard errors;
//! * **fewer** violations → the fix is real progress, but the run still
//!   fails with a "stale baseline" message until the file is regenerated
//!   with `cargo xtask lint --update-baseline` — so burn-down is recorded
//!   in the same commit, never silently re-grandfathered.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub type Counts = BTreeMap<(String, String), usize>;

/// Parse the baseline file format: `<rule> <file> <count>` per line,
/// `#` comments and blank lines ignored.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `<rule> <file> <count>`",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        counts.insert((rule.to_string(), file.to_string()), count);
    }
    Ok(counts)
}

/// Serialize counts back into the on-disk format.
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# cargo xtask lint — grandfathered violation counts.\n\
         # Burn these down; regenerate with `cargo xtask lint --update-baseline`.\n\
         # Format: <rule> <file> <count>\n",
    );
    for ((rule, file), count) in counts {
        let _ = writeln!(out, "{rule} {file} {count}");
    }
    out
}

/// Tally diagnostics into per-(rule, file) counts.
pub fn tally(diags: &[Diagnostic]) -> Counts {
    let mut counts = Counts::new();
    for d in diags {
        *counts.entry(d.baseline_key()).or_insert(0) += 1;
    }
    counts
}

/// Outcome of comparing a run against the baseline.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Buckets with more violations than allowed (rule, file, have, allowed).
    pub regressed: Vec<(String, String, usize, usize)>,
    /// Buckets that improved but whose baseline entry was not updated.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Verdict {
    pub fn is_clean(&self) -> bool {
        self.regressed.is_empty() && self.stale.is_empty()
    }
}

/// Compare current counts against the baseline.
pub fn compare(current: &Counts, baseline: &Counts) -> Verdict {
    let mut v = Verdict::default();
    for (key, &have) in current {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if have > allowed {
            v.regressed
                .push((key.0.clone(), key.1.clone(), have, allowed));
        } else if have < allowed {
            v.stale.push((key.0.clone(), key.1.clone(), have, allowed));
        }
    }
    for (key, &allowed) in baseline {
        if !current.contains_key(key) {
            v.stale.push((key.0.clone(), key.1.clone(), 0, allowed));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(list: &[(&str, &str, usize)]) -> Counts {
        list.iter()
            .map(|(r, f, c)| ((r.to_string(), f.to_string()), *c))
            .collect()
    }

    #[test]
    fn roundtrip() {
        let c = counts(&[("no-panic-lib", "crates/core/src/a.rs", 3)]);
        assert_eq!(parse(&render(&c)).unwrap(), c);
    }

    #[test]
    fn regression_and_staleness_are_both_failures() {
        let base = counts(&[("r", "a.rs", 2), ("r", "b.rs", 1)]);
        let now = counts(&[("r", "a.rs", 3)]);
        let v = compare(&now, &base);
        assert_eq!(v.regressed, vec![("r".into(), "a.rs".into(), 3, 2)]);
        assert_eq!(v.stale, vec![("r".into(), "b.rs".into(), 0, 1)]);
        assert!(!v.is_clean());
    }

    #[test]
    fn exact_match_is_clean() {
        let base = counts(&[("r", "a.rs", 2)]);
        assert!(compare(&base, &base).is_clean());
        assert!(compare(&Counts::new(), &Counts::new()).is_clean());
    }
}
