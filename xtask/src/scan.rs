//! Lexical model of one Rust source file, shared by every lint rule.
//!
//! Rules never look at raw text: they see *blanked* lines in which comment
//! bodies and string/char literal contents have been replaced by spaces
//! (line structure preserved). That makes naive substring matching sound —
//! `"thread_rng"` inside a string literal or doc comment can never fire.
//!
//! The scanner also extracts:
//! * `// lint:allow(rule-a, rule-b)` escapes — a directive suppresses the
//!   named rules on its own line, or on the next source line when the
//!   comment stands alone;
//! * `#[cfg(test)]` item regions, so rules that only apply to library code
//!   (e.g. `no-panic-lib`) can skip inline test modules.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A scanned source file ready for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Original lines, for diagnostics.
    pub raw: Vec<String>,
    /// Lines with comments and literal contents blanked to spaces.
    pub clean: Vec<String>,
    /// `in_test[i]` — line `i` (0-based) lies inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// `allow[i]` — rule ids suppressed on line `i` (0-based).
    pub allow: Vec<BTreeSet<String>>,
}

impl SourceFile {
    /// Scan `text` as the contents of `path` (workspace-relative).
    pub fn parse(path: impl Into<PathBuf>, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let (clean_text, directives) = blank(text);
        let clean: Vec<String> = clean_text.lines().map(str::to_string).collect();
        let in_test = test_regions(&clean);
        let allow = attach_directives(raw.len(), &clean, directives);
        SourceFile {
            path: path.into(),
            raw,
            clean,
            in_test,
            allow,
        }
    }

    /// Scan a file on disk; `root` is the workspace root the stored path is
    /// made relative to.
    pub fn read(root: &Path, abs: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(abs)?;
        let rel = abs.strip_prefix(root).unwrap_or(abs);
        Ok(SourceFile::parse(rel, &text))
    }

    /// Is `rule` suppressed on 0-based line `idx`?
    pub fn is_allowed(&self, idx: usize, rule: &str) -> bool {
        self.allow.get(idx).is_some_and(|set| set.contains(rule))
    }
}

/// A `lint:allow` directive found during blanking.
struct Directive {
    /// 0-based line the comment sits on.
    line: usize,
    /// True when the whole line is just the comment (directive then applies
    /// to the *next* source line).
    standalone: bool,
    rules: Vec<String>,
}

/// Replace comment bodies and literal contents with spaces, keeping line
/// breaks, and harvest `lint:allow` directives from comments.
fn blank(text: &str) -> (String, Vec<Directive>) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = String::with_capacity(text.len());
    let mut directives = Vec::new();
    let mut comment_buf = String::new();
    let mut line = 0usize;
    let mut line_had_code = false;
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                harvest(&comment_buf, line, !line_had_code, &mut directives);
                comment_buf.clear();
                state = State::Code;
            }
            out.push('\n');
            line += 1;
            line_had_code = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == 'r' && !prev_is_ident(&chars, i) {
                    if let Some(hashes) = raw_str_open(&chars, i) {
                        state = State::RawStr(hashes);
                        out.push('r');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        out.push('"');
                        line_had_code = true;
                        i += 2 + hashes as usize;
                        continue;
                    }
                }
                if c == '"' {
                    // Keep the delimiter so `("…")` still looks call-shaped.
                    out.push('"');
                    state = State::Str;
                    line_had_code = true;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Distinguish lifetimes (`'a`) from char literals (`'a'`).
                    let is_lifetime = chars
                        .get(i + 1)
                        .is_some_and(|n| n.is_alphabetic() || *n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push('\'');
                        line_had_code = true;
                        i += 1;
                        continue;
                    }
                    out.push('\'');
                    state = State::Char;
                    line_had_code = true;
                    i += 1;
                    continue;
                }
                if !c.is_whitespace() {
                    line_had_code = true;
                }
                out.push(c);
                i += 1;
            }
            State::LineComment => {
                comment_buf.push(c);
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    out.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    out.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && i + 1 < chars.len() {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    out.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' && i + 1 < chars.len() {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    out.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        harvest(&comment_buf, line, !line_had_code, &mut directives);
    }
    (out, directives)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// At `chars[i] == 'r'`: `Some(n_hashes)` when a raw string literal opens.
fn raw_str_open(chars: &[char], i: usize) -> Option<u32> {
    let mut j = i + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// At `chars[i] == '"'` inside a raw string with `hashes` hashes: does the
/// literal close here?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Parse `lint:allow(rule-a, rule-b): optional note` out of one comment.
fn harvest(comment: &str, line: usize, standalone: bool, out: &mut Vec<Directive>) {
    let Some(pos) = comment.find("lint:allow(") else {
        return;
    };
    let rest = &comment[pos + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if !rules.is_empty() {
        out.push(Directive {
            line,
            standalone,
            rules,
        });
    }
}

/// Attach directives to the lines they govern: same line for trailing
/// comments, next non-empty line for standalone comment lines.
fn attach_directives(
    n_lines: usize,
    clean: &[String],
    directives: Vec<Directive>,
) -> Vec<BTreeSet<String>> {
    let mut allow = vec![BTreeSet::new(); n_lines];
    for d in directives {
        let target = if d.standalone {
            // First following line with any code on it.
            (d.line + 1..n_lines)
                .find(|&i| !clean[i].trim().is_empty())
                .unwrap_or(d.line)
        } else {
            d.line
        };
        if let Some(set) = allow.get_mut(target) {
            set.extend(d.rules);
        }
    }
    allow
}

/// Mark every line inside a `#[cfg(test)]` item (typically `mod tests`).
///
/// Works on blanked text: find a `#[cfg(test)]` attribute, then mark lines
/// until the brace opened by the attributed item closes again.
fn test_regions(clean: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; clean.len()];
    let mut i = 0;
    while i < clean.len() {
        if clean[i].trim_start().starts_with("#[cfg(test)]") {
            // Scan forward for the opening brace of the attributed item.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            'outer: while j < clean.len() {
                for ch in clean[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                in_test[j] = true;
                                break 'outer;
                            }
                        }
                        ';' if !opened => {
                            // `#[cfg(test)] mod tests;` — out-of-line module.
                            in_test[j] = true;
                            break 'outer;
                        }
                        _ => {}
                    }
                }
                in_test[j] = true;
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "let a = \"thread_rng()\"; // unwrap() in a comment\nlet b = 1;\n",
        );
        assert!(!f.clean[0].contains("thread_rng"));
        assert!(!f.clean[0].contains("unwrap"));
        assert_eq!(f.clean[1], "let b = 1;");
        // Line structure preserved.
        assert_eq!(f.raw.len(), f.clean.len());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = r#\"panic!(\"no\")\"#;\nlet c = '\\''; let lt: &'static str = \"\";\n",
        );
        assert!(!f.clean[0].contains("panic!"));
        assert!(f.clean[1].contains("&'static str"));
    }

    #[test]
    fn cfg_test_region_is_detected() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn more() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false],);
    }

    #[test]
    fn allow_directive_applies_to_own_or_next_line() {
        let src = "a.unwrap(); // lint:allow(no-panic-lib): provably non-empty\n// lint:allow(determinism)\nthread_rng();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed(0, "no-panic-lib"));
        assert!(!f.is_allowed(0, "determinism"));
        assert!(f.is_allowed(2, "determinism"));
    }
}
