//! Diagnostic model for `cargo xtask lint`: rustc-style text rendering,
//! stable fingerprints for the v2 baseline, and JSON serialization for
//! `--format json`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One lint finding at a concrete source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `no-panic-lib`. Used by `// lint:allow(..)`
    /// escapes and by the baseline file.
    pub rule: &'static str,
    /// Short code shown in the header, e.g. `L1`.
    pub code: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Width of the underline (length of the offending token).
    pub len: usize,
    /// Innermost item path containing the finding (`Type::method`,
    /// `mod::fn`), or empty for file-level findings. Part of the
    /// fingerprint, so findings survive line-number churn.
    pub item: String,
    /// One-line description of what was matched.
    pub message: String,
    /// Actionable suggestion appended as a `= help:` note.
    pub help: &'static str,
    /// The original (un-blanked) source line, for display.
    pub snippet: String,
}

impl Diagnostic {
    /// Format like rustc: header, arrow line, gutter, snippet, carets, help.
    pub fn render(&self) -> String {
        let line_no = self.line.to_string();
        let gutter = " ".repeat(line_no.len());
        let mut out = String::new();
        let _ = writeln!(out, "error[{}/{}]: {}", self.code, self.rule, self.message);
        let _ = writeln!(
            out,
            "{gutter}--> {}:{}:{}",
            self.file.display(),
            self.line,
            self.col
        );
        if !self.item.is_empty() {
            let _ = writeln!(out, "{gutter}    (in `{}`)", self.item);
        }
        let _ = writeln!(out, "{gutter} |");
        let _ = writeln!(out, "{line_no} | {}", self.snippet.trim_end());
        let _ = writeln!(
            out,
            "{gutter} | {}{}",
            " ".repeat(self.col.saturating_sub(1)),
            "^".repeat(self.len.max(1))
        );
        let _ = writeln!(out, "{gutter} = help: {}", self.help);
        out
    }

    /// Legacy v1 baseline key: one bucket per (rule, file).
    pub fn baseline_key(&self) -> (String, String) {
        (self.rule.to_string(), self.file.display().to_string())
    }

    /// Offending source line with whitespace runs collapsed — the part of
    /// the fingerprint that survives reformatting.
    pub fn normalized_snippet(&self) -> String {
        let mut out = String::with_capacity(self.snippet.len());
        let mut in_ws = true; // leading whitespace dropped
        for c in self.snippet.chars() {
            if c.is_whitespace() {
                if !in_ws {
                    out.push(' ');
                    in_ws = true;
                }
            } else {
                out.push(c);
                in_ws = false;
            }
        }
        out.trim_end().to_string()
    }

    /// Stable fingerprint: rule + item path + normalized snippet, hashed.
    /// Deliberately excludes file path and line number so pure
    /// rename/move refactors produce zero baseline churn.
    pub fn fingerprint(&self) -> String {
        let mut h = Fnv64::new();
        h.write(self.rule.as_bytes());
        h.write(&[0]);
        h.write(self.item.as_bytes());
        h.write(&[0]);
        h.write(self.normalized_snippet().as_bytes());
        format!("{:016x}", h.finish())
    }

    /// One JSON object for `--format json`; `baselined` marks findings
    /// covered by the fingerprint baseline.
    pub fn to_json(&self, baselined: bool) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"code\":{}", json_str(self.code));
        let _ = write!(s, ",\"rule\":{}", json_str(self.rule));
        let _ = write!(
            s,
            ",\"file\":{}",
            json_str(&self.file.display().to_string())
        );
        let _ = write!(s, ",\"line\":{}", self.line);
        let _ = write!(s, ",\"col\":{}", self.col);
        let _ = write!(s, ",\"item\":{}", json_str(&self.item));
        let _ = write!(s, ",\"message\":{}", json_str(&self.message));
        let _ = write!(s, ",\"help\":{}", json_str(self.help));
        let _ = write!(s, ",\"snippet\":{}", json_str(self.snippet.trim_end()));
        let _ = write!(s, ",\"fingerprint\":{}", json_str(&self.fingerprint()));
        let _ = write!(s, ",\"baselined\":{baselined}");
        s.push('}');
        s
    }
}

/// Minimal JSON string escaping (std-only, no serde in xtask).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// FNV-1a 64-bit — tiny, stable, dependency-free.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Diagnostic {
        Diagnostic {
            rule: "no-panic-lib",
            code: "L1",
            file: PathBuf::from("crates/core/src/lib.rs"),
            line: 42,
            col: 9,
            len: 9,
            item: "Dmd::run".to_string(),
            message: "`.unwrap()` in library code".to_string(),
            help: "propagate the error instead",
            snippet: "        x.unwrap();".to_string(),
        }
    }

    #[test]
    fn render_is_rustc_shaped() {
        let r = d().render();
        assert!(r.contains("error[L1/no-panic-lib]"));
        assert!(r.contains("--> crates/core/src/lib.rs:42:9"));
        assert!(r.contains("(in `Dmd::run`)"));
        assert!(r.contains("42 |         x.unwrap();"));
        assert!(r.contains("^^^^^^^^^"));
        assert!(r.contains("= help:"));
    }

    #[test]
    fn fingerprint_ignores_location_but_not_content() {
        let a = d();
        let mut moved = d();
        moved.file = PathBuf::from("crates/core/src/renamed.rs");
        moved.line = 7;
        moved.col = 3;
        assert_eq!(a.fingerprint(), moved.fingerprint());
        let mut reindented = d();
        reindented.snippet = "x.unwrap();".to_string();
        assert_eq!(a.fingerprint(), reindented.fingerprint());
        let mut other = d();
        other.item = "Dmd::other".to_string();
        assert_ne!(a.fingerprint(), other.fingerprint());
        let mut edited = d();
        edited.snippet = "        y.unwrap();".to_string();
        assert_ne!(a.fingerprint(), edited.fingerprint());
    }

    #[test]
    fn json_escapes_are_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let j = d().to_json(true);
        assert!(j.contains("\"code\":\"L1\""));
        assert!(j.contains("\"baselined\":true"));
        assert!(j.contains("\"fingerprint\":\""));
    }
}
