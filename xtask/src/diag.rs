//! Rustc-style diagnostic rendering for `cargo xtask lint`.
//!
//! Every finding carries a rule id, a workspace-relative location and the
//! offending source line; [`Diagnostic::render`] formats it the way rustc
//! does so editors and humans can jump straight to the site.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One lint finding at a concrete source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `no-panic-lib`. Used by `// lint:allow(..)`
    /// escapes and by the baseline file.
    pub rule: &'static str,
    /// Short code shown in the header, e.g. `L1`.
    pub code: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Width of the underline (length of the offending token).
    pub len: usize,
    /// One-line description of what was matched.
    pub message: String,
    /// Actionable suggestion appended as a `= help:` note.
    pub help: &'static str,
    /// The original (un-blanked) source line, for display.
    pub snippet: String,
}

impl Diagnostic {
    /// Format like rustc: header, arrow line, gutter, snippet, carets, help.
    pub fn render(&self) -> String {
        let line_no = self.line.to_string();
        let gutter = " ".repeat(line_no.len());
        let mut out = String::new();
        let _ = writeln!(out, "error[{}/{}]: {}", self.code, self.rule, self.message);
        let _ = writeln!(
            out,
            "{gutter}--> {}:{}:{}",
            self.file.display(),
            self.line,
            self.col
        );
        let _ = writeln!(out, "{gutter} |");
        let _ = writeln!(out, "{line_no} | {}", self.snippet.trim_end());
        let _ = writeln!(
            out,
            "{gutter} | {}{}",
            " ".repeat(self.col.saturating_sub(1)),
            "^".repeat(self.len.max(1))
        );
        let _ = writeln!(out, "{gutter} = help: {}", self.help);
        out
    }

    /// Key used by the baseline ratchet: one bucket per (rule, file).
    pub fn baseline_key(&self) -> (String, String) {
        (self.rule.to_string(), self.file.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let d = Diagnostic {
            rule: "no-panic-lib",
            code: "L1",
            file: PathBuf::from("crates/core/src/lib.rs"),
            line: 42,
            col: 9,
            len: 9,
            message: "`.unwrap()` in library code".to_string(),
            help: "propagate the error instead",
            snippet: "        x.unwrap();".to_string(),
        };
        let r = d.render();
        assert!(r.contains("error[L1/no-panic-lib]"));
        assert!(r.contains("--> crates/core/src/lib.rs:42:9"));
        assert!(r.contains("42 |         x.unwrap();"));
        assert!(r.contains("^^^^^^^^^"));
        assert!(r.contains("= help:"));
    }
}
