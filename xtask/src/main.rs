//! `cargo xtask` — workspace automation entry point.
//!
//! ```text
//! cargo xtask lint                     # run the static-analysis suite
//! cargo xtask lint --update-baseline   # record current counts as the baseline
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::process::ExitCode;
use xtask::{baseline, run_lint, workspace_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args[1..].iter().any(|a| a == "--update-baseline")),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint [--update-baseline]");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--update-baseline]");
            ExitCode::from(2)
        }
    }
}

fn lint(update_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let baseline_path = root.join("xtask/lint-baseline.txt");

    let diags = match run_lint(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };
    let current = baseline::tally(&diags);

    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&current)) {
            eprintln!("xtask lint: cannot write baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} grandfathered violation(s) across {} bucket(s)",
            current.values().sum::<usize>(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(counts) => counts,
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => baseline::Counts::new(),
    };
    let verdict = baseline::compare(&current, &allowed);

    // Print full diagnostics for every regressed bucket; grandfathered
    // buckets stay quiet so the signal is always "what got worse".
    let mut printed = 0usize;
    for d in &diags {
        let key = d.baseline_key();
        if verdict
            .regressed
            .iter()
            .any(|(r, f, ..)| *r == key.0 && *f == key.1)
        {
            print!("{}", d.render());
            println!();
            printed += 1;
        }
    }
    for (rule, file, have, allowed) in &verdict.regressed {
        eprintln!("error: {rule}: {file}: {have} violation(s), baseline allows {allowed}");
    }
    for (rule, file, have, allowed) in &verdict.stale {
        eprintln!(
            "error: stale baseline: {rule}: {file}: {have} violation(s) left of {allowed} \
             — run `cargo xtask lint --update-baseline` to record the burn-down"
        );
    }

    if verdict.is_clean() {
        let grandfathered = current.values().sum::<usize>();
        println!(
            "xtask lint: clean ({} grandfathered violation(s) remaining in baseline)",
            grandfathered
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} new diagnostic(s), {} regressed bucket(s), {} stale bucket(s)",
            printed,
            verdict.regressed.len(),
            verdict.stale.len()
        );
        ExitCode::FAILURE
    }
}
