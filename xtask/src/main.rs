//! `cargo xtask` — workspace automation entry point.
//!
//! ```text
//! cargo xtask lint                     # run the semantic analysis suite
//! cargo xtask lint --format json       # machine-readable report (schema automodel-lint/v2)
//! cargo xtask lint --update-baseline   # record current findings as the fingerprint baseline
//! cargo xtask lint --explain L10       # rule rationale + violating/fixed example pair
//! ```
//!
//! Exit codes: 0 clean, 1 findings/regressions/stale baseline, 2 usage or
//! I/O error.

use std::fmt::Write as _;
use std::process::ExitCode;
use xtask::diag::{json_str, Diagnostic};
use xtask::sem::rules::{rule_meta, RULES};
use xtask::{baseline, run_lint, workspace_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let rest = &args[1..];
            if let Some(pos) = rest.iter().position(|a| a == "--explain") {
                let Some(code) = rest.get(pos + 1) else {
                    eprintln!("usage: cargo xtask lint --explain <code|rule-id>");
                    return ExitCode::from(2);
                };
                return explain(code);
            }
            let update = rest.iter().any(|a| a == "--update-baseline");
            let json = match rest.iter().position(|a| a == "--format") {
                Some(pos) => match rest.get(pos + 1).map(String::as_str) {
                    Some("json") => true,
                    Some("text") => false,
                    other => {
                        eprintln!(
                            "unknown --format `{}`; available: text, json",
                            other.unwrap_or("")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => false,
            };
            lint(update, json)
        }
        Some(other) => {
            eprintln!(
                "unknown xtask command `{other}`; available: \
                 lint [--update-baseline] [--format json|text] [--explain <code>]"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--update-baseline] [--format json|text] [--explain <code>]");
            ExitCode::from(2)
        }
    }
}

/// `lint --explain`: rationale plus the violating/fixed fixture pair, so
/// the explanation is backed by code the test suite actually runs.
fn explain(key: &str) -> ExitCode {
    let Some(meta) = rule_meta(key) else {
        eprintln!("unknown rule `{key}`; known rules:");
        for r in &RULES {
            eprintln!("  {:4} {:24} {}", r.code, r.id, r.summary);
        }
        return ExitCode::from(2);
    };
    println!("{}/{} — {}\n", meta.code, meta.id, meta.summary);
    println!("{}\n", meta.rationale);
    let dir = workspace_root().join("xtask/tests/fixtures").join(meta.id);
    let mut shown = false;
    for (title, name) in [("violates the rule", "violate.rs"), ("fixed", "fix.rs")] {
        if let Ok(src) = std::fs::read_to_string(dir.join(name)) {
            println!("--- {title} (tests/fixtures/{}/{name}) ---", meta.id);
            // The first line is the harness `//@path` directive.
            for line in src.lines().skip_while(|l| l.starts_with("//@")) {
                println!("    {line}");
            }
            println!();
            shown = true;
        }
    }
    if !shown {
        println!("(no fixture examples on disk for this rule)");
    }
    ExitCode::SUCCESS
}

fn lint(update_baseline: bool, json: bool) -> ExitCode {
    let root = workspace_root();
    let baseline_path = root.join("xtask/lint-baseline.txt");

    let report = match run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        let text = baseline::render_v2(&report.active);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("xtask lint: cannot write baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "baseline updated (v2): {} grandfathered finding(s) across {} fingerprint(s)",
            report.active.len(),
            baseline::tally_v2(&report.active).len()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => baseline::Baseline::empty_v2(),
    };
    if !allowed.v2 && !json {
        eprintln!(
            "note: legacy v1 baseline (per-file keys); run \
             `cargo xtask lint --update-baseline` to migrate to fingerprints"
        );
    }

    let current = if allowed.v2 {
        baseline::tally_v2(&report.active)
    } else {
        baseline::tally_v1(&report.active)
    };
    let verdict = baseline::compare(&current, &allowed.counts);

    // Per-finding baselined flags: within each bucket, the first
    // `allowed` findings count as grandfathered, the rest are new.
    let mut used: std::collections::BTreeMap<(String, String), usize> = Default::default();
    let baselined: Vec<bool> = report
        .active
        .iter()
        .map(|d| {
            let key = if allowed.v2 {
                (d.rule.to_string(), d.fingerprint())
            } else {
                d.baseline_key()
            };
            let cap = allowed.counts.get(&key).copied().unwrap_or(0);
            let seen = used.entry(key).or_insert(0);
            *seen += 1;
            *seen <= cap
        })
        .collect();
    let new_count = baselined.iter().filter(|b| !**b).count();

    if json {
        print!(
            "{}",
            render_json(&report.active, &baselined, &report.suppressed, &verdict)
        );
    } else {
        render_text(&report.active, &baselined, &verdict);
    }

    if verdict.is_clean() {
        if !json {
            println!(
                "xtask lint: clean ({} grandfathered finding(s) remaining in baseline)",
                report.active.len() - new_count
            );
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!(
                "xtask lint: {} new finding(s), {} regressed bucket(s), {} stale bucket(s)",
                new_count,
                verdict.regressed.len(),
                verdict.stale.len()
            );
        }
        ExitCode::FAILURE
    }
}

fn render_text(active: &[Diagnostic], baselined: &[bool], verdict: &baseline::Verdict) {
    for (d, &old) in active.iter().zip(baselined) {
        if !old {
            print!("{}", d.render());
            println!();
        }
    }
    for (rule, key, have, allowed) in &verdict.regressed {
        eprintln!("error: {rule}: {key}: {have} finding(s), baseline allows {allowed}");
    }
    for (rule, key, have, allowed) in &verdict.stale {
        eprintln!(
            "error: stale baseline: {rule}: {key}: {have} finding(s) left of {allowed} \
             — run `cargo xtask lint --update-baseline` to record the burn-down"
        );
    }
}

/// The `automodel-lint/v2` JSON document, hand-rolled (xtask is
/// std-only). Schema documented in DESIGN.md.
fn render_json(
    active: &[Diagnostic],
    baselined: &[bool],
    suppressed: &[Diagnostic],
    verdict: &baseline::Verdict,
) -> String {
    let mut s = String::from("{\n  \"schema\": \"automodel-lint/v2\",\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"code\":{},\"id\":{},\"summary\":{}}}",
            json_str(r.code),
            json_str(r.id),
            json_str(r.summary)
        );
    }
    s.push_str("\n  ],\n  \"findings\": [");
    for (i, (d, &old)) in active.iter().zip(baselined).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    {}", d.to_json(old));
    }
    s.push_str("\n  ],\n  \"suppressed\": [");
    for (i, d) in suppressed.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    {}", d.to_json(false));
    }
    let new_count = baselined.iter().filter(|b| !**b).count();
    let _ = write!(
        s,
        "\n  ],\n  \"summary\": {{\"total\":{},\"new\":{},\"baselined\":{},\"suppressed\":{},\
         \"regressed_buckets\":{},\"stale_buckets\":{},\"clean\":{}}}\n}}\n",
        active.len(),
        new_count,
        active.len() - new_count,
        suppressed.len(),
        verdict.regressed.len(),
        verdict.stale.len(),
        verdict.is_clean()
    );
    s
}
