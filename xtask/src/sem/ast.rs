//! Lightweight typed AST over the flat token stream: enough structure for
//! the semantic rules — functions with bodies and scope paths, impl/trait
//! scopes, `#[cfg(test)]` regions, and struct fields holding locks.
//!
//! This is deliberately not a full Rust grammar. It recognizes item
//! boundaries precisely (delimiters are matched, generics are skipped as
//! balanced `<…>` runs) and leaves expression structure to the rule
//! passes, which walk function-body token ranges with the pair map.

use super::lex::{Kind, Tok};

/// One parsed item of interest.
#[derive(Debug)]
pub enum Item {
    Fn(FnItem),
    Struct(StructItem),
    /// Token range (inclusive) covered by a `#[cfg(test)]` item.
    TestRegion(usize, usize),
}

/// A function (free, method, or trait default) with its body range.
#[derive(Debug)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// Scope-joined path within the file, e.g. `TrialCache::insert`,
    /// `tests::roundtrip`, or just `free_fn`.
    pub path: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub self_ty: Option<String>,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index of the body's closing brace, or of the `;` for
    /// body-less declarations.
    pub sig_end: usize,
    /// `Open`/`Close` token indices of the `{ … }` body, when present.
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` or attributed `#[test]`.
    pub in_test: bool,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
}

impl FnItem {
    pub fn body_range(&self) -> Option<(usize, usize)> {
        self.body
    }
}

/// A struct and the names of its lock-typed fields (`Mutex<…>` or
/// `RwLock<…>`, possibly wrapped in `Arc`/`Option`).
#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    pub lock_fields: Vec<String>,
    pub line: usize,
}

/// Parse the whole token stream into items.
pub fn parse(toks: &[Tok], pair: &[usize]) -> Vec<Item> {
    let mut items = Vec::new();
    walk(
        toks,
        pair,
        0,
        toks.len(),
        &mut Vec::new(),
        false,
        &mut items,
    );
    items
}

/// Build the per-token `#[cfg(test)]` mask from parsed items.
pub fn test_mask(toks: &[Tok], items: &[Item]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    for item in items {
        let (s, e) = match item {
            Item::TestRegion(s, e) => (*s, *e),
            Item::Fn(f) if f.in_test => (f.sig_start, f.sig_end),
            _ => continue,
        };
        for m in mask
            .iter_mut()
            .take(e.min(toks.len().saturating_sub(1)) + 1)
            .skip(s)
        {
            *m = true;
        }
    }
    mask
}

/// One attribute, flattened to its identifier texts (`#[cfg(test)]` →
/// `["cfg", "test"]`, `#[test]` → `["test"]`).
type Attr = Vec<String>;

fn is_cfg_test(attrs: &[Attr]) -> bool {
    attrs
        .iter()
        .any(|a| a.first().is_some_and(|h| h == "cfg") && a.iter().any(|w| w == "test"))
}

fn is_test_attr(attrs: &[Attr]) -> bool {
    attrs.iter().any(|a| a.len() == 1 && a[0] == "test")
}

#[allow(clippy::too_many_arguments)]
fn walk(
    toks: &[Tok],
    pair: &[usize],
    start: usize,
    end: usize,
    scope: &mut Vec<String>,
    in_test: bool,
    out: &mut Vec<Item>,
) {
    let mut i = start;
    let mut attrs: Vec<Attr> = Vec::new();
    while i < end {
        let t = &toks[i];
        // Attribute: `#[…]` or `#![…]`.
        if t.is_punct("#") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_open('[')) {
                let close = pair[j];
                if close != usize::MAX {
                    let flat: Attr = toks[j + 1..close]
                        .iter()
                        .filter(|t| t.kind == Kind::Ident)
                        .map(|t| t.text.clone())
                        .collect();
                    attrs.push(flat);
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                let name = name_tok.text.clone();
                let (body, sig_end) = scan_to_body(toks, pair, i + 2, end);
                let fn_test = in_test || is_test_attr(&attrs) || is_cfg_test(&attrs);
                let mut path = scope.clone();
                path.push(name.clone());
                out.push(Item::Fn(FnItem {
                    name,
                    path: path.join("::"),
                    self_ty: scope.last().cloned(),
                    sig_start: i,
                    sig_end,
                    body,
                    in_test: fn_test,
                    line: t.line,
                }));
                if is_cfg_test(&attrs) && !in_test {
                    out.push(Item::TestRegion(i, sig_end));
                }
                attrs.clear();
                i = sig_end + 1;
            }
            "impl" | "trait" => {
                let is_trait = t.text == "trait";
                let mut j = i + 1;
                // Skip generic parameters.
                if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                    j = skip_angles(toks, j, end);
                }
                // `impl Trait for Type` — the self type follows `for`.
                let mut ty: Option<String> = None;
                let mut after_for = false;
                let mut k = j;
                while k < end {
                    let tk = &toks[k];
                    if tk.is_open('{') {
                        break;
                    }
                    if tk.is_punct(";") {
                        break;
                    }
                    if tk.kind == Kind::Ident {
                        match tk.text.as_str() {
                            "for" => {
                                after_for = true;
                                ty = None;
                            }
                            "dyn" | "mut" | "where" | "Send" | "Sync" | "unsafe" => {}
                            name => {
                                if ty.is_none() || after_for {
                                    ty = Some(name.to_string());
                                    after_for = false;
                                }
                                // Skip this path's generics / segments.
                                if toks.get(k + 1).is_some_and(|t| t.is_punct("<")) {
                                    k = skip_angles(toks, k + 1, end);
                                    continue;
                                }
                            }
                        }
                    }
                    k += 1;
                }
                if k < end && toks[k].is_open('{') {
                    let close = pair[k];
                    let close = if close == usize::MAX { end - 1 } else { close };
                    let region_test = in_test || is_cfg_test(&attrs);
                    if is_cfg_test(&attrs) && !in_test {
                        out.push(Item::TestRegion(i, close));
                    }
                    let label = ty.unwrap_or_else(|| {
                        if is_trait {
                            "trait".to_string()
                        } else {
                            "impl".to_string()
                        }
                    });
                    scope.push(label);
                    walk(toks, pair, k + 1, close, scope, region_test, out);
                    scope.pop();
                    i = close + 1;
                } else {
                    i = k + 1;
                }
                attrs.clear();
            }
            "mod" => {
                let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
                let mut j = i + 2;
                while j < end && !toks[j].is_open('{') && !toks[j].is_punct(";") {
                    j += 1;
                }
                if j < end && toks[j].is_open('{') {
                    let close = pair[j];
                    let close = if close == usize::MAX { end - 1 } else { close };
                    let region_test = in_test || is_cfg_test(&attrs);
                    if is_cfg_test(&attrs) && !in_test {
                        out.push(Item::TestRegion(i, close));
                    }
                    scope.push(name);
                    walk(toks, pair, j + 1, close, scope, region_test, out);
                    scope.pop();
                    i = close + 1;
                } else {
                    if is_cfg_test(&attrs) && !in_test && j < end {
                        out.push(Item::TestRegion(i, j));
                    }
                    i = j + 1;
                }
                attrs.clear();
            }
            "struct" => {
                let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
                let line = t.line;
                let mut j = i + 2;
                // Find the brace-group, tuple parens, or `;` ending the item.
                let mut lock_fields = Vec::new();
                while j < end {
                    if toks[j].is_punct("<") {
                        j = skip_angles(toks, j, end);
                        continue;
                    }
                    if toks[j].is_open('(') || toks[j].is_punct(";") {
                        // Tuple / unit struct: no named fields.
                        if toks[j].is_open('(') && pair[j] != usize::MAX {
                            j = pair[j];
                        }
                        break;
                    }
                    if toks[j].is_open('{') {
                        let close = pair[j];
                        let close = if close == usize::MAX { end - 1 } else { close };
                        lock_fields = struct_lock_fields(toks, pair, j + 1, close);
                        j = close;
                        break;
                    }
                    j += 1;
                }
                if is_cfg_test(&attrs) && !in_test {
                    out.push(Item::TestRegion(i, j.min(end - 1)));
                }
                out.push(Item::Struct(StructItem {
                    name,
                    lock_fields,
                    line,
                }));
                attrs.clear();
                i = j + 1;
            }
            "enum" | "union" => {
                let mut j = i + 1;
                while j < end && !toks[j].is_open('{') && !toks[j].is_punct(";") {
                    if toks[j].is_punct("<") {
                        j = skip_angles(toks, j, end);
                    } else {
                        j += 1;
                    }
                }
                if j < end && toks[j].is_open('{') && pair[j] != usize::MAX {
                    j = pair[j];
                }
                if is_cfg_test(&attrs) && !in_test && j < end {
                    out.push(Item::TestRegion(i, j));
                }
                attrs.clear();
                i = j + 1;
            }
            "use" | "static" | "const" | "type" | "extern" => {
                // Skip to the terminating `;`, hopping over groups.
                let mut j = i + 1;
                while j < end {
                    if toks[j].kind == Kind::Open {
                        let close = pair[j];
                        if toks[j].is_open('{') && toks[j - 1].text != "=" {
                            // `extern "C" { … }` — treat the block as the end.
                        }
                        j = if close == usize::MAX { end } else { close + 1 };
                        if j > 0 && toks.get(j - 1).is_some_and(|t| t.is_close('}')) {
                            // A brace group can terminate `extern` blocks and
                            // `const X: T = { … };` — keep going unless the
                            // next token is not `;`.
                            if !toks.get(j).is_some_and(|t| t.is_punct(";")) {
                                break;
                            }
                        }
                        continue;
                    }
                    if toks[j].is_punct(";") {
                        break;
                    }
                    j += 1;
                }
                attrs.clear();
                i = j + 1;
            }
            "macro_rules" => {
                // `macro_rules! name { … }`.
                let mut j = i + 1;
                while j < end && toks[j].kind != Kind::Open {
                    j += 1;
                }
                if j < end && pair[j] != usize::MAX {
                    j = pair[j];
                }
                attrs.clear();
                i = j + 1;
            }
            _ => {
                // `pub`, `unsafe`, `async`, visibility groups, etc. —
                // modifiers that precede an item keyword; keep attrs.
                if t.is_ident("pub") && toks.get(i + 1).is_some_and(|t| t.is_open('(')) {
                    let close = pair[i + 1];
                    i = if close == usize::MAX {
                        i + 2
                    } else {
                        close + 1
                    };
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Scan from `from` for the item body `{`, skipping `(…)`/`[…]` groups and
/// balanced generics; returns (body range, sig_end). A `;` first means a
/// body-less declaration.
fn scan_to_body(
    toks: &[Tok],
    pair: &[usize],
    from: usize,
    end: usize,
) -> (Option<(usize, usize)>, usize) {
    let mut j = from;
    while j < end {
        let t = &toks[j];
        if t.is_open('{') {
            let close = pair[j];
            let close = if close == usize::MAX { end - 1 } else { close };
            return (Some((j, close)), close);
        }
        if t.is_punct(";") {
            return (None, j);
        }
        if t.kind == Kind::Open {
            let close = pair[j];
            j = if close == usize::MAX {
                j + 1
            } else {
                close + 1
            };
            continue;
        }
        if t.is_punct("<") {
            j = skip_angles(toks, j, end);
            continue;
        }
        j += 1;
    }
    (None, end.saturating_sub(1))
}

/// At `toks[j] == "<"`: index just past the matching `>`. Conservative:
/// stops at `{` or `;` so a stray comparison cannot swallow an item.
fn skip_angles(toks: &[Tok], j: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = j;
    while k < end {
        let t = &toks[k];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        } else if t.is_open('{') || t.is_punct(";") {
            return k;
        }
        k += 1;
    }
    end
}

/// Field names inside a struct body whose type mentions `Mutex`/`RwLock`.
fn struct_lock_fields(toks: &[Tok], pair: &[usize], start: usize, end: usize) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = start;
    while i < end {
        // Field: [attrs] [pub[(…)]] name `:` type `,`?
        while i < end && toks[i].is_punct("#") {
            if toks.get(i + 1).is_some_and(|t| t.is_open('[')) && pair[i + 1] != usize::MAX {
                i = pair[i + 1] + 1;
            } else {
                i += 1;
            }
        }
        if i < end && toks[i].is_ident("pub") {
            i += 1;
            if i < end && toks[i].is_open('(') && pair[i] != usize::MAX {
                i = pair[i] + 1;
            }
        }
        if i >= end || toks[i].kind != Kind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i].text.clone();
        if !toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            i += 1;
            continue;
        }
        // Type tokens run to the next `,` at this depth.
        let mut j = i + 2;
        let mut has_lock = false;
        while j < end {
            let t = &toks[j];
            if t.is_punct(",") {
                break;
            }
            if t.kind == Kind::Open {
                let close = pair[j];
                j = if close == usize::MAX {
                    j + 1
                } else {
                    close + 1
                };
                continue;
            }
            if t.is_ident("Mutex") || t.is_ident("RwLock") {
                has_lock = true;
            }
            j += 1;
        }
        if has_lock {
            fields.push(name);
        }
        i = j + 1;
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::super::source::File;
    use super::*;

    fn fns(src: &str) -> Vec<(String, bool)> {
        let f = File::parse("x.rs", src);
        f.items
            .iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some((f.path.clone(), f.in_test)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn free_and_method_paths() {
        let src =
            "fn a() {}\nimpl Cache { pub fn get(&self) -> u8 { 0 } }\ntrait T { fn d(&self); }\n";
        assert_eq!(
            fns(src),
            vec![
                ("a".to_string(), false),
                ("Cache::get".to_string(), false),
                ("T::d".to_string(), false)
            ]
        );
    }

    #[test]
    fn cfg_test_mod_marks_everything_inside() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { lib(); }\n}\n";
        let f = File::parse("x.rs", src);
        let t_fn = f
            .items
            .iter()
            .find_map(|i| match i {
                Item::Fn(fi) if fi.name == "t" => Some(fi),
                _ => None,
            })
            .unwrap();
        assert!(t_fn.in_test);
        assert_eq!(t_fn.path, "tests::t");
        // The `use super::*` token inside the mod is masked too.
        let use_idx = f.toks.iter().position(|t| t.is_ident("super")).unwrap();
        let mask = test_mask(&f.toks, &f.items);
        assert!(mask[use_idx]);
        // The library fn is not.
        let lib_idx = f.toks.iter().position(|t| t.is_ident("lib")).unwrap();
        assert!(!mask[lib_idx]);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type_name() {
        let src =
            "impl<T: Clone> Iterator for Wrapper<T> { fn next(&mut self) -> Option<T> { None } }";
        assert_eq!(fns(src), vec![("Wrapper::next".to_string(), false)]);
    }

    #[test]
    fn struct_lock_fields_are_detected() {
        let src = "pub struct Tracer {\n    state: Option<Mutex<State>>,\n    name: String,\n    inner: Arc<RwLock<Inner>>,\n}\n";
        let f = File::parse("x.rs", src);
        let s = f
            .items
            .iter()
            .find_map(|i| match i {
                Item::Struct(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(s.name, "Tracer");
        assert_eq!(s.lock_fields, vec!["state", "inner"]);
    }

    #[test]
    fn generic_fn_signatures_do_not_confuse_body_detection() {
        let src = "fn f<F: Fn() -> Vec<u8>>(g: F) -> impl Iterator<Item = u8> where F: Send { g().into_iter() }";
        let f = File::parse("x.rs", src);
        let item = f
            .items
            .iter()
            .find_map(|i| match i {
                Item::Fn(fi) => Some(fi),
                _ => None,
            })
            .unwrap();
        assert!(item.body.is_some());
    }
}
