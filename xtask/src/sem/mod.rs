//! Semantic lint engine: lexer → matched token stream → lightweight AST
//! → per-crate symbol index → rule passes.
//!
//! The pipeline per `cargo xtask lint` run:
//!
//! 1. every workspace source file is lexed and parsed ([`source::File`]);
//! 2. file-scope rules L1–L4, L6–L9, L14–L15 run on each file
//!    ([`rules`]);
//! 3. files are grouped into per-crate indexes with call graphs
//!    ([`index`]) and the crate-scope rules run: L10 determinism-taint
//!    ([`taint`]), L12 contract-conformance ([`contract`]);
//! 4. the workspace-scope L11 lock-order pass runs over all crates at
//!    once ([`locks`]);
//! 5. the pre-suppression finding set feeds the L13 stale-allow audit
//!    ([`allowaudit`]), then `// lint:allow(..)` directives split
//!    findings into active and suppressed.
//!
//! Everything is std-only: xtask must build before any vendored
//! dependency compiles, because it is the tool that lints them.

pub mod allowaudit;
pub mod ast;
pub mod contract;
pub mod index;
pub mod lex;
pub mod locks;
pub mod rules;
pub mod source;
pub mod taint;

use crate::diag::Diagnostic;
use source::File;
use std::collections::BTreeMap;

/// Outcome of a full semantic analysis pass.
pub struct Report {
    /// Findings not covered by a `lint:allow` escape, sorted by
    /// (file, line, col, code).
    pub active: Vec<Diagnostic>,
    /// Findings silenced by a `lint:allow` escape (still rendered in
    /// `--format json` so audits see them).
    pub suppressed: Vec<Diagnostic>,
}

/// Run every semantic rule over the parsed `files`.
pub fn analyze(files: &[File]) -> Report {
    let mut all: Vec<Diagnostic> = Vec::new();
    for f in files {
        all.extend(rules::check_file(f));
    }
    for idx in index::group_by_crate(files) {
        taint::check_crate(&idx, &mut all);
        contract::check_crate(&idx, &mut all);
    }
    locks::check_workspace(files, &mut all);
    // L13 sees the pre-suppression set: a directive currently silencing
    // a finding is live by construction.
    let stale = allowaudit::check(files, &all);
    all.extend(stale);

    let by_path: BTreeMap<String, &File> = files
        .iter()
        .map(|f| (f.path.display().to_string(), f))
        .collect();
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for d in all {
        let allowed = by_path
            .get(&d.file.display().to_string())
            .is_some_and(|f| f.is_allowed_line(d.line - 1, d.rule));
        if allowed {
            suppressed.push(d);
        } else {
            active.push(d);
        }
    }
    let key = |d: &Diagnostic| {
        (
            d.file.display().to_string(),
            d.line,
            d.col,
            d.code,
            d.message.clone(),
        )
    };
    active.sort_by_key(key);
    active.dedup();
    suppressed.sort_by_key(key);
    suppressed.dedup();
    Report { active, suppressed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_splits_active_from_suppressed() {
        let f = File::parse(
            "crates/core/src/x.rs",
            "fn a() { x.unwrap(); }\nfn b() { y.unwrap(); } // lint:allow(no-panic-lib): bounded\n",
        );
        let r = analyze(std::slice::from_ref(&f));
        assert_eq!(r.active.len(), 1, "{:?}", r.active);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.active[0].item, "a");
        assert_eq!(r.suppressed[0].item, "b");
    }

    #[test]
    fn stale_allow_flows_through_the_report() {
        let f = File::parse(
            "crates/core/src/x.rs",
            "fn a() { x.unwrap_or(1); } // lint:allow(no-panic-lib): obsolete\n",
        );
        let r = analyze(std::slice::from_ref(&f));
        assert_eq!(r.active.len(), 1);
        assert_eq!(r.active[0].rule, "stale-allow");
    }

    #[test]
    fn stale_allow_keeper_escape_works() {
        let f = File::parse(
            "crates/core/src/x.rs",
            "fn a() { x.unwrap_or(1); } // lint:allow(no-panic-lib, stale-allow): fixture keeper\n",
        );
        let r = analyze(std::slice::from_ref(&f));
        assert!(r.active.is_empty(), "{:?}", r.active);
    }
}
