//! L10 — `determinism-taint`: intraprocedural dataflow plus call-graph
//! propagation from nondeterminism *sources* to determinism-critical
//! *sinks*.
//!
//! **Sources** (values derived from them are tainted):
//! * iteration over a `HashMap`/`HashSet`-typed local or parameter
//!   (`.iter()`, `.keys()`, `.values()`, `.into_iter()`, `.drain()`,
//!   or a `for … in` over the collection);
//! * `Instant::now()` / `SystemTime::now()` — except inside `clock.rs`
//!   files, the sanctioned `Clock` implementations;
//! * `thread::current()` (thread ids);
//! * pointer-to-usize casts (`x.as_ptr() as usize`, `&x as *const _ as
//!   usize`) — addresses vary per run;
//! * `env::var` / `env::var_os` / `env::vars` outside `from_env` /
//!   `*_from_env` constructors, the sanctioned configuration boundary.
//!
//! **Sinks** (a tainted value arriving here is a finding):
//! * trial scores: arguments of `from_score(..)`;
//! * RNG seeds: arguments of `seed_from_u64(..)` / `seed_stream(..)`;
//! * trace events: arguments of `.emit(..)` / `.emit_all(..)` and of
//!   `TraceEvent::…(..)` constructors;
//! * cache keys: the receiver of `.cache_key(..)` and the arguments of
//!   `.insert(..)` / `.get(..)` on a `*cache*`-named receiver.
//!
//! Taint moves through `let` bindings, assignments (including compound
//! `+=`-style), `for` patterns, and — via a crate-level fixpoint —
//! through calls to crate-local functions that return tainted values.
//! The analysis is name-based and over-approximate by design; a justified
//! false positive is silenced with `// lint:allow(determinism-taint)` and
//! kept honest by the L13 stale-allow audit.

use super::ast::FnItem;
use super::index::CrateIndex;
use super::lex::Kind;
use super::rules::diag_at;
use super::source::File;
use crate::diag::Diagnostic;
use std::collections::BTreeSet;

const HELP: &str = "derive the value from seeded, ordered state (BTreeMap, explicit seeds, \
                    the injected Clock), or append \
                    `// lint:allow(determinism-taint): <why the value is deterministic>`";

/// Run L10 over one crate.
pub fn check_crate(idx: &CrateIndex<'_>, out: &mut Vec<Diagnostic>) {
    if idx.name == "xtask" {
        // The lint tool itself is not part of the runtime determinism
        // contract (and deliberately reads the environment).
        return;
    }
    // Crate fixpoint: which functions return tainted values?
    let mut taint_fns: BTreeSet<String> = BTreeSet::new();
    for _ in 0..10 {
        let mut changed = false;
        for f in &idx.fns {
            let file = idx.files[f.file];
            if f.item.in_test || f.item.body.is_none() {
                continue;
            }
            let a = analyze_fn(file, f.item, &taint_fns);
            if a.returns_taint && taint_fns.insert(f.item.name.clone()) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final pass: report sink hits.
    for f in &idx.fns {
        let file = idx.files[f.file];
        if f.item.in_test || f.item.body.is_none() {
            continue;
        }
        let a = analyze_fn(file, f.item, &taint_fns);
        for (tok, what) in a.sink_hits {
            out.push(diag_at(
                file,
                tok,
                "determinism-taint",
                "L10",
                format!("nondeterministic value flows into {what}"),
                HELP,
            ));
        }
    }
}

struct FnTaint {
    returns_taint: bool,
    sink_hits: Vec<(usize, &'static str)>,
}

/// Is this function a sanctioned environment-reading constructor?
fn env_sanctioned(f: &FnItem) -> bool {
    f.name == "from_env" || f.name.ends_with("_from_env")
}

fn analyze_fn(file: &File, f: &FnItem, taint_fns: &BTreeSet<String>) -> FnTaint {
    let (body_open, body_close) = f.body.expect("caller checked body");
    let toks = &file.toks;

    // --- Hash-typed names: parameters and locals. -----------------------
    let mut hashed: BTreeSet<String> = BTreeSet::new();
    // Parameters: chunks of the signature's paren group, split on `,`.
    if let Some(params_open) = (f.sig_start..body_open).find(|&i| toks[i].is_open('(')) {
        let params_close = file.pair[params_open];
        if params_close != usize::MAX {
            let mut chunk_start = params_open + 1;
            let mut i = params_open + 1;
            while i <= params_close {
                let at_end = i == params_close;
                if at_end || (toks[i].is_punct(",") && file.pair[i] == usize::MAX) {
                    if chunk_has_hash_type(file, chunk_start, i) {
                        if let Some(name) = first_binding_ident(file, chunk_start, i) {
                            hashed.insert(name);
                        }
                    }
                    chunk_start = i + 1;
                }
                if toks[i].kind == Kind::Open && file.pair[i] != usize::MAX {
                    i = file.pair[i] + 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Locals: `let name … = …` where the type or initializer mentions
    // HashMap/HashSet.
    let mut i = body_open + 1;
    while i < body_close {
        if toks[i].is_ident("let") {
            let (pat_end, stmt_end) = let_shape(file, i, body_close);
            if chunk_has_hash_type(file, i + 1, stmt_end) {
                if let Some(name) = first_binding_ident(file, i + 1, pat_end) {
                    hashed.insert(name);
                }
            }
            i = pat_end.max(i + 1);
        } else {
            i += 1;
        }
    }

    // --- Taint propagation to fixpoint. ---------------------------------
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    for _ in 0..6 {
        let mut changed = false;
        let mut i = body_open + 1;
        while i < body_close {
            let t = &toks[i];
            if t.is_ident("let") {
                let (pat_end, stmt_end) = let_shape(file, i, body_close);
                let rhs_start = pat_end + 1; // token after `=`
                if pat_end < stmt_end
                    && range_tainted(file, rhs_start, stmt_end, &tainted, &hashed, taint_fns, f)
                {
                    for name in binding_idents(file, i + 1, pat_end) {
                        changed |= tainted.insert(name);
                    }
                }
                i = stmt_end + 1;
                continue;
            }
            if t.is_ident("for") {
                // `for PAT in EXPR {` — bind PAT when EXPR is tainted or
                // iterates a hash collection.
                if let Some(in_idx) = (i + 1..body_close).find(|&j| toks[j].is_ident("in")) {
                    let block = (in_idx + 1..body_close)
                        .find(|&j| toks[j].is_open('{'))
                        .unwrap_or(body_close);
                    let expr_hash = (in_idx + 1..block)
                        .any(|j| toks[j].kind == Kind::Ident && hashed.contains(&toks[j].text));
                    if expr_hash
                        || range_tainted(file, in_idx + 1, block, &tainted, &hashed, taint_fns, f)
                    {
                        for name in binding_idents(file, i + 1, in_idx) {
                            changed |= tainted.insert(name);
                        }
                    }
                    i = block + 1;
                    continue;
                }
            }
            // Assignment: `name =` / `name +=` (lexed as `+` `=`).
            if t.kind == Kind::Ident && !tainted.contains(&t.text) {
                let mut j = i + 1;
                if toks
                    .get(j)
                    .is_some_and(|p| p.kind == Kind::Punct && "+-*/%&|^".contains(&p.text))
                {
                    j += 1;
                }
                let is_assign = toks.get(j).is_some_and(|p| p.is_punct("="))
                    && !toks.get(j + 1).is_some_and(|p| p.is_punct("="))
                    && !toks.get(i + 1).is_some_and(|p| {
                        p.is_punct("=") && toks.get(i + 2).is_some_and(|q| q.is_punct("="))
                    });
                if is_assign {
                    let stmt_end = stmt_end_from(file, j + 1, body_close);
                    if range_tainted(file, j + 1, stmt_end, &tainted, &hashed, taint_fns, f) {
                        changed |= tainted.insert(t.text.clone());
                    }
                    i = stmt_end + 1;
                    continue;
                }
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }

    // --- Sinks. ---------------------------------------------------------
    let mut sink_hits = Vec::new();
    let mut push_hit = |tok: usize, what: &'static str| {
        sink_hits.push((tok, what));
    };
    let mut i = body_open + 1;
    while i < body_close {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        let call_open = i + 1;
        let is_call = toks.get(call_open).is_some_and(|n| n.is_open('('));
        if is_call && file.pair[call_open] != usize::MAX {
            let close = file.pair[call_open];
            let args_hot = |hits: &mut dyn FnMut(usize, &'static str), what: &'static str| {
                if range_tainted(file, call_open + 1, close, &tainted, &hashed, taint_fns, f)
                    || range_has_source(file, call_open + 1, close, &hashed, f).is_some()
                {
                    hits(i, what);
                }
            };
            match t.text.as_str() {
                "from_score" => args_hot(&mut push_hit, "a trial score"),
                "seed_from_u64" | "seed_stream" => args_hot(&mut push_hit, "an RNG seed"),
                "emit" | "emit_all" => args_hot(&mut push_hit, "a trace event"),
                "insert" | "get" => {
                    // Cache-key sink: receiver named like a cache.
                    let recv_is_cache = i >= 2
                        && toks[i - 1].is_punct(".")
                        && toks[i - 2].kind == Kind::Ident
                        && toks[i - 2].text.to_lowercase().contains("cache");
                    if recv_is_cache {
                        args_hot(&mut push_hit, "a cache key");
                    }
                }
                "cache_key" => {
                    // Receiver taint: `tainted_cfg.cache_key(..)`.
                    let recv_tainted = i >= 2
                        && toks[i - 1].is_punct(".")
                        && toks[i - 2].kind == Kind::Ident
                        && tainted.contains(&toks[i - 2].text);
                    if recv_tainted {
                        push_hit(i, "a cache key");
                    }
                }
                _ => {}
            }
            // TraceEvent::ctor(..) — constructor args are trace payloads.
            if i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("TraceEvent")
                && (range_tainted(file, call_open + 1, close, &tainted, &hashed, taint_fns, f)
                    || range_has_source(file, call_open + 1, close, &hashed, f).is_some())
            {
                push_hit(i, "a trace event");
            }
        }
        i += 1;
    }

    // --- Return taint. ---------------------------------------------------
    let mut returns_taint = false;
    let mut i = body_open + 1;
    while i < body_close {
        if toks[i].is_ident("return") {
            let stmt_end = stmt_end_from(file, i + 1, body_close);
            if range_tainted(file, i + 1, stmt_end, &tainted, &hashed, taint_fns, f) {
                returns_taint = true;
            }
            i = stmt_end + 1;
        } else {
            i += 1;
        }
    }
    // Tail expression: after the last top-level `;` (or `{`…`}` block end).
    let mut last_semi = body_open;
    let mut i = body_open + 1;
    while i < body_close {
        if toks[i].kind == Kind::Open && file.pair[i] != usize::MAX {
            i = file.pair[i] + 1;
            continue;
        }
        if toks[i].is_punct(";") {
            last_semi = i;
        }
        i += 1;
    }
    if last_semi + 1 < body_close
        && range_tainted(
            file,
            last_semi + 1,
            body_close,
            &tainted,
            &hashed,
            taint_fns,
            f,
        )
    {
        returns_taint = true;
    }

    FnTaint {
        returns_taint,
        sink_hits,
    }
}

/// Does any token in `[start, end)` taint the expression? (tainted ident,
/// direct nondeterminism source, or call to a taint-returning fn.)
fn range_tainted(
    file: &File,
    start: usize,
    end: usize,
    tainted: &BTreeSet<String>,
    hashed: &BTreeSet<String>,
    taint_fns: &BTreeSet<String>,
    f: &FnItem,
) -> bool {
    let toks = &file.toks;
    for j in start..end.min(toks.len()) {
        let t = &toks[j];
        if t.kind != Kind::Ident {
            continue;
        }
        if tainted.contains(&t.text) {
            return true;
        }
        if taint_fns.contains(&t.text) && toks.get(j + 1).is_some_and(|n| n.is_open('(')) {
            return true;
        }
    }
    range_has_source(file, start, end, hashed, f).is_some()
}

/// First direct nondeterminism source in `[start, end)`.
fn range_has_source(
    file: &File,
    start: usize,
    end: usize,
    hashed: &BTreeSet<String>,
    f: &FnItem,
) -> Option<usize> {
    let toks = &file.toks;
    let in_clock_file = file.path_str().ends_with("clock.rs");
    let end = end.min(toks.len());
    for j in start..end {
        let t = &toks[j];
        if t.kind != Kind::Ident {
            continue;
        }
        // Instant::now() / SystemTime::now() — except the Clock impls.
        if !in_clock_file
            && (t.text == "Instant" || t.text == "SystemTime")
            && toks.get(j + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(j + 2).is_some_and(|n| n.is_ident("now"))
        {
            return Some(j);
        }
        // thread::current()
        if t.text == "thread"
            && toks.get(j + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(j + 2).is_some_and(|n| n.is_ident("current"))
        {
            return Some(j);
        }
        // env reads outside sanctioned constructors.
        if t.text == "env"
            && toks.get(j + 1).is_some_and(|n| n.is_punct("::"))
            && toks
                .get(j + 2)
                .is_some_and(|n| matches!(n.text.as_str(), "var" | "var_os" | "vars"))
            && !env_sanctioned(f)
        {
            return Some(j);
        }
        // Hash iteration on a known hash-typed binding.
        if hashed.contains(&t.text)
            && toks.get(j + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(j + 2).is_some_and(|n| {
                matches!(
                    n.text.as_str(),
                    "iter" | "iter_mut" | "keys" | "values" | "values_mut" | "into_iter" | "drain"
                )
            })
            && toks.get(j + 3).is_some_and(|n| n.is_open('('))
        {
            return Some(j);
        }
        // Pointer-to-usize cast.
        if t.text == "as" && toks.get(j + 1).is_some_and(|n| n.is_ident("usize")) {
            let window = &toks[start..j];
            let has_ptr = window.windows(2).any(|w| {
                (w[0].is_ident("as_ptr") && w[1].is_open('('))
                    || (w[0].is_ident("as") && w[1].is_punct("*"))
            });
            if has_ptr {
                return Some(j);
            }
        }
    }
    None
}

/// Does a parameter/let chunk mention a hash collection type or ctor?
fn chunk_has_hash_type(file: &File, start: usize, end: usize) -> bool {
    file.toks[start..end.min(file.toks.len())]
        .iter()
        .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
}

/// First bound identifier in a pattern range (skips `mut`, `ref`, `&`).
fn first_binding_ident(file: &File, start: usize, end: usize) -> Option<String> {
    binding_idents(file, start, end).into_iter().next()
}

/// All bound identifiers in a pattern range: idents that are not keywords
/// and not type names (heuristic: stop collecting after `:` outside
/// groups, resume at `,`).
fn binding_idents(file: &File, start: usize, end: usize) -> Vec<String> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut in_type = false;
    for j in start..end.min(toks.len()) {
        let t = &toks[j];
        if t.is_punct(":") && !toks.get(j + 1).is_some_and(|n| n.is_punct(":")) {
            in_type = true;
            continue;
        }
        if t.is_punct(",") {
            in_type = false;
            continue;
        }
        if in_type || t.kind != Kind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "mut" | "ref" | "let" | "_") {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

/// For a `let` at token `i`: (index of the `=` that starts the
/// initializer — or the `;` when there is none, statement-ending `;`).
fn let_shape(file: &File, i: usize, limit: usize) -> (usize, usize) {
    let toks = &file.toks;
    let mut j = i + 1;
    let mut eq = usize::MAX;
    while j < limit {
        let t = &toks[j];
        if t.kind == Kind::Open && file.pair[j] != usize::MAX {
            j = file.pair[j] + 1;
            continue;
        }
        if eq == usize::MAX
            && t.is_punct("=")
            && !toks.get(j + 1).is_some_and(|n| n.is_punct("="))
            && !toks[j.saturating_sub(1)].is_punct("=")
            && !toks[j.saturating_sub(1)].is_punct("<")
            && !toks[j.saturating_sub(1)].is_punct(">")
            && !toks[j.saturating_sub(1)].is_punct("!")
        {
            eq = j;
        }
        if t.is_punct(";") {
            return (if eq == usize::MAX { j } else { eq }, j);
        }
        j += 1;
    }
    (if eq == usize::MAX { limit } else { eq }, limit)
}

/// End (`;` token) of a statement starting at `from`, group-aware.
fn stmt_end_from(file: &File, from: usize, limit: usize) -> usize {
    let toks = &file.toks;
    let mut j = from;
    while j < limit {
        if toks[j].kind == Kind::Open && file.pair[j] != usize::MAX {
            j = file.pair[j] + 1;
            continue;
        }
        if toks[j].is_punct(";") {
            return j;
        }
        j += 1;
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::index::CrateIndex;

    fn taint_findings(src: &str) -> Vec<String> {
        let f = File::parse("crates/hpo/src/x.rs", src);
        let idx = CrateIndex::build("crates/hpo".into(), vec![&f]);
        let mut out = Vec::new();
        check_crate(&idx, &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn hash_iteration_into_score_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   pub fn score(m: &HashMap<String, f64>) -> TrialOutcome {\n\
                       let mut total = 0.0;\n\
                       for (_k, v) in m.iter() { total += v; }\n\
                       TrialOutcome::from_score(total)\n\
                   }\n";
        let msgs = taint_findings(src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("trial score"));
    }

    #[test]
    fn btree_iteration_is_clean() {
        let src = "use std::collections::BTreeMap;\n\
                   pub fn score(m: &BTreeMap<String, f64>) -> TrialOutcome {\n\
                       let mut total = 0.0;\n\
                       for (_k, v) in m.iter() { total += v; }\n\
                       TrialOutcome::from_score(total)\n\
                   }\n";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn clock_into_seed_is_flagged_and_propagates_through_calls() {
        let src =
            "fn wall_nanos() -> u64 { let t = Instant::now(); t.elapsed().as_nanos() as u64 }\n\
                   pub fn seed_it() -> u64 { let s = wall_nanos(); seed_stream(s, 0, 0) }\n";
        let msgs = taint_findings(src);
        assert!(msgs.iter().any(|m| m.contains("RNG seed")), "{msgs:?}");
    }

    #[test]
    fn parameter_seed_is_clean() {
        let src = "pub fn seed_it(seed: u64, index: u64) -> u64 { seed_stream(seed, index, 0) }\n";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn pointer_address_into_trace_event_is_flagged() {
        let src = "pub fn note(tracer: &Tracer, v: &[f64]) {\n\
                       let tag = v.as_ptr() as usize as u64;\n\
                       tracer.emit(TraceEvent::stage_start(format!(\"{}\", tag)));\n\
                   }\n";
        let msgs = taint_findings(src);
        assert!(!msgs.is_empty());
        assert!(msgs[0].contains("trace event"));
    }

    #[test]
    fn env_read_is_sanctioned_only_in_from_env() {
        let flagged = "pub fn cap() -> u64 { let v = std::env::var(\"X\").ok(); let n = 3; seed_stream(n, 0, 0) }";
        // env read taints `v`, but v never reaches a sink — clean.
        assert!(taint_findings(flagged).is_empty());
        let hot =
            "pub fn cap() -> u64 { let v: u64 = parse(std::env::var(\"X\")); seed_from_u64(v) }";
        assert!(!taint_findings(hot).is_empty());
        let sanctioned =
            "pub fn policy_from_env() -> u64 { let v: u64 = parse(std::env::var(\"X\")); seed_from_u64(v) }";
        assert!(taint_findings(sanctioned).is_empty());
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m: HashMap<u8, u8> = HashMap::new(); let s: u64 = m.iter().count() as u64; seed_from_u64(s); }\n}";
        assert!(taint_findings(src).is_empty());
    }
}
