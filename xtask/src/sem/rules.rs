//! File-scope rules (L1–L4, L6–L9, L14–L16) ported onto the token
//! stream, plus the metadata table for every rule the engine knows
//! (L1–L16).
//!
//! | code | rule id                 | scope                                     |
//! |------|-------------------------|-------------------------------------------|
//! | L1   | `no-panic-lib`          | library code of the seven product crates  |
//! | L2   | `determinism`           | every workspace source file               |
//! | L3   | `ordered-iteration`     | the five ordering-sensitive modules       |
//! | L4   | `nan-ordering`          | every workspace source file               |
//! | L5   | `manifest-hygiene`      | `Cargo.toml` files ([`crate::manifest`])  |
//! | L6   | `no-adhoc-threads`      | everything outside `crates/parallel/`     |
//! | L7   | `no-adhoc-catch-unwind` | everything outside `crates/parallel/`     |
//! | L8   | `no-adhoc-memo`         | everything outside `crates/parallel/`     |
//! | L9   | `no-adhoc-print`        | library code (bins/tests/examples exempt) |
//! | L10  | `determinism-taint`     | crate-level dataflow ([`super::taint`])   |
//! | L11  | `lock-order`            | crate-level lock graph ([`super::locks`]) |
//! | L12  | `contract-conformance`  | optimizer/executor surface ([`super::contract`]) |
//! | L13  | `stale-allow`           | every `lint:allow` escape ([`super::allowaudit`]) |
//! | L14  | `no-adhoc-persistence`  | crate library code outside `crates/store/`  |
//! | L15  | `durable-write`         | inside `crates/store/` and `crates/trace/`  |
//! | L16  | `no-adhoc-io`           | crate library code outside `crates/serve/src/transport.rs` |
//!
//! Matching happens on lexed tokens, so string literals and comments are
//! structurally incapable of producing findings. Each hit can be
//! suppressed with `// lint:allow(rule-id): justification` on the same or
//! preceding line.

use super::lex::Kind;
use super::source::File;
use crate::diag::Diagnostic;

/// Crates whose `src/` trees count as library code for `no-panic-lib`.
pub const PANIC_FREE_CRATES: [&str; 9] = [
    "core",
    "knowledge",
    "hpo",
    "ml",
    "nn",
    "data",
    "parallel",
    "store",
    "serve",
];

/// Modules where iteration order is observable in outputs (serialized
/// artifacts, reports, GA populations) and hash iteration is banned.
pub const ORDER_SENSITIVE_MODULES: [&str; 5] = [
    "crates/knowledge/src/graph.rs",
    "crates/knowledge/src/acquisition.rs",
    "crates/core/src/dmd.rs",
    "crates/hpo/src/ga.rs",
    "crates/bench/src/report.rs",
];

/// Static description of one rule, shared by `--explain`, the JSON
/// report's rule table, and the fixture harness.
pub struct RuleMeta {
    pub code: &'static str,
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Rationale paragraph printed by `--explain`.
    pub rationale: &'static str,
}

/// Every rule the engine knows, in code order.
pub const RULES: [RuleMeta; 16] = [
    RuleMeta {
        code: "L1",
        id: "no-panic-lib",
        summary: "no unwrap/expect/panic! family in product-crate library code",
        rationale: "A panic in library code tears down the whole search instead of joining the \
                    TrialOutcome fault taxonomy. Library functions return Results; the single \
                    sanctioned catch_unwind in crates/parallel converts residual panics into \
                    contained, retryable, quarantinable trial failures.",
    },
    RuleMeta {
        code: "L2",
        id: "determinism",
        summary: "no ambient or time-derived randomness anywhere",
        rationale: "Byte-identical replay is the repo's core contract. thread_rng, rand::random, \
                    from_entropy, RandomState hashing and clock-derived seeds all smuggle \
                    process-local entropy into results; every RNG must be seeded from a \
                    caller-provided value threaded through the call chain.",
    },
    RuleMeta {
        code: "L3",
        id: "ordered-iteration",
        summary: "no HashMap/HashSet in ordering-sensitive modules",
        rationale: "In modules whose outputs are serialized or compared byte-for-byte (graph \
                    closure, acquisition, DMD, GA populations, reports), hash iteration order \
                    would leak into artifacts. BTreeMap/BTreeSet give a canonical order for free.",
    },
    RuleMeta {
        code: "L4",
        id: "nan-ordering",
        summary: "float orderings must not unwrap partial_cmp",
        rationale: "partial_cmp(..).unwrap() panics the moment a NaN reaches a sort — exactly \
                    when a numeric bug needs containment, the comparator kills the process. \
                    f64::total_cmp (or automodel_invariant::f64_key) is total and deterministic.",
    },
    RuleMeta {
        code: "L5",
        id: "manifest-hygiene",
        summary: "workspace manifests stay canonical (MSRV, lint wall, dep table)",
        rationale: "Every member inherits rust-version and the [workspace.lints] wall; every \
                    third-party name resolves through [workspace.dependencies]; no dead table \
                    entries. Keeps the vendored, offline build reproducible.",
    },
    RuleMeta {
        code: "L6",
        id: "no-adhoc-threads",
        summary: "no hand-rolled worker pools outside crates/parallel",
        rationale: "Results must be byte-identical at any thread count. The shared Executor's \
                    index-ordered claims and ordered reduction guarantee that; an ad-hoc \
                    thread::spawn or crossbeam::scope pool reintroduces scheduling order into \
                    results.",
    },
    RuleMeta {
        code: "L7",
        id: "no-adhoc-catch-unwind",
        summary: "panic containment only via automodel_parallel::contain",
        rationale: "Scattered catch_unwind sites each invent their own failure story and lose \
                    the TrialOutcome taxonomy, retry budget and quarantine. One containment \
                    point keeps fault handling observable and replayable.",
    },
    RuleMeta {
        code: "L8",
        id: "no-adhoc-memo",
        summary: "no Config-keyed maps outside crates/parallel",
        rationale: "A map keyed on Config re-invents the trial cache without canonical NaN/-0.0 \
                    handling, inactive-parameter filtering, capacity bounds or telemetry. All \
                    memoization goes through TrialCache keyed by the canonical fingerprint.",
    },
    RuleMeta {
        code: "L9",
        id: "no-adhoc-print",
        summary: "no bare println!/eprintln! in library code",
        rationale: "Output that bypasses the Tracer escapes capture, cannot be replayed and is \
                    invisible to trace summaries. Narration is a TraceEvent; ProgressSink is \
                    the one sanctioned stderr writer.",
    },
    RuleMeta {
        code: "L10",
        id: "determinism-taint",
        summary: "no nondeterministic value may reach scores, seeds, traces or cache keys",
        rationale: "Regex can ban thread_rng; it cannot see a HashMap iteration sum flowing \
                    into TrialOutcome::from_score three lines later. This rule runs an \
                    intraprocedural dataflow with call-graph propagation: values derived from \
                    hash iteration, Instant/SystemTime, thread IDs, pointer addresses or \
                    unsanctioned env reads are tainted, and a tainted value reaching a trial \
                    score, RNG seed, trace event or cache key is an error — the determinism \
                    contract would silently break.",
    },
    RuleMeta {
        code: "L11",
        id: "lock-order",
        summary: "workspace lock acquisition graph stays acyclic; no lock across a trial",
        rationale: "TrialCache, Tracer, SharedBudget and sink buffers each hold a lock. A cycle \
                    in the acquisition order deadlocks under contention the moment the serving \
                    layer runs concurrent sessions; a lock held across run_trial/contain \
                    serializes evaluation and can deadlock against the executor. The rule \
                    builds the acquired-while-held graph (including through crate-local calls) \
                    and fails on cycles and on evaluation calls inside a guard's extent.",
    },
    RuleMeta {
        code: "L12",
        id: "contract-conformance",
        summary: "optimizers expose with_policy/with_cache/with_tracer; executor work routes through run_trial",
        rationale: "Every optimizer must accept the shared fault policy, trial cache and tracer \
                    or the reliability substrate silently loses coverage as new optimizers \
                    land. Likewise an executor map whose closure evaluates Configs without \
                    run_trial bypasses containment, retries, quarantine, caching and tracing \
                    in one stroke.",
    },
    RuleMeta {
        code: "L13",
        id: "stale-allow",
        summary: "every lint:allow escape must still suppress a live finding",
        rationale: "An allow whose rule no longer fires is a hole in the lint wall waiting for \
                    new code to hide in, and it misrepresents the audit state of the file. \
                    Stale escapes must be deleted; the baseline stays honest.",
    },
    RuleMeta {
        code: "L14",
        id: "no-adhoc-persistence",
        summary: "no ad-hoc file writes in crate library code outside crates/store",
        rationale: "Artifacts persisted through scattered fs::write/File::create sites have no \
                    magic, no format version, no integrity digests and no typed decode errors — \
                    a truncated or bit-rotted file round-trips as garbage. crates/store is the \
                    one sanctioned persistence layer: StoreArtifact::save/load carries every \
                    durable byte through the versioned, digest-verified AMSTORE container. \
                    Binaries, tests and the xtask tooling keep their writes (reports, goldens, \
                    fixtures are not model artifacts).",
    },
    RuleMeta {
        code: "L15",
        id: "durable-write",
        summary: "store/trace crate writes go through the VFS durability layer",
        rationale: "crates/store promises crash safety: every persisted byte is fsynced and \
                    lands via write-temp + rename, so a reader sees old bytes or new bytes, \
                    never a torn file — and the same VFS is where seeded IO faults inject. \
                    A raw fs::write/File::create inside the store (or the trace sinks that \
                    share its durability story) silently opts out of fsync, atomicity, \
                    bounded retry and fault coverage in the exact code that promises them. \
                    Route writes through vfs::atomic_write (or Vfs::write for a primitive).",
    },
    RuleMeta {
        code: "L16",
        id: "no-adhoc-io",
        summary: "raw socket/stdin access confined to crates/serve/src/transport.rs",
        rationale: "Every byte that enters the long-running service crosses a trust boundary: \
                    it must be length-capped, parsed into the typed session protocol and \
                    answered with a typed error — never a panic — and the serve oracle drives \
                    exactly that seam. A TcpListener::bind, TcpStream::connect or stdin read \
                    scattered elsewhere in library code is an unaudited ingress that bypasses \
                    the protocol validation pipeline, the per-session budget ceiling and the \
                    round-robin admission gate. crates/serve/src/transport.rs is the one \
                    sanctioned raw-I/O site; binaries, tests and benches keep their sockets \
                    (harnesses and drills are the clients, not the service).",
    },
];

/// Look up rule metadata by code (`L10`) or id (`determinism-taint`).
pub fn rule_meta(key: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|r| r.code == key || r.id == key)
}

/// Run every file-scope rule applicable to `file`. Findings are
/// pre-suppression; the engine applies `lint:allow` afterwards so the
/// stale-allow audit can see what a directive actually suppressed.
pub fn check_file(file: &File) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    no_panic_lib(file, &mut out);
    determinism(file, &mut out);
    ordered_iteration(file, &mut out);
    nan_ordering(file, &mut out);
    no_adhoc_threads(file, &mut out);
    no_adhoc_catch_unwind(file, &mut out);
    no_adhoc_memo(file, &mut out);
    no_adhoc_print(file, &mut out);
    no_adhoc_persistence(file, &mut out);
    durable_write(file, &mut out);
    no_adhoc_io(file, &mut out);
    out
}

/// Build a diagnostic anchored at token `i`.
pub fn diag_at(
    file: &File,
    i: usize,
    rule: &'static str,
    code: &'static str,
    message: String,
    help: &'static str,
) -> Diagnostic {
    let t = &file.toks[i];
    Diagnostic {
        rule,
        code,
        file: file.path.clone(),
        line: t.line + 1,
        col: t.col + 1,
        len: t.text.len(),
        item: file.item_path_of(i),
        message,
        help,
        snippet: file.raw.get(t.line).cloned().unwrap_or_default(),
    }
}

fn is_panic_free_lib(file: &File) -> bool {
    let p = file.path_str();
    PANIC_FREE_CRATES
        .iter()
        .any(|c| p.starts_with(&format!("crates/{c}/src/")))
}

/// L1 — `no-panic-lib`.
fn no_panic_lib(file: &File, out: &mut Vec<Diagnostic>) {
    if !is_panic_free_lib(file) {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // `.unwrap()` — empty argument list required.
        if t.text == "unwrap"
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_open('('))
            && file.pair[i + 1] == i + 2
        {
            out.push(diag_at(
                file,
                i,
                "no-panic-lib",
                "L1",
                "`.unwrap()` in library code".to_string(),
                HELP_L1,
            ));
            continue;
        }
        // `.expect(..)` — exact method name, so expect_err never matches.
        if t.text == "expect"
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_open('('))
        {
            out.push(diag_at(
                file,
                i,
                "no-panic-lib",
                "L1",
                "`.expect(..)` in library code".to_string(),
                HELP_L1,
            ));
            continue;
        }
        // Panic-family macros (path-qualified `core::panic!` still ends
        // with the same ident + `!`).
        if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(diag_at(
                file,
                i,
                "no-panic-lib",
                "L1",
                format!("`{}!` in library code", t.text),
                HELP_L1,
            ));
        }
    }
}

const HELP_L1: &str = "return a Result (see each crate's error type), or append \
                       `// lint:allow(no-panic-lib): <why it cannot fire>`";

/// L2 — `determinism`.
fn determinism(file: &File, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        let next_is_call = toks.get(i + 1).is_some_and(|n| n.is_open('('));
        let msg: Option<&str> = if t.text == "thread_rng" && next_is_call {
            Some("ambient RNG (`thread_rng`) breaks reproducibility")
        } else if t.text == "rand"
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("random"))
        {
            Some("`rand::random` draws from ambient entropy")
        } else if t.text == "from_entropy" && next_is_call {
            Some("`from_entropy` seeds from the OS, not the caller")
        } else if t.text == "RandomState" {
            Some("`RandomState` hashing is randomized per process")
        } else {
            None
        };
        if let Some(msg) = msg {
            out.push(diag_at(
                file,
                i,
                "determinism",
                "L2",
                msg.to_string(),
                "thread an explicit `StdRng::seed_from_u64(seed)` through the call chain",
            ));
            continue;
        }
        // Clock-derived seed: a clock read inside seed_from_u64's args.
        if t.text == "seed_from_u64" && next_is_call {
            let close = file.pair[i + 1];
            if close != usize::MAX && args_read_clock(file, i + 2, close) {
                out.push(diag_at(
                    file,
                    i,
                    "determinism",
                    "L2",
                    "seed derived from the clock".to_string(),
                    "accept the seed as a parameter instead of reading a clock",
                ));
            }
        }
    }
}

fn args_read_clock(file: &File, start: usize, end: usize) -> bool {
    let toks = &file.toks;
    (start..end).any(|j| {
        let t = &toks[j];
        (t.is_ident("now") && toks.get(j + 1).is_some_and(|n| n.is_open('(')))
            || t.is_ident("UNIX_EPOCH")
            || (t.is_ident("elapsed") && toks.get(j + 1).is_some_and(|n| n.is_open('(')))
    })
}

/// L3 — `ordered-iteration`.
fn ordered_iteration(file: &File, out: &mut Vec<Diagnostic>) {
    let p = file.path_str();
    if !ORDER_SENSITIVE_MODULES.iter().any(|m| p == *m) {
        return;
    }
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind == Kind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(diag_at(
                file,
                i,
                "ordered-iteration",
                "L3",
                format!("`{}` in an ordering-sensitive module", t.text),
                "use BTreeMap/BTreeSet, or collect-and-sort before iterating and \
                 `// lint:allow(ordered-iteration): <how order is restored>`",
            ));
        }
    }
}

/// L4 — `nan-ordering`. Follows the method chain after `partial_cmp(..)`
/// across lines, so `a.partial_cmp(b)\n    .unwrap()` is caught too.
fn nan_ordering(file: &File, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("partial_cmp") || !toks.get(i + 1).is_some_and(|n| n.is_open('(')) {
            continue;
        }
        let close = file.pair[i + 1];
        if close == usize::MAX {
            continue;
        }
        // Walk the chain: .name(..) .name(..) …, flag unwrap/expect.
        let mut j = close + 1;
        while toks.get(j).is_some_and(|t| t.is_punct(".")) {
            let Some(name) = toks.get(j + 1) else { break };
            if name.is_ident("unwrap") || name.is_ident("expect") {
                out.push(diag_at(
                    file,
                    i,
                    "nan-ordering",
                    "L4",
                    "`partial_cmp(..).unwrap()` panics on NaN".to_string(),
                    "use `f64::total_cmp` (or `automodel_invariant::f64_key`) for a total order",
                ));
                break;
            }
            if toks.get(j + 2).is_some_and(|n| n.is_open('(')) && file.pair[j + 2] != usize::MAX {
                j = file.pair[j + 2] + 1;
            } else {
                break;
            }
        }
    }
}

/// L6 — `no-adhoc-threads`.
fn no_adhoc_threads(file: &File, out: &mut Vec<Diagnostic>) {
    if file.path_str().starts_with("crates/parallel/") {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            continue;
        }
        let Some(member) = toks.get(i + 2) else {
            continue;
        };
        let msg = match (t.text.as_str(), member.text.as_str()) {
            ("crossbeam", "scope") => "ad-hoc `crossbeam::scope` worker pool",
            ("thread", "spawn") => "ad-hoc `thread::spawn`",
            ("thread", "scope") => "ad-hoc `thread::scope` worker pool",
            ("thread", "Builder") => "ad-hoc `thread::Builder` spawn",
            _ => continue,
        };
        out.push(diag_at(
            file,
            i,
            "no-adhoc-threads",
            "L6",
            msg.to_string(),
            "use `automodel_parallel::Executor::map` (or `map_budgeted`) so results \
             stay deterministic at any thread count, or append \
             `// lint:allow(no-adhoc-threads): <why the executor cannot serve here>`",
        ));
    }
}

/// L7 — `no-adhoc-catch-unwind`.
fn no_adhoc_catch_unwind(file: &File, out: &mut Vec<Diagnostic>) {
    if file.path_str().starts_with("crates/parallel/") {
        return;
    }
    for (i, t) in file.toks.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        if t.is_ident("catch_unwind") {
            out.push(diag_at(
                file,
                i,
                "no-adhoc-catch-unwind",
                "L7",
                "ad-hoc `catch_unwind` outside the containment layer".to_string(),
                "route the evaluation through `automodel_parallel::contain` (or `run_trial`) \
                 so the panic joins the TrialOutcome taxonomy, or append \
                 `// lint:allow(no-adhoc-catch-unwind): <why containment cannot serve here>`",
            ));
        }
    }
}

/// L8 — `no-adhoc-memo`.
fn no_adhoc_memo(file: &File, out: &mut Vec<Diagnostic>) {
    if file.path_str().starts_with("crates/parallel/") {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident || (t.text != "HashMap" && t.text != "BTreeMap") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            continue;
        }
        // Key type: optional `&` (+ lifetime), then exactly `Config`.
        let mut j = i + 2;
        let mut borrowed = "";
        if toks.get(j).is_some_and(|n| n.is_punct("&")) {
            borrowed = "&";
            j += 1;
            if toks.get(j).is_some_and(|n| n.kind == Kind::Lifetime) {
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|n| n.is_ident("Config")) {
            continue;
        }
        // The key type must end exactly at `Config` (`,` or `>` follows);
        // `HashMap<ConfigId, _>` is a single ident and never got here.
        if !toks
            .get(j + 1)
            .is_some_and(|n| n.is_punct(",") || n.is_punct(">"))
        {
            continue;
        }
        out.push(diag_at(
            file,
            i,
            "no-adhoc-memo",
            "L8",
            format!(
                "ad-hoc memoization: `{}` keyed on `{borrowed}Config`",
                t.text
            ),
            "route memoization through `automodel_parallel::TrialCache` keyed by \
             `Config::cache_key()` (canonical fingerprint, telemetry, capacity bound), \
             or append `// lint:allow(no-adhoc-memo): <why the shared cache cannot \
             serve here>`",
        ));
    }
}

/// L9 — `no-adhoc-print`.
fn no_adhoc_print(file: &File, out: &mut Vec<Diagnostic>) {
    let p = file.path_str();
    let exempt = p.contains("src/bin/")
        || p.ends_with("src/main.rs")
        || p.starts_with("crates/trace/src/")
        || p.starts_with("xtask/")
        || p.contains("examples/")
        || p.contains("tests/")
        || p.contains("benches/");
    if exempt {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == Kind::Ident
            && matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(diag_at(
                file,
                i,
                "no-adhoc-print",
                "L9",
                format!("ad-hoc `{}!` in library code", t.text),
                "emit a `TraceEvent` through the run's `Tracer` (narration reaches stderr \
                 via `ProgressSink` and capture via the configured sinks), or append \
                 `// lint:allow(no-adhoc-print): <why tracing cannot serve here>`",
            ));
        }
    }
}

/// L14 — `no-adhoc-persistence`. Durable bytes go through the store
/// crate's versioned, digest-verified container; library code elsewhere
/// must not open files for writing. Binaries, tests and benches write
/// reports and goldens, which are not model artifacts — exempt.
fn no_adhoc_persistence(file: &File, out: &mut Vec<Diagnostic>) {
    let p = file.path_str();
    let in_crate_lib = p.starts_with("crates/") && p.contains("/src/");
    let exempt = !in_crate_lib
        || p.starts_with("crates/store/")
        || p.contains("src/bin/")
        || p.ends_with("src/main.rs")
        || p.contains("tests/")
        || p.contains("benches/");
    if exempt {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            continue;
        }
        let Some(member) = toks.get(i + 2) else {
            continue;
        };
        if !toks.get(i + 3).is_some_and(|n| n.is_open('(')) {
            continue;
        }
        let msg = match (t.text.as_str(), member.text.as_str()) {
            ("fs", "write") => "ad-hoc persistence: `fs::write` in library code",
            ("File", "create") => "ad-hoc persistence: `File::create` in library code",
            ("OpenOptions", "new") => "ad-hoc persistence: `OpenOptions` open in library code",
            _ => continue,
        };
        out.push(diag_at(
            file,
            i,
            "no-adhoc-persistence",
            "L14",
            msg.to_string(),
            "persist through `automodel_store::StoreArtifact::save`/`load` (versioned, \
             digest-verified container with typed decode errors), or append \
             `// lint:allow(no-adhoc-persistence): <why the store cannot serve here>`",
        ));
    }
}

/// L15 — `durable-write`. Inside the store crate (and the trace sinks
/// that share its durability story) every byte reaching disk flows
/// through the VFS layer — fsync-on-write, write-temp + rename
/// atomicity, bounded retry, seeded fault injection. A raw write call
/// here opts out of crash safety in the exact code that promises it.
/// The one sanctioned primitive (`StdVfs::write`) carries its own
/// `lint:allow`.
fn durable_write(file: &File, out: &mut Vec<Diagnostic>) {
    let p = file.path_str();
    if !p.starts_with("crates/store/src/") && !p.starts_with("crates/trace/src/") {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            continue;
        }
        let Some(member) = toks.get(i + 2) else {
            continue;
        };
        if !toks.get(i + 3).is_some_and(|n| n.is_open('(')) {
            continue;
        }
        let msg = match (t.text.as_str(), member.text.as_str()) {
            ("fs", "write") => "`fs::write` bypasses the durable VFS layer",
            ("File", "create") => "`File::create` bypasses the durable VFS layer",
            ("OpenOptions", "new") => "`OpenOptions` open bypasses the durable VFS layer",
            _ => continue,
        };
        out.push(diag_at(
            file,
            i,
            "durable-write",
            "L15",
            msg.to_string(),
            "route the bytes through `vfs::atomic_write` (write-temp + fsync + rename with \
             bounded retry) or a `Vfs` method, or append \
             `// lint:allow(durable-write): <why raw IO is sound here>`",
        ));
    }
}

/// L16 — `no-adhoc-io`. Raw socket and stdin access in crate library
/// code is confined to `crates/serve/src/transport.rs`, the one seam
/// where bytes from the outside world enter the service and where the
/// protocol's length cap, typed rejection and admission gating are
/// known to apply. Binaries, tests and benches act as *clients* of the
/// service and keep their sockets — they are not unaudited ingress.
fn no_adhoc_io(file: &File, out: &mut Vec<Diagnostic>) {
    let p = file.path_str();
    let in_crate_lib = p.starts_with("crates/") && p.contains("/src/");
    let exempt = !in_crate_lib
        || p == "crates/serve/src/transport.rs"
        || p.contains("src/bin/")
        || p.ends_with("src/main.rs")
        || p.contains("tests/")
        || p.contains("benches/");
    if exempt {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // `stdin()` — a call, not the `child.stdin` field of a spawned
        // process handle.
        if t.text == "stdin" && toks.get(i + 1).is_some_and(|n| n.is_open('(')) {
            out.push(diag_at(
                file,
                i,
                "no-adhoc-io",
                "L16",
                "ad-hoc IO: raw stdin access in library code".to_string(),
                "route external bytes through the serve transport layer \
                 (`crates/serve/src/transport.rs` — length-capped, typed-rejected, \
                 admission-gated), or append \
                 `// lint:allow(no-adhoc-io): <why this ingress is audited here>`",
            ));
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            continue;
        }
        let Some(member) = toks.get(i + 2) else {
            continue;
        };
        if !toks.get(i + 3).is_some_and(|n| n.is_open('(')) {
            continue;
        }
        let msg = match (t.text.as_str(), member.text.as_str()) {
            ("TcpListener", "bind") => "ad-hoc IO: `TcpListener::bind` in library code",
            ("TcpStream", "connect") => "ad-hoc IO: `TcpStream::connect` in library code",
            ("UdpSocket", "bind") => "ad-hoc IO: `UdpSocket::bind` in library code",
            _ => continue,
        };
        out.push(diag_at(
            file,
            i,
            "no-adhoc-io",
            "L16",
            msg.to_string(),
            "route external bytes through the serve transport layer \
             (`crates/serve/src/transport.rs` — length-capped, typed-rejected, \
             admission-gated), or append \
             `// lint:allow(no-adhoc-io): <why this ingress is audited here>`",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> File {
        File::parse("crates/core/src/x.rs", src)
    }

    fn count(f: &File, rule: &str) -> usize {
        check_file(f).iter().filter(|d| d.rule == rule).count()
    }

    #[test]
    fn unwrap_variants_are_distinguished() {
        let f = lib("fn f() { a.unwrap_or_else(|| 3); b.unwrap_or(4); r.expect_err(m); }");
        assert_eq!(count(&f, "no-panic-lib"), 0);
        let f = lib("fn f() { a.unwrap(); r.expect(\"m\"); }");
        assert_eq!(count(&f, "no-panic-lib"), 2);
    }

    #[test]
    fn panic_in_string_or_comment_never_fires() {
        let f = lib("fn f() { let s = \"panic!(no)\"; } // panic!(in comment)");
        assert_eq!(count(&f, "no-panic-lib"), 0);
    }

    #[test]
    fn multiline_partial_cmp_chain_is_caught() {
        let f = lib(
            "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b)\n        .unwrap());\n}",
        );
        assert_eq!(count(&f, "nan-ordering"), 1);
    }

    #[test]
    fn partial_cmp_with_safe_fallback_is_fine() {
        let f = lib(
            "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap_or(core::cmp::Ordering::Equal); }",
        );
        assert_eq!(count(&f, "nan-ordering"), 0);
    }

    #[test]
    fn clock_seed_inside_args_is_one_finding() {
        let f = lib("fn f() { let rng = StdRng::seed_from_u64(SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_secs()); }");
        let d = check_file(&f);
        assert_eq!(d.iter().filter(|d| d.rule == "determinism").count(), 1);
    }

    #[test]
    fn seeded_rng_is_clean() {
        let f = lib("fn run(seed: u64) { let mut rng = StdRng::seed_from_u64(seed); }");
        assert_eq!(count(&f, "determinism"), 0);
    }

    #[test]
    fn config_keyed_maps_fire_and_config_id_does_not() {
        let f = lib("fn f() { let m: HashMap<Config, f64> = HashMap::new(); }");
        assert_eq!(count(&f, "no-adhoc-memo"), 1);
        let f = lib("fn f() { let m: BTreeMap<&Config, T> = BTreeMap::new(); }");
        assert_eq!(count(&f, "no-adhoc-memo"), 1);
        let f = lib("fn f() { let m: HashMap<ConfigId, f64> = HashMap::new(); }");
        assert_eq!(count(&f, "no-adhoc-memo"), 0);
    }

    #[test]
    fn print_macros_fire_once_each() {
        let f = File::parse(
            "crates/bench/src/report.rs",
            "fn f() { println!(\"a\"); eprintln!(\"b\"); print!(\"c\"); eprint!(\"d\"); }",
        );
        assert_eq!(count(&f, "no-adhoc-print"), 4);
    }

    #[test]
    fn test_modules_are_exempt_where_documented() {
        let f = lib("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(\"t\"); thread::spawn(f); }\n}");
        assert_eq!(count(&f, "no-panic-lib"), 0);
        assert_eq!(count(&f, "no-adhoc-threads"), 0);
    }

    #[test]
    fn thread_patterns_fire_outside_parallel() {
        let f = lib("fn f() { thread::spawn(|| {}); crossbeam::scope(|s| {}); }");
        assert_eq!(count(&f, "no-adhoc-threads"), 2);
        let f = File::parse(
            "crates/parallel/src/executor.rs",
            "fn f() { thread::spawn(|| {}); }",
        );
        assert_eq!(count(&f, "no-adhoc-threads"), 0);
    }

    #[test]
    fn catch_unwind_ident_only() {
        let f = lib("fn f() { let r = std::panic::catch_unwind(|| eval()); }");
        assert_eq!(count(&f, "no-adhoc-catch-unwind"), 1);
        // The rule's own snake_case name is a different identifier.
        let f = lib("fn no_adhoc_catch_unwind_helper() {}");
        assert_eq!(count(&f, "no-adhoc-catch-unwind"), 0);
    }

    #[test]
    fn persistence_fires_in_crate_lib_code_only() {
        let src = "fn f() { std::fs::write(p, b); let f = File::create(p); OpenOptions::new().append(true); }";
        let f = lib(src); // crates/core/src/x.rs
        assert_eq!(count(&f, "no-adhoc-persistence"), 3);
        for path in [
            "crates/store/src/format.rs",
            "crates/bench/src/bin/exp_x.rs",
            "src/main.rs",
            "tests/warmstart.rs",
            "xtask/src/baseline.rs",
        ] {
            let f = File::parse(path, src);
            assert_eq!(count(&f, "no-adhoc-persistence"), 0, "{path} is exempt");
        }
    }

    #[test]
    fn adhoc_io_fires_in_crate_lib_code_only() {
        let src = "fn f() { let l = TcpListener::bind(a); \
                   let s = std::net::TcpStream::connect(a); \
                   for line in std::io::stdin().lines() {} }";
        let f = lib(src); // crates/core/src/x.rs
        assert_eq!(count(&f, "no-adhoc-io"), 3);
        for path in [
            "crates/serve/src/transport.rs",
            "crates/bench/src/bin/exp_serve.rs",
            "src/main.rs",
            "tests/serve_oracle.rs",
            "xtask/src/baseline.rs",
        ] {
            let f = File::parse(path, src);
            assert_eq!(count(&f, "no-adhoc-io"), 0, "{path} is exempt");
        }
    }

    #[test]
    fn adhoc_io_ignores_child_stdin_fields_and_test_modules() {
        // `child.stdin` is a pipe handle on a spawned process, not an
        // ingress; only the `stdin()` call form is flagged.
        let f = lib("fn f(child: &mut Child) { let pipe = child.stdin.take(); }");
        assert_eq!(count(&f, "no-adhoc-io"), 0);
        let f = lib(
            "#[cfg(test)]\nmod tests {\n    fn t() { let l = TcpListener::bind(a).unwrap(); }\n}",
        );
        assert_eq!(count(&f, "no-adhoc-io"), 0);
    }

    #[test]
    fn persistence_ignores_reads_and_test_modules() {
        let f = lib("fn f() { let b = std::fs::read(p); let s = fs::read_to_string(p); }");
        assert_eq!(count(&f, "no-adhoc-persistence"), 0);
        let f = lib("#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(p, b).unwrap(); }\n}");
        assert_eq!(count(&f, "no-adhoc-persistence"), 0);
    }

    #[test]
    fn durable_write_fires_inside_store_and_trace_only() {
        let src = "fn f() { std::fs::write(p, b); let f = fs::File::create(p); OpenOptions::new().append(true); }";
        for path in ["crates/store/src/format.rs", "crates/trace/src/sink.rs"] {
            let f = File::parse(path, src);
            assert_eq!(count(&f, "durable-write"), 3, "{path} is in scope");
        }
        for path in [
            "crates/core/src/dmd.rs",
            "crates/bench/src/bin/exp_x.rs",
            "src/main.rs",
            "xtask/src/baseline.rs",
        ] {
            let f = File::parse(path, src);
            assert_eq!(count(&f, "durable-write"), 0, "{path} is out of scope");
        }
    }

    #[test]
    fn durable_write_ignores_reads_vfs_calls_and_test_modules() {
        let clean = "fn f(vfs: &dyn Vfs) { let b = fs::read(p); atomic_write(vfs, p, &b); vfs.write(p, &b); }";
        let f = File::parse("crates/store/src/checkpoint.rs", clean);
        assert_eq!(count(&f, "durable-write"), 0);
        let f = File::parse(
            "crates/store/src/checkpoint.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(p, b).unwrap(); }\n}",
        );
        assert_eq!(count(&f, "durable-write"), 0);
    }

    #[test]
    fn rule_meta_lookup_by_code_and_id() {
        assert_eq!(rule_meta("L10").unwrap().id, "determinism-taint");
        assert_eq!(rule_meta("lock-order").unwrap().code, "L11");
        assert!(rule_meta("L99").is_none());
    }
}
