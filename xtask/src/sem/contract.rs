//! L12 — `contract-conformance`: the reliability substrate must cover
//! every optimizer and every executor entry point.
//!
//! **Optimizer surface** (crates/hpo): any type with a concrete
//! `optimize`/`optimize_batch` — or multi-fidelity
//! `optimize_fidelity`/`optimize_fidelity_batch` — method must reach the
//! three builder hooks `with_policy`, `with_cache`, `with_tracer` — either by
//! implementing `OptimizerBuilder` (a `core`/`core_mut` pair over an
//! embedded `OptimizerCore`, which supplies every hook as a default
//! method) or by defining all three directly. A new optimizer that
//! forgets silently runs without fault policy, trial cache or tracing —
//! the substrate loses coverage with no compile error. Body-less trait
//! declarations are exempt (the trait itself is not an optimizer).
//!
//! **Executor routing** (crates/hpo, crates/core): a non-test function
//! that works with the `Executor` and calls `map`/`map_budgeted` must
//! reach `run_trial`/`contain` (directly or through crate-local calls).
//! A mapping closure that evaluates configs without `run_trial` bypasses
//! containment, retry, quarantine, caching and tracing in one stroke.

use super::index::CrateIndex;
use super::lex::Kind;
use super::rules::diag_at;
use crate::diag::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

const BUILDER_HOOKS: [&str; 3] = ["with_policy", "with_cache", "with_tracer"];

/// The optimizer entry points that put a type on the contract surface.
/// The fidelity pair matters: a rung scheduler like `SuccessiveHalving`
/// defines no plain `optimize`, and anchoring only on that name would
/// let every multi-fidelity optimizer slip past the lint.
const ENTRY_POINTS: [&str; 4] = [
    "optimize",
    "optimize_batch",
    "optimize_fidelity",
    "optimize_fidelity_batch",
];

/// Run L12 over one crate.
pub fn check_crate(idx: &CrateIndex<'_>, out: &mut Vec<Diagnostic>) {
    if idx.name == "crates/hpo" {
        optimizer_surface(idx, out);
    }
    if idx.name == "crates/hpo" || idx.name == "crates/core" {
        executor_routing(idx, out);
    }
}

fn optimizer_surface(idx: &CrateIndex<'_>, out: &mut Vec<Diagnostic>) {
    // Type name → methods defined on it (across the crate's files).
    let mut methods: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in &idx.fns {
        if let Some(ty) = &f.item.self_ty {
            methods.entry(ty).or_default().insert(&f.item.name);
        }
    }
    let mut anchored: BTreeSet<&str> = BTreeSet::new();
    for f in &idx.fns {
        let is_entry = ENTRY_POINTS.contains(&f.item.name.as_str());
        // Body-less = trait declaration; one finding per type is enough,
        // anchored at its lexically first concrete entry point.
        if !is_entry || f.item.body.is_none() || f.item.in_test {
            continue;
        }
        let Some(ty) = &f.item.self_ty else { continue };
        if !anchored.insert(ty.as_str()) {
            continue;
        }
        let have = methods.get(ty.as_str());
        // An OptimizerBuilder impl (core + core_mut over an embedded
        // OptimizerCore) inherits every hook as a default method.
        let via_builder = have.is_some_and(|m| m.contains("core") && m.contains("core_mut"));
        let missing: Vec<&str> = BUILDER_HOOKS
            .iter()
            .filter(|h| !have.is_some_and(|m| m.contains(**h)))
            .copied()
            .collect();
        if !missing.is_empty() && !via_builder {
            let file = idx.files[f.file];
            out.push(diag_at(
                file,
                f.item.sig_start,
                "contract-conformance",
                "L12",
                format!(
                    "optimizer `{ty}` is missing builder hook{} {}",
                    if missing.len() > 1 { "s" } else { "" },
                    missing
                        .iter()
                        .map(|m| format!("`{m}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                "implement `OptimizerBuilder` (embed an `OptimizerCore` and define \
                 `core`/`core_mut`, see GeneticAlgorithm) so the shared fault policy, \
                 trial cache and tracer reach this optimizer as default hooks, or add \
                 the missing `with_*` builders directly",
            ));
        }
    }
}

fn executor_routing(idx: &CrateIndex<'_>, out: &mut Vec<Diagnostic>) {
    let eval: BTreeSet<&str> = ["run_trial", "contain"].into();
    for (fid, f) in idx.fns.iter().enumerate() {
        if f.item.in_test || f.item.body.is_none() {
            continue;
        }
        let file = idx.files[f.file];
        let toks = &file.toks;
        // "Works with the Executor": the ident appears anywhere in the
        // item (signature included, so `exec: &Executor` params count).
        let uses_executor = (f.item.sig_start..=f.item.sig_end.min(toks.len() - 1))
            .any(|i| toks[i].is_ident("Executor"));
        if !uses_executor {
            continue;
        }
        // Find the mapping call; `.map(` alone is iterator-common, so it
        // only counts with an Executor in scope (checked above) AND an
        // executor-looking receiver — `exec.map(..)`, `executor.map(..)`,
        // `self.executor.map_budgeted(..)` — never `names.iter().map(..)`.
        let (body_open, body_close) = f.item.body.expect("checked");
        let map_call = (body_open + 1..body_close).find(|&i| {
            toks[i].kind == Kind::Ident
                && (toks[i].text == "map" || toks[i].text == "map_budgeted")
                && i >= 2
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_open('('))
                && toks[i - 2].kind == Kind::Ident
                && toks[i - 2].text.to_ascii_lowercase().contains("exec")
        });
        let Some(map_tok) = map_call else { continue };
        if !idx.reaches(fid, &eval) {
            out.push(diag_at(
                file,
                map_tok,
                "contract-conformance",
                "L12",
                "executor mapping that never routes through `run_trial`".to_string(),
                "evaluate configs via `run_trial` (or `contain`) inside the mapped closure \
                 so panics, retries, quarantine, caching and tracing apply; for non-trial \
                 numeric work append `// lint:allow(contract-conformance): <what is mapped>`",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::source::File;
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<String> {
        let f = File::parse(path, src);
        let idx = CrateIndex::build(super::super::index::crate_of(path), vec![&f]);
        let mut out = Vec::new();
        check_crate(&idx, &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    const CONFORMANT: &str = "impl Opt {\n\
        pub fn with_policy(self) -> Opt { self }\n\
        pub fn with_cache(self) -> Opt { self }\n\
        pub fn with_tracer(self) -> Opt { self }\n\
        pub fn optimize(&self) -> f64 { 0.0 }\n\
    }\n";

    #[test]
    fn conformant_optimizer_is_clean() {
        assert!(findings("crates/hpo/src/opt.rs", CONFORMANT).is_empty());
    }

    #[test]
    fn missing_hook_is_named() {
        let src = "impl Opt {\n\
            pub fn with_policy(self) -> Opt { self }\n\
            pub fn optimize(&self) -> f64 { 0.0 }\n\
        }\n";
        let msgs = findings("crates/hpo/src/opt.rs", src);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("`with_cache`"), "{msgs:?}");
        assert!(msgs[0].contains("`with_tracer`"));
        assert!(!msgs[0].contains("`with_policy`,"));
    }

    #[test]
    fn optimizer_builder_impl_counts_as_conformant() {
        let src = "impl OptimizerBuilder for Opt {\n\
            fn core(&self) -> &OptimizerCore { &self.core }\n\
            fn core_mut(&mut self) -> &mut OptimizerCore { &mut self.core }\n\
        }\n\
        impl Opt {\n\
            pub fn optimize(&self) -> f64 { 0.0 }\n\
        }\n";
        assert!(findings("crates/hpo/src/opt.rs", src).is_empty());
    }

    #[test]
    fn core_without_core_mut_is_not_enough() {
        let src = "impl Opt {\n\
            fn core(&self) -> &OptimizerCore { &self.core }\n\
            pub fn optimize(&self) -> f64 { 0.0 }\n\
        }\n";
        let msgs = findings("crates/hpo/src/opt.rs", src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
    }

    #[test]
    fn fidelity_only_optimizer_is_on_the_surface() {
        // A rung scheduler with no plain `optimize` must still be held
        // to the builder-hook contract.
        let src = "impl Sha {\n\
            pub fn optimize_fidelity(&self) -> f64 { 0.0 }\n\
            pub fn optimize_fidelity_batch(&self) -> f64 { 0.0 }\n\
        }\n";
        let msgs = findings("crates/hpo/src/sha.rs", src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("`with_policy`"), "{msgs:?}");
    }

    #[test]
    fn fidelity_optimizer_via_builder_is_clean() {
        let src = "impl OptimizerBuilder for Sha {\n\
            fn core(&self) -> &OptimizerCore { &self.core }\n\
            fn core_mut(&mut self) -> &mut OptimizerCore { &mut self.core }\n\
        }\n\
        impl Sha {\n\
            pub fn optimize_fidelity(&self) -> f64 { 0.0 }\n\
        }\n";
        assert!(findings("crates/hpo/src/sha.rs", src).is_empty());
    }

    #[test]
    fn multiple_entry_points_yield_one_finding() {
        let src = "impl Opt {\n\
            pub fn optimize(&self) -> f64 { 0.0 }\n\
            pub fn optimize_batch(&self) -> f64 { 0.0 }\n\
            pub fn optimize_fidelity(&self) -> f64 { 0.0 }\n\
        }\n";
        let msgs = findings("crates/hpo/src/opt.rs", src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
    }

    #[test]
    fn trait_declaration_is_exempt() {
        let src = "pub trait Optimizer { fn optimize(&self) -> f64; }\n";
        assert!(findings("crates/hpo/src/objective.rs", src).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let src = "impl Opt { pub fn optimize(&self) -> f64 { 0.0 } }\n";
        assert!(findings("crates/nn/src/opt.rs", src).is_empty());
    }

    #[test]
    fn executor_map_without_run_trial_is_flagged() {
        let src = "pub fn sweep(exec: &Executor, xs: &[f64]) -> Vec<f64> {\n\
                       exec.map(xs.len(), |i| eval_raw(xs[i]))\n\
                   }\n";
        let msgs = findings("crates/hpo/src/sweep.rs", src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("run_trial"));
    }

    #[test]
    fn executor_map_through_run_trial_is_clean_even_transitively() {
        let src = "pub fn sweep(exec: &Executor, xs: &[f64]) -> Vec<f64> {\n\
                       exec.map_budgeted(xs.len(), |i| one(xs[i]))\n\
                   }\n\
                   fn one(x: f64) -> f64 { run_trial(|| x).score() }\n";
        assert!(findings("crates/hpo/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn iterator_map_with_executor_in_scope_is_not_the_mapping_call() {
        // Only `exec*.map(..)` receivers count; a plain iterator `.map(..)`
        // in the same function must neither trigger nor anchor the finding.
        let src = "pub fn sweep(executor: &Executor, names: &[&str]) -> Vec<String> {\n\
                       names.iter().map(|s| s.to_string()).collect()\n\
                   }\n";
        assert!(findings("crates/hpo/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn iterator_map_without_executor_is_ignored() {
        let src = "pub fn norm(xs: &[f64]) -> Vec<f64> { xs.iter().map(|x| x * 2.0).collect() }\n";
        assert!(findings("crates/hpo/src/util.rs", src).is_empty());
    }
}
