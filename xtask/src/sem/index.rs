//! Per-crate symbol index: every function with its body range, a
//! simple-name resolution map, and a call graph with transitive
//! reachability queries. Resolution is name-based within one crate —
//! deliberately over-approximate (any same-named function is a candidate
//! callee), which is the safe direction for the rules built on top:
//! taint and lock facts may propagate too far, never too little.

use super::ast::{FnItem, Item};
use super::lex::Kind;
use super::source::File;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A function inside a [`CrateIndex`].
pub struct FnRef<'a> {
    /// Index into [`CrateIndex::files`].
    pub file: usize,
    pub item: &'a FnItem,
}

/// Symbol index over the files of one crate.
pub struct CrateIndex<'a> {
    /// Crate id, e.g. `crates/hpo`, `src`, `xtask`.
    pub name: String,
    pub files: Vec<&'a File>,
    pub fns: Vec<FnRef<'a>>,
    /// Simple fn name → fn ids (cross-file within the crate).
    by_name: BTreeMap<String, Vec<usize>>,
    /// fn id → simple names of everything it calls (idents directly
    /// followed by `(` in its body, methods included).
    pub calls: Vec<BTreeSet<String>>,
}

/// Crate id for a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    match parts.first() {
        Some(&"crates") if parts.len() > 1 => format!("crates/{}", parts[1]),
        Some(&"xtask") => "xtask".to_string(),
        Some(&"src") => "src".to_string(),
        _ => parts.first().unwrap_or(&"").to_string(),
    }
}

impl<'a> CrateIndex<'a> {
    /// Build the index over `files` (all from one crate).
    pub fn build(name: String, files: Vec<&'a File>) -> CrateIndex<'a> {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for item in &file.items {
                if let Item::Fn(f) = item {
                    let id = fns.len();
                    by_name.entry(f.name.clone()).or_default().push(id);
                    fns.push(FnRef { file: fi, item: f });
                }
            }
        }
        let mut calls = Vec::with_capacity(fns.len());
        for f in &fns {
            let file = files[f.file];
            let mut set = BTreeSet::new();
            if let Some((s, e)) = f.item.body_range() {
                for i in s..e {
                    let t = &file.toks[i];
                    if t.kind == Kind::Ident
                        && file.toks.get(i + 1).is_some_and(|n| n.is_open('('))
                        && !is_expr_keyword(&t.text)
                    {
                        set.insert(t.text.clone());
                    }
                }
            }
            calls.push(set);
        }
        CrateIndex {
            name,
            files,
            fns,
            by_name,
            calls,
        }
    }

    /// Fn ids with the given simple name.
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does `fn_id` call (directly or transitively through crate-local
    /// functions) anything named in `targets`? A called name that matches
    /// a target counts even when no local definition exists — external
    /// functions like `run_trial` resolve by name alone.
    pub fn reaches(&self, fn_id: usize, targets: &BTreeSet<&str>) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([fn_id]);
        while let Some(id) = queue.pop_front() {
            if !seen.insert(id) {
                continue;
            }
            for name in &self.calls[id] {
                if targets.contains(name.as_str()) {
                    return true;
                }
                for &callee in self.resolve(name) {
                    if !seen.contains(&callee) {
                        queue.push_back(callee);
                    }
                }
            }
        }
        false
    }

    /// Propagate per-fn facts from callees to callers until fixpoint:
    /// `facts[caller] ⊇ facts[callee]` for every resolvable call edge.
    pub fn propagate_up<T: Clone + Ord>(&self, facts: &mut [BTreeSet<T>]) {
        let mut changed = true;
        while changed {
            changed = false;
            for caller in 0..self.fns.len() {
                let mut add: Vec<T> = Vec::new();
                for name in &self.calls[caller] {
                    for &callee in self.resolve(name) {
                        if callee == caller {
                            continue;
                        }
                        for fact in &facts[callee] {
                            if !facts[caller].contains(fact) {
                                add.push(fact.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    facts[caller].extend(add);
                    changed = true;
                }
            }
        }
    }
}

/// Keywords that look like calls when followed by `(`.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "for" | "match" | "loop" | "return" | "let" | "in" | "as" | "move"
    )
}

/// Group parsed files by crate id.
pub fn group_by_crate(files: &[File]) -> Vec<CrateIndex<'_>> {
    let mut groups: BTreeMap<String, Vec<&File>> = BTreeMap::new();
    for f in files {
        groups.entry(crate_of(&f.path_str())).or_default().push(f);
    }
    groups
        .into_iter()
        .map(|(name, files)| CrateIndex::build(name, files))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_workspace_layout() {
        assert_eq!(crate_of("crates/hpo/src/ga.rs"), "crates/hpo");
        assert_eq!(crate_of("src/lib.rs"), "src");
        assert_eq!(crate_of("xtask/src/main.rs"), "xtask");
    }

    #[test]
    fn reaches_follows_crate_local_calls() {
        let a = File::parse(
            "crates/x/src/a.rs",
            "pub fn entry() { helper(); }\nfn helper() { run_trial(|| 1.0); }\n",
        );
        let idx = CrateIndex::build("crates/x".into(), vec![&a]);
        let entry = idx.fns.iter().position(|f| f.item.name == "entry").unwrap();
        let targets: BTreeSet<&str> = ["run_trial"].into();
        assert!(idx.reaches(entry, &targets));
        let miss: BTreeSet<&str> = ["contain"].into();
        assert!(!idx.reaches(entry, &miss));
    }

    #[test]
    fn propagate_up_reaches_fixpoint_through_chains() {
        let a = File::parse(
            "crates/x/src/a.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        );
        let idx = CrateIndex::build("crates/x".into(), vec![&a]);
        let leaf = idx.fns.iter().position(|f| f.item.name == "leaf").unwrap();
        let top = idx.fns.iter().position(|f| f.item.name == "top").unwrap();
        let mut facts: Vec<BTreeSet<&str>> = vec![BTreeSet::new(); idx.fns.len()];
        facts[leaf].insert("L");
        idx.propagate_up(&mut facts);
        assert!(facts[top].contains("L"));
    }
}
