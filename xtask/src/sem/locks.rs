//! L11 — `lock-order`: the workspace lock-acquisition graph must stay
//! acyclic, and no lock may be held across a trial evaluation.
//!
//! **Lock classes** come from struct fields typed `Mutex<…>`/`RwLock<…>`
//! (possibly wrapped in `Arc`/`Option`), named `Type.field` — e.g.
//! `TrialCache.inner`, `Tracer.state`, `SharedBudget.best`,
//! `MemorySink.buf` — plus function-local `let m = Mutex::new(..)`
//! bindings.
//!
//! **Acquisition sites** are `.lock()` / `.read()` / `.write()` calls
//! whose receiver resolves to a known class: `self.field.lock()`, a local
//! borrow of a lock field (`state.lock()` where `state` names a lock
//! field), or a local mutex. Unresolvable receivers (e.g.
//! `stderr().lock()`) are ignored. Known lock-backed APIs count as
//! acquisitions of their internal lock even cross-crate: `.emit(..)` /
//! `.emit_all(..)` acquire `Tracer.state`; `.get`/`.insert`/`.len`/
//! `.stats` on a `*cache*` receiver acquire `TrialCache.inner`;
//! `.observe`/`.best` on a `*budget*` receiver acquire
//! `SharedBudget.best`.
//!
//! **Guard extent**: a let-bound guard lives to the end of its enclosing
//! block; a temporary guard to the end of its statement. Within an
//! extent, every further acquisition — direct, via a known API, or
//! transitively through crate-local calls — adds an edge
//! `held → acquired`. An edge on a cycle is an error, and a call that
//! (transitively) reaches `run_trial`/`contain` inside an extent is the
//! held-across-evaluation error.

use super::ast::Item;
use super::index::{self, CrateIndex};
use super::lex::Kind;
use super::rules::diag_at;
use super::source::File;
use crate::diag::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

const HELP_CYCLE: &str = "acquire locks in one global order (release before taking the next), \
                          or append `// lint:allow(lock-order): <why this cannot deadlock>`";
const HELP_EVAL: &str = "drop the guard before evaluating (clone what you need out of the \
                         critical section), or append \
                         `// lint:allow(lock-order): <why holding is required and safe>`";

/// Names whose invocation means "a trial is being evaluated".
const EVAL_TARGETS: [&str; 2] = ["run_trial", "contain"];

/// Run L11 over the whole workspace.
pub fn check_workspace(files: &[File], out: &mut Vec<Diagnostic>) {
    // Lock classes: field name → `Type.field`, workspace-wide.
    let mut field_class: BTreeMap<String, String> = BTreeMap::new();
    for f in files {
        for item in &f.items {
            if let Item::Struct(s) = item {
                for fld in &s.lock_fields {
                    field_class
                        .entry(fld.clone())
                        .or_insert_with(|| format!("{}.{}", s.name, fld));
                }
            }
        }
    }

    let mut edges: Vec<(String, String, Diagnostic)> = Vec::new();
    for idx in index::group_by_crate(files) {
        if idx.name == "xtask" {
            continue;
        }
        analyze_crate(&idx, &field_class, &mut edges, out);
    }

    // Cycle detection: an edge (a → b) where b reaches a closes a cycle.
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (a, b, _) in &edges {
        adj.entry(a.clone()).or_default().insert(b.clone());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                queue.extend(next.iter().map(String::as_str));
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for (a, b, diag) in edges {
        if (a == b || reaches(&b, &a)) && reported.insert((a, b)) {
            out.push(diag);
        }
    }
}

/// One acquisition site inside a function body.
struct Acq {
    /// Token index of the `.lock()`/`.read()`/… method name (or of a
    /// lock-backed API call).
    tok: usize,
    class: String,
    /// Token range (exclusive end) during which the guard is held.
    /// Zero-length for synthetic (API-internal) acquisitions — those
    /// locks are released before the call returns.
    extent: (usize, usize),
}

fn analyze_crate(
    idx: &CrateIndex<'_>,
    field_class: &BTreeMap<String, String>,
    edges: &mut Vec<(String, String, Diagnostic)>,
    out: &mut Vec<Diagnostic>,
) {
    // Per-fn acquisition sites, and per-fn acquired classes for
    // caller-ward propagation.
    let mut sites: Vec<Vec<Acq>> = Vec::with_capacity(idx.fns.len());
    let mut facts: Vec<BTreeSet<String>> = Vec::with_capacity(idx.fns.len());
    for f in &idx.fns {
        let file = idx.files[f.file];
        let acqs = if f.item.in_test {
            Vec::new()
        } else {
            find_acquisitions(file, f.item.body, field_class, &f.item.path)
        };
        facts.push(acqs.iter().map(|a| a.class.clone()).collect());
        sites.push(acqs);
    }
    idx.propagate_up(&mut facts);

    let eval_targets: BTreeSet<&str> = EVAL_TARGETS.into();
    for (fid, f) in idx.fns.iter().enumerate() {
        if f.item.in_test {
            continue;
        }
        let file = idx.files[f.file];
        for (ai, a) in sites[fid].iter().enumerate() {
            let (s, e) = a.extent;
            if s >= e {
                continue; // synthetic acquisition: nothing held here
            }
            // Direct nested acquisitions.
            for (bi, b) in sites[fid].iter().enumerate() {
                if bi != ai && b.tok >= s && b.tok < e {
                    edges.push((
                        a.class.clone(),
                        b.class.clone(),
                        diag_at(
                            file,
                            b.tok,
                            "lock-order",
                            "L11",
                            format!("lock `{}` acquired while `{}` is held", b.class, a.class),
                            HELP_CYCLE,
                        ),
                    ));
                }
            }
            // Calls inside the extent: propagate crate-local lock facts
            // and detect evaluation under a lock.
            let toks = &file.toks;
            let mut j = s;
            while j < e.min(toks.len()) {
                let t = &toks[j];
                if t.kind == Kind::Ident && toks.get(j + 1).is_some_and(|n| n.is_open('(')) {
                    let name = t.text.as_str();
                    let hits_eval = eval_targets.contains(name)
                        || idx
                            .resolve(name)
                            .iter()
                            .any(|&callee| callee != fid && idx.reaches(callee, &eval_targets));
                    if hits_eval {
                        out.push(diag_at(
                            file,
                            j,
                            "lock-order",
                            "L11",
                            format!(
                                "trial evaluation (`{name}`) while lock `{}` is held",
                                a.class
                            ),
                            HELP_EVAL,
                        ));
                    }
                    for &callee in idx.resolve(name) {
                        if callee == fid {
                            continue;
                        }
                        for cls in &facts[callee] {
                            if *cls != a.class {
                                edges.push((
                                    a.class.clone(),
                                    cls.clone(),
                                    diag_at(
                                        file,
                                        j,
                                        "lock-order",
                                        "L11",
                                        format!(
                                            "call to `{name}` acquires lock `{cls}` while `{}` is held",
                                            a.class
                                        ),
                                        HELP_CYCLE,
                                    ),
                                ));
                            }
                        }
                    }
                }
                j += 1;
            }
        }
    }
}

/// Scan a function body for acquisition sites.
fn find_acquisitions(
    file: &File,
    body: Option<(usize, usize)>,
    field_class: &BTreeMap<String, String>,
    fn_path: &str,
) -> Vec<Acq> {
    let Some((open, close)) = body else {
        return Vec::new();
    };
    let toks = &file.toks;
    // Function-local mutexes: `let NAME = Mutex::new(..)` (or RwLock).
    let mut local_class: BTreeMap<String, String> = BTreeMap::new();
    for j in open + 1..close {
        if toks[j].is_ident("let") {
            let mut name = None;
            let mut k = j + 1;
            while k < close && !toks[k].is_punct("=") && !toks[k].is_punct(";") {
                if toks[k].kind == Kind::Ident && !matches!(toks[k].text.as_str(), "mut" | "ref") {
                    name = Some(toks[k].text.clone());
                    // Type annotation ends the pattern.
                    if toks.get(k + 1).is_some_and(|n| n.is_punct(":")) {
                        while k < close && !toks[k].is_punct("=") && !toks[k].is_punct(";") {
                            k += 1;
                        }
                        break;
                    }
                }
                k += 1;
            }
            if let Some(name) = name {
                let rhs_is_mutex = (k..close.min(k + 6)).any(|m| {
                    (toks[m].is_ident("Mutex") || toks[m].is_ident("RwLock"))
                        && toks.get(m + 1).is_some_and(|n| n.is_punct("::"))
                        && toks.get(m + 2).is_some_and(|n| n.is_ident("new"))
                });
                if rhs_is_mutex {
                    local_class.insert(name.clone(), format!("{fn_path}::{name}"));
                }
            }
        }
    }

    let mut acqs = Vec::new();
    for j in open + 1..close {
        let t = &toks[j];
        if t.kind != Kind::Ident || !toks.get(j + 1).is_some_and(|n| n.is_open('(')) {
            continue;
        }
        let recv = (j >= 2 && toks[j - 1].is_punct("."))
            .then(|| &toks[j - 2])
            .filter(|r| r.kind == Kind::Ident);
        // Real acquisition: `.lock()`/`.read()`/`.write()` with an empty
        // argument list on a resolvable receiver.
        if matches!(t.text.as_str(), "lock" | "read" | "write") && file.pair[j + 1] == j + 2 {
            let Some(recv) = recv else { continue };
            let class = if recv.text == "self" {
                None // `self.lock()` — no field, unknown
            } else {
                local_class
                    .get(&recv.text)
                    .or_else(|| field_class.get(&recv.text))
                    .cloned()
            };
            if let Some(class) = class {
                let extent = guard_extent(file, j, open, close);
                acqs.push(Acq {
                    tok: j,
                    class,
                    extent,
                });
            }
            continue;
        }
        // Synthetic acquisitions through known lock-backed APIs.
        let Some(recv) = recv else { continue };
        let recv_lc = recv.text.to_lowercase();
        let class = match t.text.as_str() {
            "emit" | "emit_all" => Some("Tracer.state"),
            "get" | "insert" | "len" | "stats" if recv_lc.contains("cache") => {
                Some("TrialCache.inner")
            }
            "observe" | "best" if recv_lc.contains("budget") => Some("SharedBudget.best"),
            _ => None,
        };
        if let Some(class) = class {
            acqs.push(Acq {
                tok: j,
                class: class.to_string(),
                extent: (j, j), // released inside the API before returning
            });
        }
    }
    acqs
}

/// Extent of the guard created at acquisition token `site`: end of the
/// enclosing block when let-bound, end of the statement for temporaries.
fn guard_extent(file: &File, site: usize, body_open: usize, body_close: usize) -> (usize, usize) {
    let toks = &file.toks;
    // Let-bound? Walk back to the statement start looking for `let`.
    let mut let_bound = false;
    let mut k = site;
    while k > body_open {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(";") || t.is_open('{') || t.is_close('}') {
            break;
        }
        if t.is_ident("let") {
            let_bound = true;
            break;
        }
    }
    if let_bound && k > body_open && (toks[k - 1].is_ident("if") || toks[k - 1].is_ident("while")) {
        // `if let` / `while let` scrutinee: the guard is a temporary that
        // lives through the conditional's blocks (else branches included —
        // the classic Rust scoping footgun), not the enclosing block.
        let mut j = site + 1;
        let mut end = body_close;
        while j < body_close {
            if toks[j].is_open('{') && file.pair[j] != usize::MAX {
                let mut close = file.pair[j];
                // Extend through `else` / `else if` chains.
                while toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                    let mut m = close + 2;
                    let mut next = None;
                    while m < body_close {
                        if toks[m].is_open('{') && file.pair[m] != usize::MAX {
                            next = Some(file.pair[m]);
                            break;
                        }
                        if toks[m].kind == Kind::Open && file.pair[m] != usize::MAX {
                            m = file.pair[m] + 1;
                            continue;
                        }
                        m += 1;
                    }
                    match next {
                        Some(c) => close = c,
                        None => break,
                    }
                }
                end = close;
                break;
            }
            if toks[j].kind == Kind::Open && file.pair[j] != usize::MAX {
                j = file.pair[j] + 1;
                continue;
            }
            j += 1;
        }
        return (site + 1, end);
    }
    if let_bound {
        // Innermost `{` still open at `site`.
        let mut stack = vec![body_open];
        let mut j = body_open + 1;
        while j < site {
            if toks[j].is_open('{') {
                stack.push(j);
            } else if toks[j].is_close('}') {
                stack.pop();
            }
            j += 1;
        }
        let block_open = *stack.last().unwrap_or(&body_open);
        let block_close = file.pair[block_open];
        let end = if block_close == usize::MAX {
            body_close
        } else {
            block_close
        };
        (site + 1, end)
    } else {
        // Temporary: held to the end of the statement.
        let mut j = site + 1;
        while j < body_close {
            if toks[j].kind == Kind::Open && file.pair[j] != usize::MAX {
                j = file.pair[j] + 1;
                continue;
            }
            if toks[j].is_punct(";") {
                return (site + 1, j);
            }
            j += 1;
        }
        (site + 1, body_close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(srcs: &[(&str, &str)]) -> Vec<String> {
        let files: Vec<File> = srcs.iter().map(|(p, s)| File::parse(p, s)).collect();
        let mut out = Vec::new();
        check_workspace(&files, &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    const STRUCTS: &str = "pub struct A { a: Mutex<u8> }\npub struct B { b: Mutex<u8> }\n";

    #[test]
    fn inverted_lock_pair_is_a_cycle() {
        let src = format!(
            "{STRUCTS}\
             impl A {{ pub fn one(&self, o: &B) {{ let g = self.a.lock(); let h = o.b.lock(); }} }}\n\
             impl B {{ pub fn two(&self, o: &A) {{ let g = self.b.lock(); let h = o.a.lock(); }} }}\n"
        );
        let msgs = findings(&[("crates/x/src/l.rs", &src)]);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs.iter().all(|m| m.contains("is held")));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{STRUCTS}\
             impl A {{ pub fn one(&self, o: &B) {{ let g = self.a.lock(); let h = o.b.lock(); }} }}\n\
             impl B {{ pub fn two(&self, o: &A) {{ let g = o.a.lock(); let h = self.b.lock(); }} }}\n"
        );
        assert!(findings(&[("crates/x/src/l.rs", &src)]).is_empty());
    }

    #[test]
    fn temporary_guard_does_not_outlive_its_statement() {
        let src = format!(
            "{STRUCTS}\
             impl A {{ pub fn one(&self, o: &B) {{ self.a.lock().push(1); let h = o.b.lock(); }} }}\n\
             impl B {{ pub fn two(&self, o: &A) {{ self.b.lock().push(1); let h = o.a.lock(); }} }}\n"
        );
        assert!(findings(&[("crates/x/src/l.rs", &src)]).is_empty());
    }

    #[test]
    fn eval_under_lock_is_flagged_even_transitively() {
        let src = format!(
            "{STRUCTS}\
             impl A {{ pub fn one(&self) {{ let g = self.a.lock(); helper(); }} }}\n\
             fn helper() {{ run_trial(|| 1.0); }}\n"
        );
        let msgs = findings(&[("crates/x/src/l.rs", &src)]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("trial evaluation"));
        assert!(msgs[0].contains("A.a"));
    }

    #[test]
    fn cycle_through_crate_local_call_is_found() {
        let src = format!(
            "{STRUCTS}\
             impl A {{ pub fn one(&self, o: &B) {{ let g = self.a.lock(); takes_b(o); }} }}\n\
             fn takes_b(o: &B) {{ let g = o.b.lock(); }}\n\
             impl B {{ pub fn two(&self, o: &A) {{ let g = self.b.lock(); let h = o.a.lock(); }} }}\n"
        );
        let msgs = findings(&[("crates/x/src/l.rs", &src)]);
        assert!(!msgs.is_empty());
    }

    #[test]
    fn emit_api_counts_as_tracer_lock() {
        // Holding Tracer.state while calling .emit() elsewhere would need
        // the tracer struct; here: a struct holding its own lock calls
        // emit → edge X.m → Tracer.state; and tracer-side code acquiring
        // X.m while holding state closes the cycle.
        let a = "pub struct X { m: Mutex<u8> }\n\
                 impl X { pub fn go(&self, tr: &Tracer) { let g = self.m.lock(); tr.emit(ev()); } }\n";
        let b = "pub struct Tracer { state: Mutex<u8> }\n\
                 impl Tracer { pub fn emit(&self, x: &X) { let s = state.lock(); x.lockit(); } }\n\
                 impl X2 { pub fn lockit(m: &X) { let g = m.lock(); } }\n";
        let msgs = findings(&[("crates/x/src/a.rs", a), ("crates/trace/src/b.rs", b)]);
        assert!(!msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = format!(
            "{STRUCTS}\
             #[cfg(test)]\nmod tests {{\n  fn t(a: &A, b: &B) {{ let g = a.a.lock(); let h = b.b.lock(); run_trial(|| 1.0); }}\n}}\n"
        );
        assert!(findings(&[("crates/x/src/l.rs", &src)]).is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_ends_with_the_conditional() {
        // Read-through-cache pattern: the `if let` guard is dropped before
        // the write path re-locks, so no self-cycle.
        let src = format!(
            "{STRUCTS}\
             impl A {{\n\
               pub fn cached(&self) -> u8 {{\n\
                 if let Some(v) = self.a.lock().checked_add(0) {{ return v; }}\n\
                 self.a.lock().wrapping_add(1)\n\
               }}\n\
             }}\n"
        );
        assert!(
            findings(&[("crates/x/src/l.rs", &src)]).is_empty(),
            "{:?}",
            findings(&[("crates/x/src/l.rs", &src)])
        );
    }

    #[test]
    fn if_let_guard_still_covers_the_else_branch() {
        let src = format!(
            "{STRUCTS}\
             impl A {{\n\
               pub fn footgun(&self, o: &B) {{\n\
                 if let Some(_) = self.a.lock().checked_add(0) {{ }} else {{ let h = o.b.lock(); }}\n\
               }}\n\
             }}\n\
             impl B {{ pub fn two(&self, o: &A) {{ let g = self.b.lock(); let h = o.a.lock(); }} }}\n"
        );
        let msgs = findings(&[("crates/x/src/l.rs", &src)]);
        assert_eq!(msgs.len(), 2, "inverted pair via the else branch: {msgs:?}");
    }
}
