//! L13 — `stale-allow`: every `// lint:allow(rule): …` escape must still
//! suppress at least one live finding of that rule on its governed line.
//!
//! The audit runs against the *pre-suppression* finding set, so a
//! directive that currently silences a finding is live by construction.
//! A directive naming several rules is audited per rule. Directives
//! inside `#[cfg(test)]` regions are skipped (most rules do not run
//! there, so they cannot be distinguished from stale). A stale-allow
//! finding is anchored at the directive's governed line, which means a
//! deliberate keeper can itself be escaped with
//! `// lint:allow(stale-allow): <why the escape must stay>`.

use super::source::File;
use crate::diag::Diagnostic;
use std::collections::BTreeSet;

/// Audit every directive in `files` against the pre-suppression
/// `findings`; returns the stale-allow findings.
pub fn check(files: &[File], findings: &[Diagnostic]) -> Vec<Diagnostic> {
    // (path, 0-based line) pairs carrying at least one finding per rule.
    let live: BTreeSet<(String, usize, &str)> = findings
        .iter()
        .map(|d| (d.file.display().to_string(), d.line - 1, d.rule))
        .collect();
    let mut out = Vec::new();
    for file in files {
        let path = file.path.display().to_string();
        let code_lines: BTreeSet<usize> = file.toks.iter().map(|t| t.line).collect();
        for d in &file.directives {
            let governed = if d.standalone {
                code_lines
                    .iter()
                    .copied()
                    .find(|&l| l > d.line)
                    .unwrap_or(d.line)
            } else {
                d.line
            };
            // Inside a test region the suppressed rules do not run at
            // all; the directive is unverifiable, not stale.
            let in_test = file
                .toks
                .iter()
                .enumerate()
                .any(|(i, t)| t.line == governed && file.in_test[i]);
            if in_test {
                continue;
            }
            for rule in &d.rules {
                if rule == "stale-allow" {
                    continue; // the opt-out itself is never audited
                }
                if !live.contains(&(path.clone(), governed, rule.as_str())) {
                    out.push(Diagnostic {
                        rule: "stale-allow",
                        code: "L13",
                        file: file.path.clone(),
                        line: governed + 1,
                        col: d.col + 1,
                        len: "lint:allow".len(),
                        item: file
                            .toks
                            .iter()
                            .position(|t| t.line == governed)
                            .map(|i| file.item_path_of(i))
                            .unwrap_or_default(),
                        message: format!(
                            "stale escape: `lint:allow({rule})` no longer suppresses anything"
                        ),
                        help: "the rule no longer fires here — delete the lint:allow (or, to \
                               keep it deliberately, add \
                               `// lint:allow(stale-allow): <why it must stay>`)",
                        snippet: file.raw.get(d.line).cloned().unwrap_or_default(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::rules::check_file;

    fn stale(path: &str, src: &str) -> Vec<String> {
        let f = File::parse(path, src);
        let findings = check_file(&f);
        check(std::slice::from_ref(&f), &findings)
            .into_iter()
            .map(|d| d.message)
            .collect()
    }

    #[test]
    fn live_allow_is_not_stale() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-lib): checked above\n";
        assert!(stale("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_a_finding_is_stale() {
        let src = "fn f() { x.unwrap_or(3); } // lint:allow(no-panic-lib): obsolete\n";
        let msgs = stale("crates/core/src/x.rs", src);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("no-panic-lib"));
    }

    #[test]
    fn each_named_rule_is_audited_separately() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-lib, determinism): mixed\n";
        let msgs = stale("crates/core/src/x.rs", src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("determinism"));
    }

    #[test]
    fn standalone_directive_governs_next_code_line() {
        let src = "// lint:allow(no-panic-lib): init cannot fail\n\nfn f() { x.unwrap(); }\n";
        assert!(stale("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn directives_in_test_code_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap_or(1); } // lint:allow(no-panic-lib): test\n}\n";
        assert!(stale("crates/core/src/x.rs", src).is_empty());
    }
}
