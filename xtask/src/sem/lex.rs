//! Rust lexer for the semantic lint engine.
//!
//! Produces a flat token stream with precise spans. Comments and literal
//! *contents* never become matchable tokens — a rule that looks for
//! `thread_rng` sees an `Ident` token or nothing, so strings and doc
//! comments are structurally incapable of triggering findings (the old
//! line-blanking scanner achieved this by overwriting text with spaces;
//! the lexer makes it a property of the token stream itself).
//!
//! `// lint:allow(rule-a, rule-b): note` directives are harvested from
//! line comments during lexing, together with whether the comment stands
//! alone on its line (standalone directives govern the next code line).

/// Token kind. Delimiters get their own kinds so downstream passes can
/// build matched-pair maps without re-classifying punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type` → `type`).
    Ident,
    /// Lifetime (`'a` — without the quote).
    Lifetime,
    /// Any literal: string, raw string, byte string, char, number.
    /// The text is a placeholder (`"…"`, `'…'`) or the number itself;
    /// string/char contents are never exposed.
    Lit,
    /// Punctuation. Multi-char for `::`, `->`, `=>`; single char otherwise.
    Punct,
    /// Opening delimiter: `(`, `[`, `{`.
    Open,
    /// Closing delimiter: `)`, `]`, `}`.
    Close,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    /// 0-based source line of the token's first byte.
    pub line: usize,
    /// 0-based byte column of the token's first byte within its line.
    pub col: usize,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }
    pub fn is_open(&self, c: char) -> bool {
        self.kind == Kind::Open && self.text.as_bytes()[0] == c as u8
    }
    pub fn is_close(&self, c: char) -> bool {
        self.kind == Kind::Close && self.text.as_bytes()[0] == c as u8
    }
}

/// A `lint:allow` directive found in a line comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 0-based line the comment sits on.
    pub line: usize,
    /// 0-based byte column where the `//` begins.
    pub col: usize,
    /// True when no code token starts on the same line before the comment
    /// (the directive then governs the next line that carries code).
    pub standalone: bool,
    /// Rule ids named in the parentheses.
    pub rules: Vec<String>,
}

/// Lexer output: the token stream plus harvested directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub directives: Vec<Directive>,
}

/// Lex `text` into tokens and directives. Never fails: unknown bytes are
/// skipped (the real compiler will reject them; the linter stays quiet).
pub fn lex(text: &str) -> Lexed {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 0usize;
    let mut col = 0usize;
    // Does any already-emitted token sit on the current line?
    let mut line_has_code = false;

    macro_rules! advance {
        ($n:expr) => {{
            for k in 0..$n {
                if chars[i + k] == '\n' {
                    line += 1;
                    col = 0;
                    line_has_code = false;
                } else {
                    col += 1;
                }
            }
            i += $n;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            advance!(1);
            continue;
        }
        // Line comment. Harvest lint:allow — but not from doc comments
        // (`///`, `//!`): those are documentation, which may *mention*
        // directives without enacting them.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_col = col;
            let standalone = !line_has_code;
            let is_doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
            let mut body = String::new();
            let mut j = i;
            while j < chars.len() && chars[j] != '\n' {
                body.push(chars[j]);
                j += 1;
            }
            if !is_doc {
                harvest_directive(&body, line, start_col, standalone, &mut out.directives);
            }
            advance!(j - i);
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            advance!(j - i);
            continue;
        }
        // Raw / byte / c-string prefixes and raw identifiers.
        if (c == 'r' || c == 'b' || c == 'c') && !prev_is_ident(&chars, i) {
            if let Some(consumed) = try_prefixed_string(&chars, i) {
                out.toks.push(Tok {
                    kind: Kind::Lit,
                    text: "\"…\"".to_string(),
                    line,
                    col,
                });
                line_has_code = true;
                advance!(consumed);
                continue;
            }
            if c == 'r' && chars.get(i + 1) == Some(&'#') {
                // Raw identifier r#type.
                let mut j = i + 2;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                if j > i + 2 {
                    out.toks.push(Tok {
                        kind: Kind::Ident,
                        text: chars[i + 2..j].iter().collect(),
                        line,
                        col,
                    });
                    line_has_code = true;
                    advance!(j - i);
                    continue;
                }
            }
        }
        // Plain string literal.
        if c == '"' {
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                } else if chars[j] == '"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: Kind::Lit,
                text: "\"…\"".to_string(),
                line,
                col,
            });
            line_has_code = true;
            advance!(j.min(chars.len()) - i);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1);
            let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || *n == '_')
                && chars.get(i + 2) != Some(&'\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: Kind::Lifetime,
                    text: chars[i + 1..j].iter().collect(),
                    line,
                    col,
                });
                line_has_code = true;
                advance!(j - i);
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                } else if chars[j] == '\'' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: Kind::Lit,
                text: "'…'".to_string(),
                line,
                col,
            });
            line_has_code = true;
            advance!(j.min(chars.len()) - i);
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: Kind::Ident,
                text: chars[i..j].iter().collect(),
                line,
                col,
            });
            line_has_code = true;
            advance!(j - i);
            continue;
        }
        // Number literal (incl. 0xff, 1_000, 1.5e-3, 1.0f64). A `.` is
        // consumed only when not starting a `..` range.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < chars.len() {
                let d = chars[j];
                if is_ident_char(d) {
                    // Exponent sign: 1e-5 / 1E+5.
                    if (d == 'e' || d == 'E')
                        && matches!(chars.get(j + 1), Some('+') | Some('-'))
                        && chars.get(j + 2).is_some_and(|x| x.is_ascii_digit())
                    {
                        j += 2;
                    }
                    j += 1;
                } else if d == '.'
                    && chars.get(j + 1) != Some(&'.')
                    && chars
                        .get(j + 1)
                        .is_none_or(|n| !n.is_alphabetic() || *n == 'e' || *n == 'E' || *n == 'f')
                {
                    j += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: Kind::Lit,
                text: chars[i..j].iter().collect(),
                line,
                col,
            });
            line_has_code = true;
            advance!(j - i);
            continue;
        }
        // Delimiters.
        if matches!(c, '(' | '[' | '{') {
            out.toks.push(Tok {
                kind: Kind::Open,
                text: c.to_string(),
                line,
                col,
            });
            line_has_code = true;
            advance!(1);
            continue;
        }
        if matches!(c, ')' | ']' | '}') {
            out.toks.push(Tok {
                kind: Kind::Close,
                text: c.to_string(),
                line,
                col,
            });
            line_has_code = true;
            advance!(1);
            continue;
        }
        // Multi-char puncts the item parser relies on.
        let two: Option<&str> = match (c, chars.get(i + 1)) {
            (':', Some(':')) => Some("::"),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            _ => None,
        };
        if let Some(p) = two {
            out.toks.push(Tok {
                kind: Kind::Punct,
                text: p.to_string(),
                line,
                col,
            });
            line_has_code = true;
            advance!(2);
            continue;
        }
        // Single-char punct.
        out.toks.push(Tok {
            kind: Kind::Punct,
            text: c.to_string(),
            line,
            col,
        });
        line_has_code = true;
        advance!(1);
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(chars[i - 1])
}

/// At `chars[i]` ∈ {r, b, c}: if a (possibly raw, possibly byte/c) string
/// literal opens here, return the total consumed length.
fn try_prefixed_string(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    // Up to two prefix letters (br, rb? — rust allows br"" and cr"").
    let mut prefix = 0;
    while prefix < 2 && matches!(chars.get(j), Some('r') | Some('b') | Some('c')) {
        j += 1;
        prefix += 1;
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    // Raw form requires the 'r' to be present when hashes > 0; a plain
    // b"…" has zero hashes and no 'r'. Either way `j` sits on the quote.
    let raw = chars[i..j].contains(&'r');
    j += 1;
    if raw {
        while j < chars.len() {
            if chars[j] == '"' && (1..=hashes).all(|k| chars.get(j + k) == Some(&'#')) {
                return Some(j + hashes + 1 - i);
            }
            j += 1;
        }
        Some(chars.len() - i)
    } else {
        if hashes > 0 {
            return None;
        }
        while j < chars.len() {
            if chars[j] == '\\' {
                j += 2;
            } else if chars[j] == '"' {
                return Some(j + 1 - i);
            } else {
                j += 1;
            }
        }
        Some(chars.len() - i)
    }
}

/// Parse `lint:allow(rule-a, rule-b): note` out of one comment body.
fn harvest_directive(
    comment: &str,
    line: usize,
    col: usize,
    standalone: bool,
    out: &mut Vec<Directive>,
) {
    let Some(pos) = comment.find("lint:allow(") else {
        return;
    };
    let rest = &comment[pos + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if !rules.is_empty() {
        out.push(Directive {
            line,
            col,
            standalone,
            rules,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_matchable_idents() {
        let src = "let a = \"thread_rng()\"; // unwrap() in a comment\nlet b = r#\"panic!()\"#;";
        assert_eq!(idents(src), vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == Kind::Lifetime && t.text == "a"));
        assert_eq!(l.toks.iter().filter(|t| t.kind == Kind::Lit).count(), 1);
    }

    #[test]
    fn spans_are_line_and_col_accurate() {
        let l = lex("ab\n  cd(e)");
        let cd = l.toks.iter().find(|t| t.text == "cd").unwrap();
        assert_eq!((cd.line, cd.col), (1, 2));
        let open = l.toks.iter().find(|t| t.kind == Kind::Open).unwrap();
        assert_eq!((open.line, open.col), (1, 4));
    }

    #[test]
    fn directives_track_standalone_and_trailing() {
        let src = "x.unwrap(); // lint:allow(no-panic-lib): safe\n// lint:allow(determinism, nan-ordering)\ny();";
        let l = lex(src);
        assert_eq!(l.directives.len(), 2);
        assert!(!l.directives[0].standalone);
        assert_eq!(l.directives[0].rules, vec!["no-panic-lib"]);
        assert!(l.directives[1].standalone);
        assert_eq!(l.directives[1].rules, vec!["determinism", "nan-ordering"]);
    }

    #[test]
    fn doc_comments_may_mention_directives_without_enacting_them() {
        let src = "/// Suppress with `// lint:allow(no-panic-lib)` inline.\n\
                   //! Or `// lint:allow(determinism): note` at file level.\n\
                   // lint:allow(nan-ordering): this one is real\n\
                   y();";
        let l = lex(src);
        assert_eq!(l.directives.len(), 1, "{:?}", l.directives);
        assert_eq!(l.directives[0].rules, vec!["nan-ordering"]);
    }

    #[test]
    fn double_colon_and_arrows_are_joined() {
        let l = lex("a::b -> c => d");
        let puncts: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == Kind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>"]);
    }

    #[test]
    fn numbers_with_ranges_and_exponents() {
        let l = lex("0..10 1.5e-3 0xff 1_000 v.0");
        let lits: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == Kind::Lit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["0", "10", "1.5e-3", "0xff", "1_000", "0"]);
    }

    #[test]
    fn raw_identifiers_lex_to_their_name() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }
}
