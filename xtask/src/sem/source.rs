//! Per-file model for the semantic engine: raw lines for diagnostics,
//! the token stream, a matched-delimiter map, parsed items, and the
//! resolved `lint:allow` line sets.

use super::ast::{self, Item};
use super::lex::{self, Directive, Kind, Tok};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A fully analyzed source file, ready for rule passes.
#[derive(Debug)]
pub struct File {
    /// Workspace-relative path (forward slashes).
    pub path: PathBuf,
    /// Original source lines, for snippets.
    pub raw: Vec<String>,
    /// Flat token stream.
    pub toks: Vec<Tok>,
    /// `pair[i]` — for an `Open` token, index of its matching `Close`;
    /// for a `Close`, index of its `Open`; `usize::MAX` otherwise
    /// (including unbalanced delimiters).
    pub pair: Vec<usize>,
    /// All parsed items (functions carry token ranges and scope paths).
    pub items: Vec<Item>,
    /// `in_test[i]` — token `i` lies inside a `#[cfg(test)]` item or a
    /// `#[test]` function.
    pub in_test: Vec<bool>,
    /// Raw directives, for the stale-allow audit.
    pub directives: Vec<Directive>,
    /// `allow[line]` — rule ids suppressed on that 0-based line.
    pub allow: Vec<BTreeSet<String>>,
}

impl File {
    /// Lex + parse `text` as the contents of workspace-relative `path`.
    pub fn parse(path: impl Into<PathBuf>, text: &str) -> File {
        let path = path.into();
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let lex::Lexed { toks, directives } = lex::lex(text);
        let pair = match_delims(&toks);
        let items = ast::parse(&toks, &pair);
        let in_test = ast::test_mask(&toks, &items);
        let allow = attach_directives(raw.len(), &toks, &directives);
        File {
            path,
            raw,
            toks,
            pair,
            items,
            in_test,
            directives,
            allow,
        }
    }

    /// Read and parse a file on disk; the stored path is relative to `root`.
    pub fn read(root: &Path, abs: &Path) -> std::io::Result<File> {
        let text = std::fs::read_to_string(abs)?;
        let rel = abs.strip_prefix(root).unwrap_or(abs);
        Ok(File::parse(rel, &text))
    }

    /// Workspace path with forward slashes, for scope predicates.
    pub fn path_str(&self) -> String {
        self.path.to_string_lossy().replace('\\', "/")
    }

    /// Is `rule` suppressed on the line of token `tok_idx`?
    pub fn is_allowed_tok(&self, tok_idx: usize, rule: &str) -> bool {
        self.toks
            .get(tok_idx)
            .is_some_and(|t| self.is_allowed_line(t.line, rule))
    }

    /// Is `rule` suppressed on 0-based line `line`?
    pub fn is_allowed_line(&self, line: usize, rule: &str) -> bool {
        self.allow.get(line).is_some_and(|s| s.contains(rule))
    }

    /// The raw source line of token `i` (for snippets).
    pub fn line_of(&self, i: usize) -> String {
        self.toks
            .get(i)
            .and_then(|t| self.raw.get(t.line))
            .cloned()
            .unwrap_or_default()
    }

    /// Innermost item path (`Type::method`, `mod::fn`, …) containing
    /// token `i`; empty string for file-level tokens.
    pub fn item_path_of(&self, i: usize) -> String {
        let mut best: Option<&Item> = None;
        for item in &self.items {
            if let Item::Fn(f) = item {
                if f.body_range().is_some_and(|(s, e)| s <= i && i <= e)
                    || (f.sig_start <= i && i <= f.sig_end)
                {
                    let better = match best {
                        Some(Item::Fn(b)) => f.sig_start >= b.sig_start,
                        _ => true,
                    };
                    if better {
                        best = Some(item);
                    }
                }
            }
        }
        match best {
            Some(Item::Fn(f)) => f.path.clone(),
            _ => String::new(),
        }
    }
}

/// Compute the matched-delimiter map.
fn match_delims(toks: &[Tok]) -> Vec<usize> {
    let mut pair = vec![usize::MAX; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            Kind::Open => stack.push(i),
            Kind::Close => {
                if let Some(open) = stack.pop() {
                    pair[open] = i;
                    pair[i] = open;
                }
            }
            _ => {}
        }
    }
    pair
}

/// Resolve directives to the lines they govern: same line for trailing
/// comments, the next line carrying a token for standalone comment lines.
fn attach_directives(
    n_lines: usize,
    toks: &[Tok],
    directives: &[Directive],
) -> Vec<BTreeSet<String>> {
    let mut allow = vec![BTreeSet::new(); n_lines];
    let code_lines: BTreeSet<usize> = toks.iter().map(|t| t.line).collect();
    for d in directives {
        let target = if d.standalone {
            code_lines
                .iter()
                .copied()
                .find(|&l| l > d.line)
                .unwrap_or(d.line)
        } else {
            d.line
        };
        if let Some(set) = allow.get_mut(target) {
            set.extend(d.rules.iter().cloned());
        }
    }
    allow
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_map_matches_nested_delims() {
        let f = File::parse("x.rs", "fn f(a: (u8, u8)) { [1, 2]; }");
        for (i, t) in f.toks.iter().enumerate() {
            if t.kind == Kind::Open {
                let j = f.pair[i];
                assert!(f.toks[j].kind == Kind::Close);
                assert_eq!(f.pair[j], i);
            }
        }
    }

    #[test]
    fn allow_attaches_to_own_or_next_code_line() {
        let src = "a.unwrap(); // lint:allow(no-panic-lib): safe\n// lint:allow(determinism)\n\nthread_rng();\n";
        let f = File::parse("x.rs", src);
        assert!(f.is_allowed_line(0, "no-panic-lib"));
        assert!(!f.is_allowed_line(0, "determinism"));
        // Standalone directive skips the blank line to the code line.
        assert!(f.is_allowed_line(3, "determinism"));
    }

    #[test]
    fn item_path_of_finds_innermost_fn() {
        let src = "impl Cache {\n    fn get(&self) { self.x.unwrap(); }\n}\nfn free() {}\n";
        let f = File::parse("crates/x/src/lib.rs", src);
        let unwrap_idx = f.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(f.item_path_of(unwrap_idx), "Cache::get");
    }
}
