//! The source-level rule families of `cargo xtask lint`.
//!
//! | code | rule id             | scope                                    |
//! |------|---------------------|------------------------------------------|
//! | L1   | `no-panic-lib`      | library code of the seven product crates |
//! | L2   | `determinism`       | every workspace source file              |
//! | L3   | `ordered-iteration` | the five ordering-sensitive modules      |
//! | L4   | `nan-ordering`      | every workspace source file              |
//! | L6   | `no-adhoc-threads`  | everything outside `crates/parallel/`    |
//! | L7   | `no-adhoc-catch-unwind` | everything outside `crates/parallel/` |
//! | L8   | `no-adhoc-memo`     | everything outside `crates/parallel/`    |
//! | L9   | `no-adhoc-print`    | library code (bins, tests, examples exempt) |
//!
//! (L5, `manifest-hygiene`, lives in [`crate::manifest`] — it checks
//! `Cargo.toml` files, not Rust sources.)
//!
//! All matching happens on blanked text (see [`crate::scan`]), so strings
//! and comments can never trigger a rule. Each hit can be suppressed with
//! `// lint:allow(rule-id): justification` on the same or preceding line.

use crate::diag::Diagnostic;
use crate::scan::SourceFile;

/// Crates whose `src/` trees count as library code for `no-panic-lib`.
pub const PANIC_FREE_CRATES: [&str; 7] =
    ["core", "knowledge", "hpo", "ml", "nn", "data", "parallel"];

/// Modules where iteration order is observable in outputs (serialized
/// artifacts, reports, GA populations) and hash iteration is banned.
pub const ORDER_SENSITIVE_MODULES: [&str; 5] = [
    "crates/knowledge/src/graph.rs",
    "crates/knowledge/src/acquisition.rs",
    "crates/core/src/dmd.rs",
    "crates/hpo/src/ga.rs",
    "crates/bench/src/report.rs",
];

/// Run every source rule applicable to `file`.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    no_panic_lib(file, &mut out);
    determinism(file, &mut out);
    ordered_iteration(file, &mut out);
    nan_ordering(file, &mut out);
    no_adhoc_threads(file, &mut out);
    no_adhoc_catch_unwind(file, &mut out);
    no_adhoc_memo(file, &mut out);
    no_adhoc_print(file, &mut out);
    out
}

/// Byte offset → 1-based display column for a match in `line`; `span` is
/// the `(byte offset, length)` pair produced by [`find_all`].
fn diag(
    file: &SourceFile,
    idx: usize,
    span: (usize, usize),
    rule: &'static str,
    code: &'static str,
    message: String,
    help: &'static str,
) -> Diagnostic {
    Diagnostic {
        rule,
        code,
        file: file.path.clone(),
        line: idx + 1,
        col: span.0 + 1,
        len: span.1,
        message,
        help,
        snippet: file.raw.get(idx).cloned().unwrap_or_default(),
    }
}

/// Every match of `needle` in `hay` as (byte offset, length).
fn find_all(hay: &str, needle: &str) -> Vec<(usize, usize)> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        hits.push((from + p, needle.len()));
        from += p + needle.len().max(1);
    }
    hits
}

/// Is the match at `pos` a standalone identifier (not a substring of a
/// longer path segment like `MyHashMapWrapper`)?
fn ident_boundary(hay: &str, pos: usize, len: usize) -> bool {
    let before = hay[..pos].chars().next_back();
    let after = hay[pos + len..].chars().next();
    let is_ident = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
    !is_ident(before) && !is_ident(after)
}

/// Does `file` live under `crates/<name>/src/` for one of the panic-free
/// crates? (Integration tests, benches and bins are exempt.)
fn is_panic_free_lib(file: &SourceFile) -> bool {
    let p = file.path.to_string_lossy().replace('\\', "/");
    PANIC_FREE_CRATES
        .iter()
        .any(|c| p.starts_with(&format!("crates/{c}/src/")))
}

/// L1 — `no-panic-lib`: no `unwrap()` / `expect(..)` / `panic!` family in
/// library code. Inline `#[cfg(test)]` modules are exempt.
fn no_panic_lib(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_panic_free_lib(file) {
        return;
    }
    const PATTERNS: [(&str, &str); 6] = [
        (".unwrap()", "`.unwrap()` in library code"),
        (".expect(", "`.expect(..)` in library code"),
        ("panic!(", "`panic!` in library code"),
        ("unreachable!(", "`unreachable!` in library code"),
        ("todo!(", "`todo!` in library code"),
        ("unimplemented!(", "`unimplemented!` in library code"),
    ];
    for (idx, line) in file.clean.iter().enumerate() {
        if file.in_test[idx] || file.is_allowed(idx, "no-panic-lib") {
            continue;
        }
        for (pat, msg) in PATTERNS {
            for (col, len) in find_all(line, pat) {
                // `.expect(` must not match `.expect_err(`; the trailing
                // `(` in the pattern already guarantees that. `panic!` must
                // be its own token (not `core::panic!` — still a panic, so
                // no boundary check on the left for macro patterns).
                if pat == ".unwrap()" && !ident_boundary(line, col + 1, len - 3) {
                    continue;
                }
                out.push(diag(
                    file,
                    idx,
                    (col, len),
                    "no-panic-lib",
                    "L1",
                    msg.to_string(),
                    "return a Result (see each crate's error type), or append \
                     `// lint:allow(no-panic-lib): <why it cannot fire>`",
                ));
            }
        }
    }
}

/// L2 — `determinism`: no ambient or time-derived randomness anywhere.
/// All entropy must flow through a caller-provided seed.
fn determinism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const BANNED: [(&str, &str); 4] = [
        (
            "thread_rng(",
            "ambient RNG (`thread_rng`) breaks reproducibility",
        ),
        ("rand::random", "`rand::random` draws from ambient entropy"),
        (
            "from_entropy(",
            "`from_entropy` seeds from the OS, not the caller",
        ),
        (
            "RandomState",
            "`RandomState` hashing is randomized per process",
        ),
    ];
    for (idx, line) in file.clean.iter().enumerate() {
        if file.is_allowed(idx, "determinism") {
            continue;
        }
        for (pat, msg) in BANNED {
            for (col, len) in find_all(line, pat) {
                out.push(diag(
                    file,
                    idx,
                    (col, len),
                    "determinism",
                    "L2",
                    msg.to_string(),
                    "thread an explicit `StdRng::seed_from_u64(seed)` through the call chain",
                ));
            }
        }
        // Time-derived seeds: a seeding call and a clock read on one line.
        if line.contains("seed_from_u64(")
            && (line.contains("now()") || line.contains("UNIX_EPOCH") || line.contains(".elapsed("))
        {
            let span = find_all(line, "seed_from_u64(")[0];
            out.push(diag(
                file,
                idx,
                span,
                "determinism",
                "L2",
                "seed derived from the clock".to_string(),
                "accept the seed as a parameter instead of reading a clock",
            ));
        }
    }
}

/// L3 — `ordered-iteration`: the modules whose outputs are
/// ordering-sensitive must not use `HashMap`/`HashSet` at all — iteration
/// order would leak into serialized artifacts and reports. Use
/// `BTreeMap`/`BTreeSet`, or sort explicitly and `lint:allow` the site.
fn ordered_iteration(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    if !ORDER_SENSITIVE_MODULES.iter().any(|m| p == *m) {
        return;
    }
    for (idx, line) in file.clean.iter().enumerate() {
        if file.is_allowed(idx, "ordered-iteration") {
            continue;
        }
        for pat in ["HashMap", "HashSet"] {
            for (col, len) in find_all(line, pat) {
                if !ident_boundary(line, col, len) {
                    continue;
                }
                out.push(diag(
                    file,
                    idx,
                    (col, len),
                    "ordered-iteration",
                    "L3",
                    format!("`{pat}` in an ordering-sensitive module"),
                    "use BTreeMap/BTreeSet, or collect-and-sort before iterating and \
                     `// lint:allow(ordered-iteration): <how order is restored>`",
                ));
            }
        }
    }
}

/// L4 — `nan-ordering`: `partial_cmp(..).unwrap()` panics on NaN; float
/// orderings must go through `total_cmp` (or the shared `f64_key` helper).
fn nan_ordering(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.clean.iter().enumerate() {
        if file.is_allowed(idx, "nan-ordering") {
            continue;
        }
        for (col, len) in find_all(line, "partial_cmp") {
            let rest = &line[col + len..];
            if rest.contains(".unwrap()") || rest.contains(".expect(") {
                out.push(diag(
                    file,
                    idx,
                    (col, len),
                    "nan-ordering",
                    "L4",
                    "`partial_cmp(..).unwrap()` panics on NaN".to_string(),
                    "use `f64::total_cmp` (or `automodel_invariant::f64_key`) for a total order",
                ));
            }
        }
    }
}

/// L6 — `no-adhoc-threads`: hand-rolled worker pools (`crossbeam::scope`,
/// `std::thread::spawn`/`scope`) are banned outside `crates/parallel/` —
/// every parallel evaluation must go through the shared deterministic
/// `Executor`, whose index-ordered claims and ordered reduction keep results
/// thread-count invariant. Inline `#[cfg(test)]` modules are exempt (a test
/// may spawn a thread to exercise concurrency directly).
fn no_adhoc_threads(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    if p.starts_with("crates/parallel/") {
        return;
    }
    const PATTERNS: [(&str, &str); 4] = [
        ("crossbeam::scope(", "ad-hoc `crossbeam::scope` worker pool"),
        ("thread::spawn(", "ad-hoc `thread::spawn`"),
        ("thread::scope(", "ad-hoc `thread::scope` worker pool"),
        ("thread::Builder", "ad-hoc `thread::Builder` spawn"),
    ];
    for (idx, line) in file.clean.iter().enumerate() {
        if file.in_test[idx] || file.is_allowed(idx, "no-adhoc-threads") {
            continue;
        }
        for (pat, msg) in PATTERNS {
            for (col, len) in find_all(line, pat) {
                out.push(diag(
                    file,
                    idx,
                    (col, len),
                    "no-adhoc-threads",
                    "L6",
                    msg.to_string(),
                    "use `automodel_parallel::Executor::map` (or `map_budgeted`) so results \
                     stay deterministic at any thread count, or append \
                     `// lint:allow(no-adhoc-threads): <why the executor cannot serve here>`",
                ));
            }
        }
    }
}

/// L7 — `no-adhoc-catch-unwind`: `catch_unwind` outside `crates/parallel/`
/// scatters panic handling across the codebase and loses the failure
/// taxonomy. All panic containment must go through
/// `automodel_parallel::contain`, which converts a panic into
/// `TrialOutcome::Panicked` with the payload preserved and feeds the retry /
/// quarantine machinery. Inline `#[cfg(test)]` modules are exempt (a test may
/// assert on a panic directly).
fn no_adhoc_catch_unwind(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    if p.starts_with("crates/parallel/") {
        return;
    }
    for (idx, line) in file.clean.iter().enumerate() {
        if file.in_test[idx] || file.is_allowed(idx, "no-adhoc-catch-unwind") {
            continue;
        }
        for (col, len) in find_all(line, "catch_unwind") {
            // Identifier boundary: `no_adhoc_catch_unwind` (this rule's own
            // name) must not match, only the function itself.
            let preceded_by_ident = col > 0 && {
                let b = line.as_bytes()[col - 1];
                b.is_ascii_alphanumeric() || b == b'_'
            };
            if preceded_by_ident {
                continue;
            }
            out.push(diag(
                file,
                idx,
                (col, len),
                "no-adhoc-catch-unwind",
                "L7",
                "ad-hoc `catch_unwind` outside the containment layer".to_string(),
                "route the evaluation through `automodel_parallel::contain` (or `run_trial`) \
                 so the panic joins the TrialOutcome taxonomy, or append \
                 `// lint:allow(no-adhoc-catch-unwind): <why containment cannot serve here>`",
            ));
        }
    }
}

/// L8 — `no-adhoc-memo`: maps keyed on `Config` outside `crates/parallel/`
/// are ad-hoc memoization — each one re-invents result caching with its own
/// key normalization (usually none: `Config` floats make `Hash` impls
/// NaN-hostile and `-0.0`-ambiguous) and escapes the hit/miss telemetry and
/// capacity bound of the shared cache. All trial-result memoization must go
/// through `automodel_parallel::TrialCache` keyed by the canonical
/// fingerprint (`Config::cache_key` / `SearchSpace::cache_key`). Inline
/// `#[cfg(test)]` modules are exempt (a test may build a map to assert on
/// cache behavior directly).
fn no_adhoc_memo(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    if p.starts_with("crates/parallel/") {
        return;
    }
    const PATTERNS: [(&str, &str); 4] = [
        (
            "HashMap<Config",
            "ad-hoc memoization: `HashMap` keyed on `Config`",
        ),
        (
            "HashMap<&Config",
            "ad-hoc memoization: `HashMap` keyed on `&Config`",
        ),
        (
            "BTreeMap<Config",
            "ad-hoc memoization: `BTreeMap` keyed on `Config`",
        ),
        (
            "BTreeMap<&Config",
            "ad-hoc memoization: `BTreeMap` keyed on `&Config`",
        ),
    ];
    for (idx, line) in file.clean.iter().enumerate() {
        if file.in_test[idx] || file.is_allowed(idx, "no-adhoc-memo") {
            continue;
        }
        for (pat, msg) in PATTERNS {
            for (col, len) in find_all(line, pat) {
                // `HashMap<ConfigId, ..>` and friends are not Config keys —
                // require the key type to end exactly at `Config`.
                let key_end = col + len;
                let next = line[key_end..].chars().next();
                if next.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    continue;
                }
                out.push(diag(
                    file,
                    idx,
                    (col, len),
                    "no-adhoc-memo",
                    "L8",
                    msg.to_string(),
                    "route memoization through `automodel_parallel::TrialCache` keyed by \
                     `Config::cache_key()` (canonical fingerprint, telemetry, capacity bound), \
                     or append `// lint:allow(no-adhoc-memo): <why the shared cache cannot \
                     serve here>`",
                ));
            }
        }
    }
}

/// L9 — `no-adhoc-print`: bare `println!`/`eprintln!`/`print!`/`eprint!` in
/// library code bypasses the structured tracing layer — the output escapes
/// trace capture, cannot be replayed, and is invisible to the summary
/// counters. Narration belongs in `TraceEvent`s emitted through a `Tracer`
/// (with `ProgressSink` as the one sanctioned stderr writer). Exempt:
/// binary entry points (`src/bin/`, `src/main.rs` — tables, JSON, and
/// summary renders are their job), `crates/trace/src/` (the sink layer
/// itself), `xtask/` (the lint tool's own diagnostics), `examples/`,
/// `tests/`, `benches/`, and inline `#[cfg(test)]` modules.
fn no_adhoc_print(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    let exempt = p.contains("src/bin/")
        || p.ends_with("src/main.rs")
        || p.starts_with("crates/trace/src/")
        || p.starts_with("xtask/")
        || p.contains("examples/")
        || p.contains("tests/")
        || p.contains("benches/");
    if exempt {
        return;
    }
    const PATTERNS: [(&str, &str); 4] = [
        ("println!(", "ad-hoc `println!` in library code"),
        ("eprintln!(", "ad-hoc `eprintln!` in library code"),
        ("print!(", "ad-hoc `print!` in library code"),
        ("eprint!(", "ad-hoc `eprint!` in library code"),
    ];
    for (idx, line) in file.clean.iter().enumerate() {
        if file.in_test[idx] || file.is_allowed(idx, "no-adhoc-print") {
            continue;
        }
        for (pat, msg) in PATTERNS {
            for (col, len) in find_all(line, pat) {
                // `eprintln!(` contains `println!(` (and `eprint!(` contains
                // `print!(`) as a suffix — require a non-identifier char on
                // the left so each call yields exactly one finding.
                let preceded_by_ident = col > 0 && {
                    let b = line.as_bytes()[col - 1];
                    b.is_ascii_alphanumeric() || b == b'_'
                };
                if preceded_by_ident {
                    continue;
                }
                out.push(diag(
                    file,
                    idx,
                    (col, len),
                    "no-adhoc-print",
                    "L9",
                    msg.to_string(),
                    "emit a `TraceEvent` through the run's `Tracer` (narration reaches stderr \
                     via `ProgressSink` and capture via the configured sinks), or append \
                     `// lint:allow(no-adhoc-print): <why tracing cannot serve here>`",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/x.rs", src)
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let f = lib("let a = x.unwrap_or_else(|| 3);\nlet b = y.unwrap_or(4);\n");
        assert!(check_file(&f).is_empty());
    }

    #[test]
    fn expect_err_is_not_flagged() {
        let f = lib("let a = r.expect_err(msg);\n");
        assert!(check_file(&f).is_empty());
    }

    #[test]
    fn bench_crate_may_unwrap() {
        let f = SourceFile::parse("crates/bench/src/x.rs", "x.unwrap();\n");
        assert!(check_file(&f).is_empty());
    }

    #[test]
    fn catch_unwind_is_flagged_outside_parallel() {
        let f = lib("let r = std::panic::catch_unwind(|| eval());\n");
        let d = check_file(&f);
        assert_eq!(
            d.iter()
                .filter(|d| d.rule == "no-adhoc-catch-unwind")
                .count(),
            1
        );
    }

    #[test]
    fn catch_unwind_is_legal_inside_parallel() {
        let f = SourceFile::parse(
            "crates/parallel/src/fault.rs",
            "let r = catch_unwind(AssertUnwindSafe(f));\n",
        );
        assert!(check_file(&f)
            .iter()
            .all(|d| d.rule != "no-adhoc-catch-unwind"));
    }

    #[test]
    fn catch_unwind_allow_escape_works() {
        let f = lib(
            "// lint:allow(no-adhoc-catch-unwind): ffi boundary\nlet r = std::panic::catch_unwind(g);\n",
        );
        assert!(check_file(&f)
            .iter()
            .all(|d| d.rule != "no-adhoc-catch-unwind"));
    }

    #[test]
    fn config_keyed_map_is_flagged_outside_parallel() {
        let f = lib("let memo: HashMap<Config, f64> = HashMap::new();\n");
        let d = check_file(&f);
        assert_eq!(d.iter().filter(|d| d.rule == "no-adhoc-memo").count(), 1);
        let f = lib("let memo: BTreeMap<&Config, TrialOutcome> = BTreeMap::new();\n");
        let d = check_file(&f);
        assert_eq!(d.iter().filter(|d| d.rule == "no-adhoc-memo").count(), 1);
    }

    #[test]
    fn config_prefixed_key_types_are_not_flagged() {
        // `ConfigId` is a different type — the key must end exactly at Config.
        let f = lib("let m: HashMap<ConfigId, f64> = HashMap::new();\n");
        assert!(check_file(&f).iter().all(|d| d.rule != "no-adhoc-memo"));
    }

    #[test]
    fn config_keyed_map_is_legal_inside_parallel() {
        let f = SourceFile::parse(
            "crates/parallel/src/cache.rs",
            "let m: BTreeMap<Config, CachedTrial> = BTreeMap::new();\n",
        );
        assert!(check_file(&f).iter().all(|d| d.rule != "no-adhoc-memo"));
    }

    #[test]
    fn adhoc_memo_allow_escape_works() {
        let f = lib(
            "// lint:allow(no-adhoc-memo): population bookkeeping, not a result cache\nlet m: HashMap<Config, usize> = HashMap::new();\n",
        );
        assert!(check_file(&f).iter().all(|d| d.rule != "no-adhoc-memo"));
    }

    #[test]
    fn library_print_is_flagged_once_per_call() {
        // One finding per macro call: `eprintln!(` must not double-count as
        // `println!(`, nor `eprint!(` as `print!(`.
        let f = SourceFile::parse(
            "crates/bench/src/report.rs",
            "println!(\"a\");\neprintln!(\"b\");\nprint!(\"c\");\neprint!(\"d\");\n",
        );
        let d = check_file(&f);
        assert_eq!(d.iter().filter(|d| d.rule == "no-adhoc-print").count(), 4);
    }

    #[test]
    fn bin_main_tests_and_trace_crate_may_print() {
        for path in [
            "crates/bench/src/bin/exp_x.rs",
            "src/main.rs",
            "src/bin/tool.rs",
            "crates/trace/src/sink.rs",
            "xtask/src/diag.rs",
            "examples/demo.rs",
            "tests/end_to_end.rs",
            "crates/hpo/benches/ga.rs",
        ] {
            let f = SourceFile::parse(path, "println!(\"ok\");\n");
            assert!(
                check_file(&f).iter().all(|d| d.rule != "no-adhoc-print"),
                "{path} should be exempt from no-adhoc-print"
            );
        }
    }

    #[test]
    fn print_in_inline_test_module_is_exempt() {
        let f = lib("#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n");
        assert!(check_file(&f).iter().all(|d| d.rule != "no-adhoc-print"));
    }

    #[test]
    fn print_in_string_or_comment_never_fires() {
        let f = lib("// println!(\"doc\")\nlet s = \"println!(now)\";\n");
        assert!(check_file(&f).iter().all(|d| d.rule != "no-adhoc-print"));
    }

    #[test]
    fn adhoc_print_allow_escape_works() {
        let f = lib("// lint:allow(no-adhoc-print): table rendering is this type's output\nprintln!(\"{t}\");\n");
        assert!(check_file(&f).iter().all(|d| d.rule != "no-adhoc-print"));
    }

    #[test]
    fn clock_seed_is_one_finding() {
        let f = lib("let rng = StdRng::seed_from_u64(SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_secs());\n");
        let d = check_file(&f);
        // One determinism hit; the `.unwrap()` also trips L1 independently.
        assert_eq!(d.iter().filter(|d| d.rule == "determinism").count(), 1);
    }
}
