//! L5 — `manifest-hygiene`: workspace manifest checks.
//!
//! * every `[workspace.dependencies]` entry is consumed by at least one
//!   member crate (no dead entries);
//! * every dependency of a member crate resolves through the workspace
//!   table (`dep.workspace = true`) or a workspace-internal `path` — never
//!   an ad-hoc version string;
//! * `[workspace.package]` pins `rust-version` (the MSRV) and a real
//!   `repository` URL (no `example.com` placeholder);
//! * every member inherits the MSRV (`rust-version.workspace = true`) and
//!   opts into the shared lint wall (`[lints] workspace = true`).
//!
//! The `vendor/` shims are exempt: they stand in for third-party crates
//! and deliberately keep self-contained metadata.
//!
//! Parsing is a deliberately small line-based TOML subset — sections,
//! `key = value`, dotted keys and single-line inline tables — which covers
//! every manifest in this workspace (and the fixtures in the tests).

use crate::diag::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One parsed manifest: section name → (key → raw value), in file order,
/// with the source line of every key for diagnostics.
#[derive(Debug, Default)]
pub struct Manifest {
    pub path: PathBuf,
    pub entries: Vec<Entry>,
}

#[derive(Debug)]
pub struct Entry {
    pub section: String,
    pub key: String,
    pub value: String,
    /// 1-based source line.
    pub line: usize,
    pub snippet: String,
}

impl Manifest {
    pub fn parse(path: impl Into<PathBuf>, text: &str) -> Manifest {
        let mut entries = Vec::new();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = line.trim_matches(['[', ']']).to_string();
                continue;
            }
            if let Some((key, value)) = line.split_once('=') {
                entries.push(Entry {
                    section: section.clone(),
                    key: key.trim().to_string(),
                    value: value.trim().to_string(),
                    line: i + 1,
                    snippet: raw.to_string(),
                });
            }
        }
        Manifest {
            path: path.into(),
            entries,
        }
    }

    /// All `key = value` pairs of one section.
    pub fn section(&self, name: &str) -> Vec<&Entry> {
        self.entries.iter().filter(|e| e.section == name).collect()
    }

    /// Value of `key` in `section`, if present.
    pub fn get(&self, section: &str, key: &str) -> Option<&Entry> {
        self.entries
            .iter()
            .find(|e| e.section == section && e.key == key)
    }

    /// Does any section exist with this exact name?
    pub fn has_section(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.section == name)
    }

    fn diag(&self, line: usize, snippet: &str, message: String, help: &'static str) -> Diagnostic {
        Diagnostic {
            rule: "manifest-hygiene",
            code: "L5",
            file: self.path.clone(),
            line: line.max(1),
            col: 1,
            len: snippet.trim_end().len().max(1),
            item: String::new(),
            message,
            help,
            snippet: snippet.to_string(),
        }
    }
}

/// A dependency entry of one member manifest.
#[derive(Debug, PartialEq)]
enum DepKind {
    /// `foo.workspace = true` or `foo = { workspace = true, .. }`
    Workspace,
    /// `foo = { path = ".." }` — workspace-internal
    Path,
    /// anything else (`foo = "1.0"`, git, registry, ..)
    AdHoc,
}

fn dep_kind(key: &str, value: &str) -> Option<(String, DepKind)> {
    // Dotted form: `serde.workspace = true`.
    if let Some(name) = key.strip_suffix(".workspace") {
        if value == "true" {
            return Some((name.trim().to_string(), DepKind::Workspace));
        }
    }
    if key.contains('.') {
        // Some other dotted sub-key (`foo.features`, ..) — classified by the
        // main entry, ignore here.
        return None;
    }
    if value.starts_with('{') {
        if value.contains("workspace = true") {
            return Some((key.to_string(), DepKind::Workspace));
        }
        if value.contains("path =") {
            return Some((key.to_string(), DepKind::Path));
        }
        return Some((key.to_string(), DepKind::AdHoc));
    }
    Some((key.to_string(), DepKind::AdHoc))
}

const DEP_SECTIONS: [&str; 3] = ["dependencies", "dev-dependencies", "build-dependencies"];

/// Run the full L5 check over the workspace root manifest plus all member
/// manifests (vendor shims excluded by the caller).
pub fn check_workspace(root: &Manifest, members: &[Manifest]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // -- workspace.package metadata ------------------------------------
    if root.get("workspace.package", "rust-version").is_none() {
        out.push(root.diag(
            1,
            "[workspace.package]",
            "workspace does not pin an MSRV".to_string(),
            "add `rust-version = \"..\"` to [workspace.package]",
        ));
    }
    match root.get("workspace.package", "repository") {
        None => out.push(root.diag(
            1,
            "[workspace.package]",
            "workspace does not declare a repository".to_string(),
            "add `repository = \"..\"` to [workspace.package]",
        )),
        Some(e) if e.value.contains("example.com") => out.push(root.diag(
            e.line,
            &e.snippet,
            "repository is a placeholder URL".to_string(),
            "point `repository` at the canonical remote",
        )),
        Some(_) => {}
    }

    // -- workspace dependency table ------------------------------------
    let table: BTreeMap<String, &Entry> = root
        .section("workspace.dependencies")
        .into_iter()
        .filter_map(|e| dep_kind(&e.key, &e.value).map(|(name, _)| (name, e)))
        .collect();
    let mut consumed: BTreeSet<String> = BTreeSet::new();

    // Member dep sections (the root manifest can itself be a package).
    for m in members.iter().chain(std::iter::once(root)) {
        for sec in DEP_SECTIONS {
            for e in m.section(sec) {
                let Some((name, kind)) = dep_kind(&e.key, &e.value) else {
                    continue;
                };
                match kind {
                    DepKind::Workspace => {
                        consumed.insert(name.clone());
                        if !table.contains_key(&name) {
                            out.push(m.diag(
                                e.line,
                                &e.snippet,
                                format!("`{name}` claims `workspace = true` but the workspace table has no such entry"),
                                "add the dependency to [workspace.dependencies] in the root Cargo.toml",
                            ));
                        }
                    }
                    DepKind::Path => {}
                    DepKind::AdHoc => out.push(m.diag(
                        e.line,
                        &e.snippet,
                        format!("`{name}` bypasses the workspace dependency table"),
                        "declare the version once in [workspace.dependencies] and use `{ workspace = true }` here",
                    )),
                }
            }
        }
    }
    for (name, e) in &table {
        if !consumed.contains(name) {
            out.push(root.diag(
                e.line,
                &e.snippet,
                format!("workspace dependency `{name}` is consumed by no crate"),
                "delete the dead entry or migrate a crate onto it",
            ));
        }
    }

    // -- member conformance --------------------------------------------
    for m in members {
        if m.get("package", "rust-version").map(|e| e.value.as_str()) != Some("true")
            && m.get("package", "rust-version.workspace")
                .map(|e| e.value.as_str())
                != Some("true")
        {
            out.push(m.diag(
                1,
                "[package]",
                "member does not inherit the workspace MSRV".to_string(),
                "add `rust-version.workspace = true` to [package]",
            ));
        }
        if m.get("lints", "workspace").map(|e| e.value.as_str()) != Some("true") {
            out.push(m.diag(
                1,
                "[package]",
                "member opts out of the workspace lint wall".to_string(),
                "add `[lints]\\nworkspace = true`",
            ));
        }
    }
    out
}

/// Read and parse a manifest from disk, path stored workspace-relative.
pub fn read(root_dir: &Path, abs: &Path) -> std::io::Result<Manifest> {
    let text = std::fs::read_to_string(abs)?;
    let rel = abs.strip_prefix(root_dir).unwrap_or(abs);
    Ok(Manifest::parse(rel, &text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_workspace_dep_is_recognised() {
        assert_eq!(
            dep_kind("serde.workspace", "true"),
            Some(("serde".to_string(), DepKind::Workspace))
        );
        assert_eq!(
            dep_kind("serde", "{ workspace = true, features = [\"derive\"] }"),
            Some(("serde".to_string(), DepKind::Workspace))
        );
        assert_eq!(
            dep_kind("automodel-hpo", "{ path = \"../hpo\" }"),
            Some(("automodel-hpo".to_string(), DepKind::Path))
        );
        assert_eq!(
            dep_kind("rand", "\"0.8\""),
            Some(("rand".to_string(), DepKind::AdHoc))
        );
    }

    #[test]
    fn sections_and_comments_parse() {
        let m = Manifest::parse(
            "Cargo.toml",
            "# top\n[package]\nname = \"x\" # trailing\n\n[dependencies]\nrand.workspace = true\n",
        );
        assert_eq!(m.get("package", "name").unwrap().value, "\"x\"");
        assert_eq!(m.section("dependencies").len(), 1);
    }
}
