//! Workspace automation for `auto-model` (`cargo xtask <command>`).
//!
//! The only command so far is `lint`: a semantic static-analysis suite.
//! Sources are lexed and parsed into a lightweight AST with per-crate
//! symbol indexes and call graphs ([`sem`]); fifteen rule families run
//! on top (L1–L15, see [`sem::rules::RULES`]; L5 manifest hygiene lives
//! in [`manifest`]). Diagnostics are rustc-style ([`diag`]), escapes are
//! inline `// lint:allow(..)` comments (audited by L13), and
//! grandfathered findings live in a fingerprint-keyed burn-down baseline
//! ([`baseline`]). Std-only by design — it must build in the offline
//! environment before any vendored dependency does.

pub mod baseline;
pub mod diag;
pub mod manifest;
pub mod sem;

use sem::source::File;
use std::path::{Path, PathBuf};

/// Directories scanned for Rust sources, relative to the workspace root.
/// `vendor/` is deliberately absent: the shims stand in for third-party
/// crates and are not held to product-crate rules.
pub const SOURCE_ROOTS: [&str; 3] = ["crates", "src", "xtask/src"];

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries {
            let path = entry?.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Member manifests subject to L5 (everything but `vendor/` and the
/// workspace root itself).
pub fn member_manifests(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for sub in ["crates", "xtask"] {
        let dir = root.join(sub);
        if sub == "xtask" {
            out.push(dir.join("Cargo.toml"));
            continue;
        }
        let mut crates: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        crates.sort();
        out.append(&mut crates);
    }
    Ok(out)
}

/// Parse every workspace source file under [`SOURCE_ROOTS`].
pub fn parse_workspace(root: &Path) -> std::io::Result<Vec<File>> {
    let mut files = Vec::new();
    for sub in SOURCE_ROOTS {
        let dir = root.join(sub);
        if !dir.is_dir() {
            continue;
        }
        for path in rust_files(&dir)? {
            files.push(File::read(root, &path)?);
        }
    }
    Ok(files)
}

/// The full lint pass: semantic analysis over all sources plus manifest
/// hygiene. Active findings are pre-baseline; suppressed ones were
/// silenced by `lint:allow` escapes (all of which L13 verified live).
pub fn run_lint(root: &Path) -> std::io::Result<sem::Report> {
    let files = parse_workspace(root)?;
    let mut report = sem::analyze(&files);

    let root_manifest = manifest::read(root, &root.join("Cargo.toml"))?;
    let members: Vec<manifest::Manifest> = member_manifests(root)?
        .iter()
        .map(|p| manifest::read(root, p))
        .collect::<Result<_, _>>()?;
    report
        .active
        .extend(manifest::check_workspace(&root_manifest, &members));
    Ok(report)
}

/// Workspace root: parent of the `xtask` crate.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}
