//! Shared harness for the integration suites (`tests/determinism.rs`,
//! `tests/fault_injection.rs`, `tests/trace_oracle.rs`): one search space,
//! one fitness function, one canonical byte serialization and one set of
//! containment assertions, so the suites cannot drift apart on what "the
//! same run" means.
//!
//! Each integration-test binary compiles this module independently and uses
//! a different subset of it.
#![allow(dead_code)]

use auto_model::hpo::{Config, Domain, FaultPlan, OptOutcome, SearchSpace, TrialPolicy};

/// The space every cross-suite determinism/fault run searches.
pub fn space() -> SearchSpace {
    SearchSpace::builder()
        .add("lr", Domain::float(1e-4, 1.0))
        .add("depth", Domain::int(1, 16))
        .add("kernel", Domain::cat(&["rbf", "poly", "linear"]))
        .build()
        .expect("space builds")
}

/// Deterministic, instant fitness over [`space`].
pub fn fitness(c: &Config) -> f64 {
    c.float_or("lr", 0.0) + c.int_or("depth", 0) as f64 / 16.0
}

/// Canonical bytes for a run: every trial's index, serialized config,
/// exact score bits, and failure (if any). Any nondeterminism — including
/// in *which* trials fail and how — changes these bytes.
pub fn trial_bytes(out: &OptOutcome) -> String {
    out.trials
        .iter()
        .map(|t| {
            format!(
                "{}|{}#{:016x}{}\n",
                t.index,
                serde_json::to_string(&t.config).expect("config serializes"),
                t.score.to_bits(),
                t.failure
                    .as_ref()
                    .map(|f| format!("!{f}"))
                    .unwrap_or_default(),
            )
        })
        .collect()
}

/// Injected panics run the panic hook before `contain` catches them, and
/// executor workers print outside libtest's capture. Silence exactly the
/// injected ones; real panics still report.
pub fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            // Match only the injected payload itself — a `contains` check
            // would also swallow assertion failures whose printed trial
            // bytes embed an "injected fault" failure string.
            if !message.starts_with("injected fault") {
                previous(info);
            }
        }));
    });
}

/// ~10% of trial indices panic and ~10% score NaN, with no retry to
/// absorb them — the worst case the acceptance criterion names.
pub fn hostile_policy() -> TrialPolicy {
    TrialPolicy::default()
        .with_max_attempts(1)
        .with_faults(FaultPlan::with_rates(5, 0.1, 0.1, 0.0))
}

/// The acceptance checks shared by all three optimizers: a valid finite
/// incumbent backed by a usable trial, and a quarantine log naming the
/// configs that exhausted their retries.
pub fn assert_contained(out: &OptOutcome, label: &str) {
    assert!(
        out.best_score.is_finite(),
        "{label}: incumbent score must be finite"
    );
    assert!(
        out.best_score > TrialPolicy::default().penalty,
        "{label}: incumbent must beat the failure penalty"
    );
    assert!(
        out.trials.iter().any(|t| t.is_usable()),
        "{label}: at least one usable trial must back the incumbent"
    );
    assert!(
        !out.quarantine.is_empty(),
        "{label}: ~10% fault rates with no retries must quarantine configs"
    );
    for record in &out.quarantine {
        assert!(
            !record.key.is_empty(),
            "{label}: quarantine records name the config"
        );
        let failure = record.failure.to_string();
        assert!(
            failure.contains("injected fault") || failure.contains("non-finite"),
            "{label}: unexpected quarantined failure: {failure}"
        );
    }
}

/// Path of a checked-in golden file under `tests/golden/`.
pub fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Is this run regenerating golden files (`AUTOMODEL_REGOLDEN=1`)?
pub fn regolden() -> bool {
    std::env::var("AUTOMODEL_REGOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Compare `actual` against the checked-in golden file — or rewrite it when
/// [`regolden`] is set. A regenerating test must end with
/// `assert!(!regolden(), ..)` so a regeneration run is never mistaken for a
/// passing one.
pub fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if regolden() {
        std::fs::write(&path, actual).expect("golden file is writable");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with AUTOMODEL_REGOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name}: run diverged from the checked-in golden history"
    );
}
