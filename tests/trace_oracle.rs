//! Trace-oracle conformance: the structured event stream must be a
//! faithful, complete account of the run it narrates. Decoded traces are
//! cross-checked against the [`OptOutcome`] the same run returned — every
//! trial appears exactly once with its exact score bits, span pairing is
//! well-formed, cache events reconcile with [`CacheStats`], and
//! fault/retry/quarantine events reconcile with the quarantine log. The
//! tracer is also proven to be a pure observer: the trial history with
//! tracing on is byte-identical to the history with tracing off.
//!
//! The shared harness (space, fitness, hostile policy, serialization)
//! lives in `tests/common/mod.rs`.

mod common;

use auto_model::hpo::{
    BayesianOptimization, Budget, Executor, FaultPlan, FnObjective, GaConfig, GeneticAlgorithm,
    Optimizer, OptimizerBuilder, SmacLite, TrialCache, TrialPolicy,
};
use auto_model::trace::{decode, TraceEvent, TraceRecord, Tracer};
use common::{fitness, hostile_policy, quiet_injected_panics, space, trial_bytes};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Run one optimizer with an in-memory tracer attached; return the
/// outcome, the decoded trace, and the raw trace bytes.
fn traced_run(
    kind: &str,
    seed: u64,
    policy: TrialPolicy,
    budget: &Budget,
    threads: Option<usize>,
) -> (auto_model::hpo::OptOutcome, Vec<TraceRecord>, String) {
    let space = space();
    let (tracer, handle) = Tracer::in_memory();
    let tracer = Arc::new(tracer);
    let cache = Arc::new(TrialCache::default());
    let out = match kind {
        "ga" => {
            let ga = GeneticAlgorithm::with_config(
                seed,
                GaConfig {
                    population: 10,
                    generations: 100, // bounded by the budget
                    ..GaConfig::default()
                },
            )
            .with_policy(policy)
            .with_cache(cache)
            .with_tracer(Arc::clone(&tracer));
            match threads {
                Some(n) => ga.optimize_batch(&space, &fitness, budget, &Executor::new(n)),
                None => {
                    let mut ga = ga;
                    ga.optimize(&space, &mut FnObjective(fitness), budget)
                }
            }
        }
        "bo" => {
            let mut bo = BayesianOptimization::new(seed)
                .with_policy(policy)
                .with_cache(cache)
                .with_tracer(Arc::clone(&tracer));
            bo.optimize(&space, &mut FnObjective(fitness), budget)
        }
        "smac" => {
            let mut smac = SmacLite::new(seed)
                .with_policy(policy)
                .with_cache(cache)
                .with_tracer(Arc::clone(&tracer));
            smac.optimize(&space, &mut FnObjective(fitness), budget)
        }
        other => panic!("unknown optimizer kind {other}"),
    }
    .expect("run yields an outcome");
    let raw = handle.contents();
    let records = decode(&raw).expect("captured trace decodes");
    (out, records, raw)
}

/// The per-trial event groups of a decoded trace, in trial-index order.
fn by_trial(records: &[TraceRecord]) -> BTreeMap<u64, Vec<&TraceEvent>> {
    let mut map: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for r in records {
        if let Some(t) = r.event.trial() {
            map.entry(t).or_default().push(&r.event);
        }
    }
    map
}

/// Span pairing and ordering laws that hold for every optimizer trace:
/// one run span bracketing everything, well-nested batch spans, and for
/// every trial a start before any other event and an end after all of
/// them, inside exactly one batch span.
fn assert_well_formed(records: &[TraceRecord], label: &str) {
    assert!(
        matches!(
            records.first().map(|r| &r.event),
            Some(TraceEvent::RunStart { .. })
        ),
        "{label}: trace must open with run_start"
    );
    assert!(
        matches!(
            records.last().map(|r| &r.event),
            Some(TraceEvent::RunEnd { .. })
        ),
        "{label}: trace must close with run_end"
    );
    let mut open_batch: Option<u64> = None;
    let mut open_trials: Vec<u64> = Vec::new();
    for r in &records[1..records.len() - 1] {
        match &r.event {
            TraceEvent::RunStart { .. } | TraceEvent::RunEnd { .. } => {
                panic!("{label}: nested run span")
            }
            TraceEvent::BatchStart { first_trial, .. } => {
                assert!(open_batch.is_none(), "{label}: overlapping batch spans");
                open_batch = Some(*first_trial);
            }
            TraceEvent::BatchEnd { first_trial, .. } => {
                assert_eq!(
                    open_batch.take(),
                    Some(*first_trial),
                    "{label}: batch_end does not match the open batch"
                );
                assert!(
                    open_trials.is_empty(),
                    "{label}: batch closed with trial span(s) still open"
                );
            }
            TraceEvent::TrialStart { trial, .. } => {
                assert!(
                    open_batch.is_some(),
                    "{label}: trial {trial} started outside a batch span"
                );
                open_trials.push(*trial);
            }
            TraceEvent::TrialEnd { trial, .. } => {
                assert!(
                    open_trials.contains(trial),
                    "{label}: trial {trial} ended without a start"
                );
                open_trials.retain(|t| t != trial);
            }
            // Trial-scoped interior events must land inside their span.
            e => {
                if let Some(t) = e.trial() {
                    assert!(
                        open_trials.contains(&t),
                        "{label}: {} for trial {t} outside its span",
                        e.kind()
                    );
                }
            }
        }
    }
    assert!(open_batch.is_none(), "{label}: unclosed batch span");
    assert!(open_trials.is_empty(), "{label}: unclosed trial span(s)");
}

/// Decoded trace against the outcome it narrates: every recorded trial
/// exactly once, exact score bits, statuses matching the failure field,
/// cache events matching [`CacheStats`], quarantine events matching the
/// quarantine log, and fault arithmetic consistent with the retry policy.
fn assert_conforms(
    out: &auto_model::hpo::OptOutcome,
    records: &[TraceRecord],
    policy: &TrialPolicy,
    label: &str,
) {
    let groups = by_trial(records);
    assert_eq!(
        groups.len(),
        out.trials.len(),
        "{label}: trace narrates a different trial count than the outcome"
    );
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut quarantine_events: Vec<(u64, String)> = Vec::new();
    for trial in &out.trials {
        let idx = trial.index as u64;
        let events = groups
            .get(&idx)
            .unwrap_or_else(|| panic!("{label}: trial {idx} missing from the trace"));
        let starts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TrialStart { .. }))
            .count();
        assert_eq!(starts, 1, "{label}: trial {idx} must start exactly once");
        let ends: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TrialEnd {
                    score,
                    attempts,
                    status,
                    ..
                } => Some((score, attempts, status)),
                _ => None,
            })
            .collect();
        assert_eq!(ends.len(), 1, "{label}: trial {idx} must end exactly once");
        let (score, attempts, status) = ends[0];
        assert_eq!(
            score.to_bits(),
            trial.score.to_bits(),
            "{label}: trial {idx} trace score diverged from the recorded trial"
        );
        let expected_status = if *attempts == 0 {
            "skipped"
        } else if trial.failure.is_some() {
            "failed"
        } else {
            "ok"
        };
        assert_eq!(
            status, expected_status,
            "{label}: trial {idx} status does not match its failure field"
        );
        let faults = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Fault { .. }))
            .count() as u64;
        let retries = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Retry { .. }))
            .count() as u64;
        // A warm hit is a cache hit served from a restored snapshot; the
        // telemetry counts it in `hits` like any other.
        let hit = events
            .iter()
            .any(|e| matches!(e, TraceEvent::CacheHit { .. } | TraceEvent::WarmHit { .. }));
        let miss = events
            .iter()
            .any(|e| matches!(e, TraceEvent::CacheMiss { .. }));
        assert!(
            !(hit && miss),
            "{label}: trial {idx} both hit and missed the cache"
        );
        cache_hits += hit as u64;
        cache_misses += miss as u64;
        if miss {
            // A live evaluation's attempts arithmetic: one fault per failed
            // attempt, one retry per granted extra attempt, all bounded by
            // the policy.
            assert!(
                *attempts <= policy.max_attempts as u64,
                "{label}: trial {idx} exceeded max_attempts"
            );
            assert_eq!(
                retries,
                attempts.saturating_sub(1),
                "{label}: trial {idx} retries must be attempts - 1"
            );
            if status == "failed" {
                assert_eq!(
                    faults, *attempts,
                    "{label}: failed trial {idx} must log one fault per attempt"
                );
            } else if status == "ok" {
                assert_eq!(
                    faults, retries,
                    "{label}: ok trial {idx} must log one fault per absorbed attempt"
                );
            }
        } else {
            // Cache hits and quarantine skips replay without re-running the
            // objective, so they must not log live-evaluation events.
            assert_eq!(
                faults + retries,
                0,
                "{label}: replayed trial {idx} logged live fault/retry events"
            );
        }
        for e in events {
            if let TraceEvent::Quarantine { trial, config } = e {
                quarantine_events.push((*trial, config.clone()));
            }
        }
    }
    assert_eq!(
        (cache_hits, cache_misses),
        (out.cache.hits, out.cache.misses),
        "{label}: cache events diverged from CacheStats telemetry"
    );
    assert_eq!(
        quarantine_events.len(),
        out.quarantine.len(),
        "{label}: quarantine events diverged from the quarantine log"
    );
    for ((trial, config), record) in quarantine_events.iter().zip(&out.quarantine) {
        assert_eq!(
            *trial, record.trial_index as u64,
            "{label}: quarantine event order diverged from the log"
        );
        assert_eq!(
            config, &record.key,
            "{label}: quarantine event names a different config than the log"
        );
    }
    // Skipped trials exist iff some config was quarantined mid-run and
    // re-proposed; each must carry the quarantine_skip marker.
    for trial in &out.trials {
        let events = &groups[&(trial.index as u64)];
        let skip_marked = events
            .iter()
            .any(|e| matches!(e, TraceEvent::QuarantineSkip { .. }));
        let skipped = events
            .iter()
            .any(|e| matches!(e, TraceEvent::TrialEnd { attempts, .. } if *attempts == 0));
        assert_eq!(
            skip_marked, skipped,
            "{label}: trial {} skip marker and zero-attempt end must coincide",
            trial.index
        );
    }
}

#[test]
fn clean_runs_conform_for_all_three_optimizers() {
    let budget = Budget::evals(40);
    for kind in ["ga", "bo", "smac"] {
        let policy = TrialPolicy::default();
        let (out, records, _) = traced_run(kind, 97, policy.clone(), &budget, None);
        assert_well_formed(&records, kind);
        assert_conforms(&out, &records, &policy, kind);
        assert!(
            out.quarantine.is_empty(),
            "{kind}: clean objective must not quarantine"
        );
    }
}

#[test]
fn hostile_runs_conform_and_narrate_every_quarantine() {
    quiet_injected_panics();
    let budget = Budget::evals(60);
    for kind in ["ga", "bo", "smac"] {
        let policy = hostile_policy();
        let (out, records, _) = traced_run(kind, 97, policy.clone(), &budget, None);
        assert_well_formed(&records, kind);
        assert_conforms(&out, &records, &policy, kind);
        assert!(
            !out.quarantine.is_empty(),
            "{kind}: hostile rates with no retries must quarantine"
        );
        let faults = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Fault { .. }))
            .count();
        assert!(faults > 0, "{kind}: injected faults must be narrated");
    }
}

#[test]
fn retry_absorbed_faults_are_narrated_as_retries() {
    quiet_injected_panics();
    // Faults fire on attempt 0 only, so two attempts absorb every injected
    // fault: the trace must show fault+retry pairs, an all-ok history, and
    // an empty quarantine.
    let policy = TrialPolicy::default()
        .with_max_attempts(2)
        .with_faults(FaultPlan::with_rates(5, 0.15, 0.15, 0.0));
    let (out, records, _) = traced_run("ga", 97, policy.clone(), &Budget::evals(60), None);
    assert_well_formed(&records, "ga-retry");
    assert_conforms(&out, &records, &policy, "ga-retry");
    assert!(out.quarantine.is_empty(), "retries must absorb every fault");
    let faults = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Fault { .. }))
        .count();
    let retries = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Retry { .. }))
        .count();
    assert!(faults > 0, "fault rates of 15% must inject something");
    assert_eq!(
        faults, retries,
        "every attempt-0 fault must be followed by exactly one retry"
    );
    assert!(
        out.trials.iter().all(|t| t.failure.is_none()),
        "absorbed faults must leave no failed trials"
    );
}

#[test]
fn parallel_ga_trace_conforms_under_faults() {
    quiet_injected_panics();
    let policy = hostile_policy();
    let budget = Budget::evals(120);
    for threads in [1usize, 2, 8] {
        let (out, records, _) = traced_run("ga", 97, policy.clone(), &budget, Some(threads));
        assert_well_formed(&records, "ga-parallel");
        assert_conforms(&out, &records, &policy, "ga-parallel");
    }
}

#[test]
fn tracing_is_a_pure_observer_of_the_trial_history() {
    quiet_injected_panics();
    let budget = Budget::evals(60);
    for kind in ["ga", "bo", "smac"] {
        let (traced, _, _) = traced_run(kind, 97, hostile_policy(), &budget, None);
        // The same run with the default (disabled) tracer.
        let space = space();
        let cache = Arc::new(TrialCache::default());
        let untraced = match kind {
            "ga" => {
                let mut ga = GeneticAlgorithm::with_config(
                    97,
                    GaConfig {
                        population: 10,
                        generations: 100,
                        ..GaConfig::default()
                    },
                )
                .with_policy(hostile_policy())
                .with_cache(cache);
                ga.optimize(&space, &mut FnObjective(fitness), &budget)
            }
            "bo" => {
                let mut bo = BayesianOptimization::new(97)
                    .with_policy(hostile_policy())
                    .with_cache(cache);
                bo.optimize(&space, &mut FnObjective(fitness), &budget)
            }
            "smac" => {
                let mut smac = SmacLite::new(97)
                    .with_policy(hostile_policy())
                    .with_cache(cache);
                smac.optimize(&space, &mut FnObjective(fitness), &budget)
            }
            other => panic!("unknown optimizer kind {other}"),
        }
        .expect("run yields an outcome");
        assert_eq!(
            trial_bytes(&untraced),
            trial_bytes(&traced),
            "{kind}: enabling the tracer changed the trial history"
        );
    }
}

#[test]
fn summary_counters_match_the_decoded_stream() {
    quiet_injected_panics();
    let policy = hostile_policy();
    let space = space();
    let (tracer, handle) = Tracer::in_memory();
    let tracer = Arc::new(tracer);
    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100,
            ..GaConfig::default()
        },
    )
    .with_policy(policy)
    .with_cache(Arc::new(TrialCache::default()))
    .with_tracer(Arc::clone(&tracer));
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &Budget::evals(60))
        .expect("run yields an outcome");
    let records = decode(&handle.contents()).expect("captured trace decodes");
    let summary = tracer.summary().expect("enabled tracer keeps a summary");

    let count =
        |pred: fn(&TraceEvent) -> bool| records.iter().filter(|r| pred(&r.event)).count() as u64;
    assert_eq!(
        summary.runs,
        count(|e| matches!(e, TraceEvent::RunEnd { .. }))
    );
    assert_eq!(
        summary.batches,
        count(|e| matches!(e, TraceEvent::BatchEnd { .. }))
    );
    assert_eq!(
        summary.trials,
        count(|e| matches!(e, TraceEvent::TrialEnd { .. }))
    );
    assert_eq!(summary.trials, out.trials.len() as u64);
    assert_eq!(
        summary.cache_hits,
        count(|e| matches!(e, TraceEvent::CacheHit { .. } | TraceEvent::WarmHit { .. }))
    );
    assert_eq!(
        summary.warm_hits,
        count(|e| matches!(e, TraceEvent::WarmHit { .. }))
    );
    assert_eq!(
        summary.cache_misses,
        count(|e| matches!(e, TraceEvent::CacheMiss { .. }))
    );
    assert_eq!(
        summary.faults,
        count(|e| matches!(e, TraceEvent::Fault { .. }))
    );
    assert_eq!(
        summary.retries,
        count(|e| matches!(e, TraceEvent::Retry { .. }))
    );
    assert_eq!(
        summary.quarantined,
        count(|e| matches!(e, TraceEvent::Quarantine { .. }))
    );
    assert_eq!(summary.quarantined, out.quarantine.len() as u64);
    assert_eq!(
        summary.ok + summary.failed + summary.skipped,
        summary.trials,
        "trial statuses must partition the trial count"
    );
    assert_eq!(
        summary.budget_trips,
        count(|e| matches!(e, TraceEvent::BudgetExhausted { .. }))
    );
}
