//! Crash-recovery kill-drill (tier-1 robustness gate).
//!
//! The contract under test: a run killed without warning at any batch
//! boundary (`std::process::abort` — no unwinding, no destructors, the
//! moral equivalent of `kill -9`) and then resumed from its checkpoint
//! produces a trial history **byte-identical** to the uninterrupted
//! run, and a trace identical modulo provenance events, at 1, 2 and 8
//! threads — with and without injected IO faults on the checkpoint
//! files themselves.
//!
//! Three-phase drill, each phase a real spawned CLI process:
//!
//! 1. `dmd build --checkpoint` uninterrupted → reference history/trace.
//! 2. Same run with `AUTOMODEL_CRASH_AFTER=3` → aborts after the third
//!    checkpoint write, leaving only the rotated generation files.
//! 3. `dmd build --checkpoint --resume` → restores the trial-cache
//!    snapshot from the newest verifiable generation and replays; every
//!    already-paid trial comes back as a warm hit.
//!
//! Identity holds because resume is replay-based: the optimizer re-runs
//! the identical seeded schedule and the restored cache answers for the
//! completed prefix, so scores (raw bits), ordering and formatting all
//! come from the same code path as the cold run.
//!
//! A final property test damages a checkpoint generation at **every**
//! byte offset (truncation at every length, a bit flip at every byte)
//! and asserts recovery falls back to the previous generation — and
//! that with every generation damaged the result is a typed
//! [`RecoveryError`], never a panic.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

use auto_model::hpo::{
    Budget, Config, Domain, FnObjective, Optimizer, OptimizerBuilder, RandomSearch, SearchSpace,
};
use auto_model::store::{load_latest, Checkpointer, RecoveryError, DEFAULT_KEEP};

const BIN: &str = env!("CARGO_BIN_EXE_auto-model");

/// Deterministic IO-fault spec for the fault-injected drills: seeded
/// torn writes, short reads and ENOSPC on the VFS layer. No trial-level
/// fault rates, so the search itself is undisturbed; only the
/// durability path is under attack.
const IO_FAULTS: &str = "seed=5,torn=0.3,short_read=0.3,enospc=0.2";

/// Trace kinds that record *provenance* — how a value was obtained
/// (cache, warm replay, artifact, checkpoint, recovery) — rather than
/// *what* the run computed. Cold and resumed runs legitimately differ
/// in these; every other event must match exactly.
const PROVENANCE: &[&str] = &[
    "cache_hit",
    "cache_miss",
    "warm_hit",
    "artifact_load",
    "checkpoint",
    "recovery",
];

/// Env vars the drill controls per child; anything inherited from the
/// surrounding shell (check.sh exports some of these in other stages)
/// must not leak in.
const CONTROLLED_ENV: &[&str] = &[
    "AUTOMODEL_CACHE",
    "AUTOMODEL_FAULTS",
    "AUTOMODEL_TRACE",
    "AUTOMODEL_THREADS",
    "AUTOMODEL_REGOLDEN",
    "AUTOMODEL_CRASH_AFTER",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("automodel-crash-{}-{tag}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cli(
    dir: &Path,
    threads: &str,
    trace: Option<&Path>,
    env: &[(&str, String)],
    args: &[&str],
) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir).args(args);
    for var in CONTROLLED_ENV {
        cmd.env_remove(var);
    }
    cmd.env("AUTOMODEL_THREADS", threads);
    if let Some(path) = trace {
        cmd.env("AUTOMODEL_TRACE", path);
    }
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.output().expect("failed to spawn auto-model binary")
}

fn filtered_trace(path: &Path) -> Vec<String> {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    text.lines()
        .filter(|line| {
            let kind = line
                .split("\"ev\":\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .unwrap_or("");
            !PROVENANCE.contains(&kind)
        })
        .map(str::to_string)
        .collect()
}

/// The three-phase drill at a given thread count, optionally with IO
/// faults injected into every child.
fn kill_drill(threads: &str, faults: Option<&str>) {
    let tag = format!(
        "drill{threads}{}",
        if faults.is_some() { "-faults" } else { "" }
    );
    let dir = scratch(&tag);
    let base_env: Vec<(&str, String)> = faults
        .iter()
        .map(|spec| ("AUTOMODEL_FAULTS", spec.to_string()))
        .collect();

    // Phase 1: the uninterrupted reference run.
    let cold_trace = dir.join("cold.trace");
    let out = cli(
        &dir,
        threads,
        Some(&cold_trace),
        &base_env,
        &[
            "dmd",
            "build",
            "--out",
            "cold.store",
            "--history",
            "cold.txt",
            "--checkpoint",
            "cold.ckpt",
        ],
    );
    assert!(
        out.status.success(),
        "cold run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Phase 2: the same run, killed after the third checkpoint write.
    let mut crash_env = base_env.clone();
    crash_env.push(("AUTOMODEL_CRASH_AFTER", "3".to_string()));
    let out = cli(
        &dir,
        threads,
        None,
        &crash_env,
        &[
            "dmd",
            "build",
            "--out",
            "crash.store",
            "--history",
            "crash.txt",
            "--checkpoint",
            "run.ckpt",
        ],
    );
    assert!(
        !out.status.success(),
        "crash run should have aborted mid-flight"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("aborting after checkpoint 3"),
        "crash run must die at the drilled checkpoint"
    );
    assert!(
        !dir.join("crash.txt").exists() && !dir.join("crash.store").exists(),
        "an aborted run must leave no final outputs"
    );

    // Phase 3: resume from the surviving generation files.
    let resumed_trace = dir.join("resumed.trace");
    let out = cli(
        &dir,
        threads,
        Some(&resumed_trace),
        &base_env,
        &[
            "dmd",
            "build",
            "--out",
            "resumed.store",
            "--history",
            "resumed.txt",
            "--checkpoint",
            "run.ckpt",
            "--resume",
        ],
    );
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "resume run failed: {stderr}");
    assert!(
        stderr.contains("resuming from checkpoint"),
        "resume must report the recovered generation, got: {stderr}"
    );

    let cold = fs::read(dir.join("cold.txt")).unwrap();
    let resumed = fs::read(dir.join("resumed.txt")).unwrap();
    assert!(
        !cold.is_empty(),
        "reference history must not be empty (drill would be vacuous)"
    );
    assert_eq!(
        cold, resumed,
        "trial history must be byte-identical after crash + resume (threads={threads})"
    );
    assert_eq!(
        filtered_trace(&cold_trace),
        filtered_trace(&resumed_trace),
        "traces must agree modulo provenance events (threads={threads})"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_drill_single_thread() {
    kill_drill("1", None);
}

#[test]
fn kill_drill_two_threads() {
    kill_drill("2", None);
}

#[test]
fn kill_drill_eight_threads() {
    kill_drill("8", None);
}

#[test]
fn kill_drill_single_thread_under_io_faults() {
    kill_drill("1", Some(IO_FAULTS));
}

#[test]
fn kill_drill_two_threads_under_io_faults() {
    kill_drill("2", Some(IO_FAULTS));
}

#[test]
fn kill_drill_eight_threads_under_io_faults() {
    kill_drill("8", Some(IO_FAULTS));
}

/// A small typed CSV (the `automodel_data::csv` format) for the solve
/// drills, generated from a fixed LCG so every run sees identical bytes.
fn write_demo_csv(dir: &Path) -> PathBuf {
    use std::fmt::Write as _;
    let path = dir.join("drill.csv");
    let mut text = String::from("num:a,num:b,num:c,class:y\n");
    let mut state = 9u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for _ in 0..72 {
        let (a, b, c) = (next(), next(), next());
        let y = if a + 0.5 * b - c > 0.4 { "pos" } else { "neg" };
        writeln!(text, "{a:.6},{b:.6},{c:.6},{y}").unwrap();
    }
    fs::write(&path, text).unwrap();
    path
}

/// The solution lines of a `solve` run's stdout (algorithm, config,
/// score, technique, trial count) — the checkpoint bookkeeping line is
/// provenance and excluded.
fn solution_lines(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| {
            [
                "algorithm",
                "configuration",
                "CV accuracy",
                "HPO technique",
                "evaluations",
            ]
            .iter()
            .any(|p| l.starts_with(p))
        })
        .map(str::to_string)
        .collect()
}

/// Multi-fidelity kill-drill: `solve --optimizer sha` killed **mid-rung**
/// and resumed must reproduce the uninterrupted elimination sequence
/// byte-for-byte. The default SHA bracket chunks rung 0 (27 trials) into
/// four 8-trial batches, each ending in a checkpoint;
/// `AUTOMODEL_CRASH_AFTER=2` therefore aborts with rung 0 only partially
/// evaluated. The filtered traces carry every `rung_start` / `promote` /
/// `eliminate` event and every trial's exact score bits, so equality here
/// *is* equality of the elimination schedule.
fn sha_kill_drill(threads: &str) {
    let dir = scratch(&format!("sha-drill{threads}"));
    let csv = write_demo_csv(&dir);
    let csv = csv.to_string_lossy().into_owned();

    // One decision-model artifact, shared by every phase: the drill
    // targets the tuner's recovery, not DMD training.
    let out = cli(
        &dir,
        threads,
        None,
        &[],
        &["train-dmd", "--out", "dmd.json"],
    );
    assert!(
        out.status.success(),
        "train-dmd failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let solve = |trace: Option<&Path>, env: &[(&str, String)], extra: &[&str]| {
        let args: Vec<&str> = [
            "solve",
            "--csv",
            csv.as_str(),
            "--artifact",
            "dmd.json",
            "--optimizer",
            "sha",
        ]
        .into_iter()
        .chain(extra.iter().copied())
        .collect();
        cli(&dir, threads, trace, env, &args)
    };

    // Phase 1: the uninterrupted reference run.
    let cold_trace = dir.join("cold.trace");
    let out = solve(Some(&cold_trace), &[], &["--checkpoint", "cold.ckpt"]);
    assert!(
        out.status.success(),
        "cold solve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let cold_solution = solution_lines(&out.stdout);
    assert!(
        cold_solution
            .iter()
            .any(|l| l.contains("successive-halving")),
        "solve --optimizer sha must report the SHA technique: {cold_solution:?}"
    );

    // Phase 2: the same run, killed after the second checkpoint — two
    // batches into rung 0, with 11 of its 27 trials still unevaluated.
    let out = solve(
        None,
        &[("AUTOMODEL_CRASH_AFTER", "2".to_string())],
        &["--checkpoint", "run.ckpt"],
    );
    assert!(
        !out.status.success(),
        "crash run should have aborted mid-rung"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("aborting after checkpoint 2"),
        "crash run must die at the drilled checkpoint"
    );

    // Phase 3: resume — the restored cache warm-replays the paid prefix
    // and the elimination schedule must come out identical.
    let resumed_trace = dir.join("resumed.trace");
    let out = solve(
        Some(&resumed_trace),
        &[],
        &["--checkpoint", "run.ckpt", "--resume"],
    );
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "resumed solve failed: {stderr}");
    assert!(
        stderr.contains("resuming from checkpoint"),
        "resume must report the recovered generation, got: {stderr}"
    );
    assert_eq!(
        cold_solution,
        solution_lines(&out.stdout),
        "resumed solution diverged from the cold run (threads={threads})"
    );
    let cold = filtered_trace(&cold_trace);
    assert!(
        cold.iter().any(|l| l.contains("\"ev\":\"promote\"")),
        "reference trace must narrate promotions (drill would be vacuous)"
    );
    assert_eq!(
        cold,
        filtered_trace(&resumed_trace),
        "elimination sequence must be byte-identical after crash + resume (threads={threads})"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn sha_kill_drill_mid_rung_two_threads() {
    sha_kill_drill("2");
}

/// `--resume` against a base with no generation files must cold-start
/// and still finish with the reference history, not error out.
#[test]
fn resume_without_checkpoint_cold_starts() {
    let dir = scratch("coldstart");
    let out = cli(
        &dir,
        "2",
        None,
        &[],
        &[
            "dmd",
            "build",
            "--out",
            "a.store",
            "--history",
            "a.txt",
            "--checkpoint",
            "absent.ckpt",
            "--resume",
        ],
    );
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "cold-start resume failed: {stderr}");
    assert!(
        stderr.contains("cold-starting"),
        "missing checkpoint must be reported as a cold start, got: {stderr}"
    );
    assert!(dir.join("a.txt").exists());
    fs::remove_dir_all(&dir).ok();
}

fn generation(base: &Path, g: usize) -> PathBuf {
    let name = format!("{}.g{g}", base.file_name().unwrap().to_string_lossy());
    base.with_file_name(name)
}

/// Satellite property test: damage the newest checkpoint generation at
/// every possible byte offset — truncation at every length, then a bit
/// flip at every byte — and assert recovery always falls back to the
/// previous generation. With both generations damaged, the failure is a
/// typed [`RecoveryError::AllCorrupt`]; nothing in the sweep may panic.
#[test]
fn every_offset_corruption_falls_back_or_errors_typed() {
    // The in-process Checkpointer honours these env vars; scrub any
    // leakage from the surrounding shell before constructing it.
    std::env::remove_var("AUTOMODEL_CRASH_AFTER");
    std::env::remove_var("AUTOMODEL_FAULTS");

    let dir = scratch("sweep");
    let base = dir.join("sweep.ckpt");
    let sink = Arc::new(Checkpointer::new(&base));
    let space = SearchSpace::builder()
        .add("x", Domain::float(-1.0, 1.0))
        .build()
        .unwrap();
    let mut objective = FnObjective(|c: &Config| -c.float_or("x", 0.0).abs());
    RandomSearch::new(7)
        .with_checkpoint(Arc::clone(&sink) as _)
        .optimize(&space, &mut objective, &Budget::evals(5))
        .unwrap();
    assert_eq!(sink.written(), 5);
    // Five writes over two generations: g0 holds seq 4 (newest), g1
    // holds seq 3 (the fallback the sweep must land on).
    let newest = generation(&base, 0);
    let pristine = fs::read(&newest).unwrap();
    assert_eq!(load_latest(&base, DEFAULT_KEEP).unwrap().seq, 4);

    for len in 0..pristine.len() {
        fs::write(&newest, &pristine[..len]).unwrap();
        let state = load_latest(&base, DEFAULT_KEEP)
            .unwrap_or_else(|e| panic!("truncation to {len} bytes must fall back, got: {e}"));
        assert_eq!(
            state.seq, 3,
            "truncation to {len} bytes must fall back to g1"
        );
    }

    for offset in 0..pristine.len() {
        let mut damaged = pristine.clone();
        damaged[offset] ^= 1u8 << (offset % 8);
        fs::write(&newest, &damaged).unwrap();
        let state = load_latest(&base, DEFAULT_KEEP)
            .unwrap_or_else(|e| panic!("bit flip at offset {offset} must fall back, got: {e}"));
        assert_eq!(
            state.seq, 3,
            "bit flip at offset {offset} must fall back to g1"
        );
    }

    // Every generation damaged → typed error carrying both failures.
    fs::write(&newest, &pristine[..pristine.len() / 2]).unwrap();
    let oldest = generation(&base, 1);
    let old = fs::read(&oldest).unwrap();
    fs::write(&oldest, &old[..old.len() / 2]).unwrap();
    match load_latest(&base, DEFAULT_KEEP) {
        Err(RecoveryError::AllCorrupt(failures)) => assert_eq!(failures.len(), 2),
        other => panic!("expected AllCorrupt with both generations listed, got: {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Serve kill-drill: the same crash contract, but for a server session.
// ---------------------------------------------------------------------------

/// Spawn `serve` in stdio mode against a prebuilt artifact, feed it one
/// request line, close stdin and collect the process output. The server
/// exits after draining stdin, so `wait_with_output` terminates — unless
/// the checkpointer aborted the process first.
fn serve_session(
    dir: &Path,
    checkpoint_dir: &str,
    env: &[(&str, String)],
    request: &str,
) -> Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir)
        .args([
            "serve",
            "--artifact",
            "dmd.store",
            "--checkpoint-dir",
            checkpoint_dir,
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for var in CONTROLLED_ENV {
        cmd.env_remove(var);
    }
    cmd.env("AUTOMODEL_THREADS", "2");
    for (key, value) in env {
        cmd.env(key, value);
    }
    let mut child = cmd.spawn().expect("spawn auto-model serve");
    child
        .stdin
        .take()
        .expect("serve stdin")
        .write_all(format!("{request}\n").as_bytes())
        .expect("write session request");
    child.wait_with_output().expect("collect serve output")
}

/// Pull the determinism identity (filtered history lines) out of a
/// successful session response line.
fn session_history(stdout: &[u8]) -> Vec<String> {
    let line = String::from_utf8_lossy(stdout);
    let line = line.trim();
    let value: serde_json::Value =
        serde_json::from_str(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"));
    assert!(
        matches!(value.get("ok"), Some(serde_json::Value::Bool(true))),
        "session failed: {line}"
    );
    match value.get("history") {
        Some(serde_json::Value::Array(items)) => items
            .iter()
            .map(|v| v.as_str().expect("history lines are strings").to_string())
            .collect(),
        other => panic!("missing history in {line}: {other:?}"),
    }
}

/// Serve kill-drill (tentpole satellite): a checkpointing server session
/// killed mid-run by `AUTOMODEL_CRASH_AFTER` (process abort inside the
/// checkpoint writer — no response line ever leaves the server), then
/// resumed under the same session id, replays a trial history
/// byte-identical to the uninterrupted reference session.
#[test]
fn serve_session_resumes_byte_identical_after_kill() {
    let dir = scratch("serve");
    let build = cli(
        &dir,
        "2",
        None,
        &[],
        &["dmd", "build", "--out", "dmd.store"],
    );
    assert!(
        build.status.success(),
        "dmd build failed: {}",
        String::from_utf8_lossy(&build.stderr)
    );
    // Budget 24 with a 12-wide GA generation gives the session at least
    // two batch boundaries, i.e. at least two checkpoint writes.
    let request = |resume: bool| {
        format!(
            concat!(
                "{{\"id\":\"drill\",\"seed\":41,\"budget\":24,\"folds\":3,",
                "\"algorithm\":\"IBk\",\"checkpoint\":true,\"resume\":{},",
                "\"dataset\":{{\"synth\":{{\"rows\":80,\"numeric\":3,\"categorical\":1,",
                "\"classes\":2,\"family\":\"hyperplane\",\"seed\":11}}}}}}"
            ),
            resume
        )
    };

    // Phase 1: uninterrupted reference session.
    let reference = serve_session(&dir, "ck-ref", &[], &request(false));
    assert!(
        reference.status.success(),
        "reference serve failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let expected = session_history(&reference.stdout);
    assert!(
        !expected.is_empty(),
        "reference session produced no history"
    );

    // Phase 2: same session, aborted inside the first checkpoint write's
    // successor — the durable generation survives, the response does not.
    let crashed = serve_session(
        &dir,
        "ck-crash",
        &[("AUTOMODEL_CRASH_AFTER", "1".to_string())],
        &request(false),
    );
    assert!(
        !crashed.status.success(),
        "crash run exited cleanly; AUTOMODEL_CRASH_AFTER never fired"
    );
    assert!(
        crashed.stdout.is_empty(),
        "aborted session must not answer, got: {}",
        String::from_utf8_lossy(&crashed.stdout)
    );
    assert!(
        String::from_utf8_lossy(&crashed.stderr).contains("AUTOMODEL_CRASH_AFTER"),
        "abort must come from the checkpoint writer"
    );

    // Phase 3: resume under the same id and checkpoint dir. The restored
    // cache snapshot warm-replays the already-paid prefix and the session
    // finishes with the reference's exact bytes.
    let resumed = serve_session(&dir, "ck-crash", &[], &request(true));
    assert!(
        resumed.status.success(),
        "resumed serve failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let got = session_history(&resumed.stdout);
    assert_eq!(expected, got, "resumed session diverged from reference");
    let line = String::from_utf8_lossy(&resumed.stdout);
    let value: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
    let warm = value
        .get("warm_hits")
        .and_then(|v| v.as_f64())
        .expect("warm_hits");
    assert!(
        warm > 0.0,
        "resume never touched the restored checkpoint cache"
    );
    fs::remove_dir_all(&dir).ok();
}
