//! Determinism guarantees, end to end: the same seed must yield
//! byte-identical serialized artifacts. This is the runtime counterpart of
//! the `determinism` (L2) and `ordered-iteration` (L3) rules in
//! `cargo xtask lint` — those ban ambient entropy and hash-ordered
//! iteration statically; these tests prove the surviving code paths really
//! are replayable. Tests compile with `debug_assertions`, so every
//! `debug_invariant!` in the closure and GA paths fires here too.

mod common;

use auto_model::hpo::{
    BayesianOptimization, Budget, Executor, FnObjective, GaConfig, GeneticAlgorithm, Optimizer,
    OptimizerBuilder, SmacLite, TrialCache,
};
use auto_model::knowledge::acquisition::build_network;
use auto_model::knowledge::experience::Experience;
use auto_model::knowledge::graph::InformationNetwork;
use auto_model::knowledge::paper::{rank_papers, Paper, PaperLevel, VenueType};
use std::collections::BTreeMap;

/// Serialize a graph to a canonical byte string: every edge in iteration
/// order. Any ordering instability in the closure would show up here.
fn graph_bytes(g: &InformationNetwork) -> String {
    let mut out = String::new();
    for (from, to, w) in g.edges() {
        out.push_str(&format!("{from}->{to}:{w};"));
    }
    out
}

fn corpus() -> (Vec<Experience>, BTreeMap<String, usize>) {
    let papers = vec![
        Paper::new("p-weak", PaperLevel::D, VenueType::Conference, 0.2, 2),
        Paper::new("p-mid", PaperLevel::B, VenueType::Conference, 1.5, 40),
        Paper::new("p-strong", PaperLevel::A, VenueType::Journal, 8.0, 900),
    ];
    let experiences = vec![
        Experience::new(
            "p-strong",
            "wine",
            "RandomForest",
            &["J48", "NaiveBayes", "IBk"],
        ),
        Experience::new("p-mid", "wine", "J48", &["OneR", "ZeroR", "NaiveBayes"]),
        Experience::new("p-weak", "wine", "NaiveBayes", &["RandomForest", "ZeroR"]),
        Experience::new("p-mid", "wine", "IBk", &["ZeroR", "OneR"]),
    ];
    let reliability: BTreeMap<String, usize> = rank_papers(&papers).into_iter().collect();
    (experiences, reliability)
}

#[test]
fn dgraph_closure_is_byte_identical_across_runs() {
    let (experiences, reliability) = corpus();
    let run = || {
        let rinf: Vec<&Experience> = experiences.iter().collect();
        // build_network closes transitively and resolves conflicts; in this
        // (debug) build that also re-derives every widest path and checks it.
        graph_bytes(&build_network(&rinf, &reliability))
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty(), "corpus produced no edges");
    assert_eq!(
        first, second,
        "closure output differs between identical runs"
    );
}

#[test]
fn closure_is_idempotent_on_the_public_surface() {
    let (experiences, reliability) = corpus();
    let rinf: Vec<&Experience> = experiences.iter().collect();
    let mut g = build_network(&rinf, &reliability);
    let before = graph_bytes(&g);
    g.close_transitively();
    assert_eq!(
        before,
        graph_bytes(&g),
        "a second closure pass changed edges"
    );
}

#[test]
fn one_ga_generation_is_byte_identical_under_the_same_seed() {
    let space = space();
    let run = |seed: u64| -> String {
        let mut obj = FnObjective(fitness);
        let mut ga = GeneticAlgorithm::with_config(
            seed,
            GaConfig {
                population: 10,
                generations: 1,
                ..GaConfig::default()
            },
        );
        let out = ga
            .optimize(&space, &mut obj, &Budget::evals(20))
            .expect("trials recorded");
        // Serialize every trial: the config (via serde) plus the exact score
        // bits. Any nondeterminism in sampling, crossover, mutation, or
        // evaluation order changes these bytes.
        out.trials
            .iter()
            .map(|t| {
                format!(
                    "{}|{}#{:016x}\n",
                    t.index,
                    serde_json::to_string(&t.config).expect("config serializes"),
                    t.score.to_bits()
                )
            })
            .collect()
    };
    let first = run(97);
    let second = run(97);
    assert_eq!(first, second, "GA trials differ under the same seed");
    assert_ne!(first, run(98), "different seeds should explore differently");
}

// ---- parallel executor: thread count must never leak into outputs ----

use common::{assert_matches_golden, fitness, space, trial_bytes};
use std::sync::Arc;

#[test]
fn ga_batch_evaluation_is_byte_identical_at_1_2_and_8_threads() {
    let space = space();
    let objective = fitness;
    let ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100, // bounded by the budget
            ..GaConfig::default()
        },
    );
    let budget = Budget::evals(120);
    let run = |threads: usize| -> String {
        let out = ga
            .optimize_batch(&space, &objective, &budget, &Executor::new(threads))
            .expect("trials recorded");
        trial_bytes(&out)
    };
    let serial = {
        let mut obj = FnObjective(objective);
        let mut ga = GeneticAlgorithm::with_config(
            97,
            GaConfig {
                population: 10,
                generations: 100,
                ..GaConfig::default()
            },
        );
        trial_bytes(&ga.optimize(&space, &mut obj, &budget).expect("trials"))
    };
    let one = run(1);
    assert_eq!(
        serial, one,
        "batch path diverged from the serial trait path"
    );
    assert_eq!(one, run(2), "2-thread GA diverged from 1-thread");
    assert_eq!(one, run(8), "8-thread GA diverged from 1-thread");
}

#[test]
fn cross_validation_is_byte_identical_at_1_2_and_8_threads() {
    use auto_model::ml::{cross_val_accuracy, cross_val_accuracy_threaded};
    let data = auto_model::data::SynthSpec::new(
        "cv-det",
        200,
        4,
        1,
        3,
        auto_model::data::SynthFamily::Mixed,
        19,
    )
    .generate();
    let registry = auto_model::ml::Registry::fast();
    let spec = registry.get("J48").expect("fast registry carries J48");
    let factory = || spec.build(&spec.default_config(), 5);
    let serial = cross_val_accuracy(factory, &data, 5, 23).unwrap();
    for threads in [1usize, 2, 8] {
        let par =
            cross_val_accuracy_threaded(factory, &data, 5, 23, &Executor::new(threads)).unwrap();
        assert_eq!(
            serial.to_bits(),
            par.to_bits(),
            "{threads}-thread CV accuracy diverged from serial"
        );
    }
}

#[test]
fn registry_sweep_is_byte_identical_at_1_2_and_8_threads() {
    use auto_model::prelude::{EvalContext, Registry, SynthFamily, SynthSpec};
    let data = SynthSpec::new(
        "sweep-det",
        90,
        3,
        1,
        2,
        SynthFamily::GaussianBlobs { spread: 0.8 },
        47,
    )
    .generate();
    let sweep_bytes = |threads: usize| -> String {
        // Fresh context per run: the per-context cache must not be what
        // makes the outputs agree.
        let ctx = EvalContext::fast(Registry::fast());
        ctx.all_performances(&data, threads)
            .into_iter()
            .map(|(name, p)| {
                format!(
                    "{name}={}\n",
                    p.map_or("-".to_string(), |v| format!("{:016x}", v.to_bits()))
                )
            })
            .collect()
    };
    let one = sweep_bytes(1);
    assert_eq!(one, sweep_bytes(2), "2-thread sweep diverged from 1-thread");
    assert_eq!(one, sweep_bytes(8), "8-thread sweep diverged from 1-thread");
}

// ---- evaluation cache: its presence must never leak into outputs ----

#[test]
fn ga_cache_on_is_byte_identical_to_cache_off_at_1_2_and_8_threads() {
    let space = space();
    let ga_config = GaConfig {
        population: 10,
        generations: 100, // bounded by the budget
        ..GaConfig::default()
    };
    let budget = Budget::evals(120);
    let run = |threads: usize, cache: Arc<TrialCache>| -> String {
        let ga = GeneticAlgorithm::with_config(97, ga_config.clone()).with_cache(cache);
        let out = ga
            .optimize_batch(&space, &fitness, &budget, &Executor::new(threads))
            .expect("trials recorded");
        trial_bytes(&out)
    };
    let baseline = run(1, Arc::new(TrialCache::disabled()));
    for threads in [1usize, 2, 8] {
        assert_eq!(
            run(threads, Arc::new(TrialCache::disabled())),
            baseline,
            "cache-off GA at {threads} threads diverged"
        );
        assert_eq!(
            run(threads, Arc::new(TrialCache::default())),
            baseline,
            "cache-on GA at {threads} threads diverged from cache-off"
        );
    }
}

// ---- golden histories: two fixed seeds, three optimizers ----

/// Golden serialization of a run: the incumbent (config + exact score
/// bits) followed by the full trial history.
fn golden_bytes(out: &auto_model::hpo::OptOutcome) -> String {
    format!(
        "best|{}#{:016x}\n{}",
        serde_json::to_string(&out.best_config).expect("config serializes"),
        out.best_score.to_bits(),
        trial_bytes(out)
    )
}

/// Run one optimizer under one cache mode and serialize it canonically.
fn golden_run(kind: &str, seed: u64, cache: Arc<TrialCache>) -> String {
    let space = space();
    match kind {
        "ga" => {
            // The 2-thread batch path: the multi-thread contract is part of
            // what the golden bytes pin down.
            let ga = GeneticAlgorithm::with_config(
                seed,
                GaConfig {
                    population: 10,
                    generations: 100,
                    ..GaConfig::default()
                },
            )
            .with_cache(cache);
            golden_bytes(
                &ga.optimize_batch(&space, &fitness, &Budget::evals(60), &Executor::new(2))
                    .expect("trials recorded"),
            )
        }
        "bo" => {
            let mut bo = BayesianOptimization::new(seed).with_cache(cache);
            golden_bytes(
                &bo.optimize(&space, &mut FnObjective(fitness), &Budget::evals(25))
                    .expect("trials recorded"),
            )
        }
        "smac" => {
            let mut smac = SmacLite::new(seed).with_cache(cache);
            golden_bytes(
                &smac
                    .optimize(&space, &mut FnObjective(fitness), &Budget::evals(30))
                    .expect("trials recorded"),
            )
        }
        other => panic!("unknown optimizer kind {other}"),
    }
}

// ---- structured traces: byte-stable narration of a byte-stable run ----

use auto_model::trace::Tracer;

/// GA run with an in-memory tracer attached: returns (trial bytes, trace
/// bytes). Hostile faults, retries and the cache are all on, so the trace
/// carries the full event vocabulary.
fn traced_ga_run(threads: usize) -> (String, String) {
    common::quiet_injected_panics();
    let space = space();
    let (tracer, handle) = Tracer::in_memory();
    let ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100, // bounded by the budget
            ..GaConfig::default()
        },
    )
    .with_policy(common::hostile_policy())
    .with_cache(Arc::new(TrialCache::default()))
    .with_tracer(Arc::new(tracer));
    let out = ga
        .optimize_batch(
            &space,
            &fitness,
            &Budget::evals(120),
            &Executor::new(threads),
        )
        .expect("trials recorded");
    (trial_bytes(&out), handle.contents())
}

/// Worker buffers merge at batch boundaries in trial-index order, so the
/// *trace* — not just the trial history — must be byte-identical at any
/// thread count, even with injected faults, retries, quarantines and
/// cache hits in play.
#[test]
fn ga_trace_bytes_are_identical_at_1_2_and_8_threads() {
    let (trials_1, trace_1) = traced_ga_run(1);
    for threads in [2usize, 8] {
        let (trials_n, trace_n) = traced_ga_run(threads);
        assert_eq!(
            trials_1, trials_n,
            "{threads}-thread traced GA trial history diverged"
        );
        assert_eq!(
            trace_1, trace_n,
            "{threads}-thread GA trace bytes diverged from 1-thread"
        );
    }
}

/// Golden traces: the full JSONL narration of one GA and one SMAC run is
/// pinned byte-for-byte (the default manual clock stamps every record
/// `t_us = 0`, so the bytes carry no wall-clock). Any change to event
/// vocabulary, codec, emission order, batching, or the runs themselves
/// shows up as a diff. Regenerate deliberately with `AUTOMODEL_REGOLDEN=1`.
#[test]
fn golden_traces_match_for_ga_and_smac() {
    let ga_trace = {
        let space = space();
        let (tracer, handle) = Tracer::in_memory();
        let ga = GeneticAlgorithm::with_config(
            97,
            GaConfig {
                population: 10,
                generations: 100,
                ..GaConfig::default()
            },
        )
        .with_cache(Arc::new(TrialCache::default()))
        .with_tracer(Arc::new(tracer));
        ga.optimize_batch(&space, &fitness, &Budget::evals(60), &Executor::new(2))
            .expect("trials recorded");
        handle.contents()
    };
    assert_matches_golden("trace_ga_seed97.jsonl", &ga_trace);

    let smac_trace = {
        let space = space();
        let (tracer, handle) = Tracer::in_memory();
        let mut smac = SmacLite::new(4242)
            .with_cache(Arc::new(TrialCache::default()))
            .with_tracer(Arc::new(tracer));
        smac.optimize(&space, &mut FnObjective(fitness), &Budget::evals(30))
            .expect("trials recorded");
        handle.contents()
    };
    assert_matches_golden("trace_smac_seed4242.jsonl", &smac_trace);

    assert!(
        !common::regolden(),
        "golden files regenerated; unset AUTOMODEL_REGOLDEN and re-run"
    );
}

/// Every (optimizer, seed) run must be byte-identical with the cache on
/// and off, and match the history checked into `tests/golden/` — so any
/// change to sampling, breeding, surrogate fitting, containment, or the
/// cache itself that alters results is caught as a diff, not silently.
/// Regenerate deliberately with `AUTOMODEL_REGOLDEN=1`.
#[test]
fn golden_ga_bo_smac_histories_match_for_two_seeds_cache_on_and_off() {
    for kind in ["ga", "bo", "smac"] {
        for seed in [97u64, 4242] {
            let off = golden_run(kind, seed, Arc::new(TrialCache::disabled()));
            let on = golden_run(kind, seed, Arc::new(TrialCache::default()));
            assert_eq!(
                off, on,
                "{kind} seed {seed}: cache-on history diverged from cache-off"
            );
            assert_matches_golden(&format!("{kind}_seed{seed}.txt"), &off);
        }
    }
    // A regeneration run rewrote the files above instead of checking them;
    // fail loudly so it can never be mistaken for a green suite.
    assert!(
        !common::regolden(),
        "golden files regenerated; unset AUTOMODEL_REGOLDEN and re-run"
    );
}
