//! Fault containment, end to end: with a seeded [`FaultPlan`] injecting
//! panics and NaN losses into ~10% of trial indices, every search must
//! still return a valid incumbent, quarantine the configs whose retries
//! were exhausted, and stay byte-identical across thread counts. This is
//! the runtime counterpart of the `no-adhoc-catch-unwind` (L7) rule: the
//! single containment site in `crates/parallel` is what makes these
//! guarantees provable. The shared harness (space, fitness, serialization,
//! containment assertions) lives in `tests/common/mod.rs`.

mod common;

use auto_model::hpo::{
    BayesianOptimization, Budget, Config, Executor, FaultPlan, FnObjective, GaConfig,
    GeneticAlgorithm, Optimizer, OptimizerBuilder, SmacLite, TrialCache, TrialPolicy,
};
use common::{
    assert_contained, fitness, hostile_policy, quiet_injected_panics, space, trial_bytes,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn ga_bo_and_smac_survive_ten_percent_panics_and_nans() {
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(60);

    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100, // bounded by the budget
            ..GaConfig::default()
        },
    )
    .with_policy(hostile_policy());
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("GA finds a usable incumbent under faults");
    assert_contained(&out, "GA");

    let mut bo = BayesianOptimization::new(11).with_policy(hostile_policy());
    let out = bo
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("BO finds a usable incumbent under faults");
    assert_contained(&out, "BO");

    let mut smac = SmacLite::new(23).with_policy(hostile_policy());
    let out = smac
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("SMAC finds a usable incumbent under faults");
    assert_contained(&out, "SMAC");
}

#[test]
fn failed_trials_are_recorded_at_the_penalty_and_never_win() {
    quiet_injected_panics();
    let space = space();
    let policy = hostile_policy();
    let penalty = policy.penalty;
    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100,
            ..GaConfig::default()
        },
    )
    .with_policy(policy);
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &Budget::evals(60))
        .expect("trials recorded");
    let failed: Vec<_> = out.trials.iter().filter(|t| t.failure.is_some()).collect();
    assert!(!failed.is_empty(), "the plan must actually inject faults");
    for t in &failed {
        assert_eq!(
            t.score.to_bits(),
            penalty.to_bits(),
            "failed trial {} must be recorded at the policy penalty",
            t.index
        );
    }
    // The incumbent is a usable trial, never a penalized one.
    let best = out
        .trials
        .iter()
        .filter(|t| t.is_usable())
        .map(|t| t.score)
        .max_by(f64::total_cmp)
        .expect("a usable trial exists");
    assert_eq!(out.best_score.to_bits(), best.to_bits());
}

#[test]
fn ga_under_faults_is_byte_identical_at_1_2_and_8_threads() {
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(120);
    // Panics + NaNs + scheduling delays: delays perturb worker timing and
    // must not perturb results.
    let policy = TrialPolicy::default()
        .with_max_attempts(1)
        .with_faults(FaultPlan::with_rates(5, 0.1, 0.1, 0.05));
    let ga_config = GaConfig {
        population: 10,
        generations: 100,
        ..GaConfig::default()
    };
    let serial = {
        let mut ga =
            GeneticAlgorithm::with_config(97, ga_config.clone()).with_policy(policy.clone());
        trial_bytes(
            &ga.optimize(&space, &mut FnObjective(fitness), &budget)
                .expect("trials recorded"),
        )
    };
    // A fresh optimizer per thread count: the default evaluation cache is
    // per-instance, and reusing one instance would warm it across runs —
    // a warm cache suppresses later index-keyed fault draws on duplicate
    // genomes, which is cross-*run* state, not a thread-count effect.
    let run = |threads: usize| -> String {
        let ga = GeneticAlgorithm::with_config(97, ga_config.clone()).with_policy(policy.clone());
        let out = ga
            .optimize_batch(&space, &fitness, &budget, &Executor::new(threads))
            .expect("trials recorded");
        trial_bytes(&out)
    };
    let one = run(1);
    assert_eq!(
        serial, one,
        "faulted batch path diverged from the serial trait path"
    );
    assert_eq!(one, run(2), "2-thread faulted GA diverged from 1-thread");
    assert_eq!(one, run(8), "8-thread faulted GA diverged from 1-thread");
}

#[test]
fn default_retry_makes_fault_injection_invisible_in_results() {
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(80);
    let ga_config = GaConfig {
        population: 10,
        generations: 100,
        ..GaConfig::default()
    };
    let run = |policy: TrialPolicy| -> String {
        let mut ga = GeneticAlgorithm::with_config(97, ga_config.clone()).with_policy(policy);
        trial_bytes(
            &ga.optimize(&space, &mut FnObjective(fitness), &budget)
                .expect("trials recorded"),
        )
    };
    // Faults fire on attempt 0 only; the default policy's one retry must
    // therefore recover every injected fault and reproduce the clean run
    // byte for byte — which is why CI can run the whole suite with
    // AUTOMODEL_FAULTS set and expect identical results.
    let clean = run(TrialPolicy::default());
    let drilled = run(TrialPolicy::default().with_faults(FaultPlan::with_rates(5, 0.1, 0.1, 0.05)));
    assert_eq!(
        clean, drilled,
        "retried fault injection must be invisible in serialized results"
    );
}

#[test]
fn automodel_faults_env_format_parses() {
    let plan = FaultPlan::parse("seed=3,panic=0.1,nan=0.1,delay=0.05").expect("well-formed spec");
    assert_eq!(plan, FaultPlan::with_rates(3, 0.1, 0.1, 0.05));
    // Whitespace around pairs is tolerated; an empty spec injects nothing.
    let spaced = FaultPlan::parse(" seed=3 , panic=0.1 ").expect("spaces are fine");
    assert_eq!(spaced.seed, 3);
    assert_eq!(spaced.panic_rate, 0.1);
    assert!(FaultPlan::parse("")
        .expect("empty spec is a no-op plan")
        .is_empty());
    // Malformed pieces are rejected with a typed error, not silently
    // dropped — a drill that half-applies is worse than one that aborts.
    for bad in ["nan=oops", "bogus=1", "delay", "panic=1.5", "seed=-1"] {
        assert!(
            FaultPlan::parse(bad).is_err(),
            "malformed spec {bad:?} must be rejected"
        );
    }
}

#[test]
fn explicit_fault_indices_quarantine_exactly_those_configs() {
    quiet_injected_panics();
    let space = space();
    let mut plan = FaultPlan::none();
    plan.panic_at = [3u64, 7].into_iter().collect();
    plan.nan_at = [5u64].into_iter().collect();
    let policy = TrialPolicy::default()
        .with_max_attempts(1)
        .with_faults(plan);
    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100,
            ..GaConfig::default()
        },
    )
    .with_policy(policy);
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &Budget::evals(40))
        .expect("trials recorded");
    let failed: Vec<usize> = out
        .trials
        .iter()
        .filter(|t| t.failure.is_some())
        .map(|t| t.index)
        .collect();
    assert_eq!(failed, vec![3, 5, 7], "exactly the planned indices fail");
    let quarantined: Vec<usize> = out.quarantine.iter().map(|r| r.trial_index).collect();
    assert_eq!(quarantined, vec![3, 5, 7]);
}

// ---- evaluation cache × fault containment ----

#[test]
fn cached_failures_are_not_retried_and_quarantine_counts_match() {
    // Config-deterministic failures (shallow genomes score NaN) with no
    // retries: a failed outcome served from the cache must replay as the
    // same failure — never re-invoking the objective, which would grant the
    // config more attempts than the policy allows — and the quarantine log
    // must match the uncached run's exactly.
    let space = space();
    let live_calls = AtomicUsize::new(0);
    let objective = |c: &Config| {
        live_calls.fetch_add(1, Ordering::Relaxed);
        if c.int_or("depth", 0) <= 4 {
            f64::NAN
        } else {
            fitness(c)
        }
    };
    let policy = TrialPolicy::default().with_max_attempts(1);
    let ga_config = GaConfig {
        population: 10,
        generations: 100, // bounded by the budget
        ..GaConfig::default()
    };
    let budget = Budget::evals(60);
    let executor = Executor::new(2);
    let run = |cache: Arc<TrialCache>| {
        let ga = GeneticAlgorithm::with_config(97, ga_config.clone())
            .with_policy(policy.clone())
            .with_cache(cache);
        let before = live_calls.load(Ordering::Relaxed);
        let out = ga
            .optimize_batch(&space, &objective, &budget, &executor)
            .expect("trials recorded");
        let calls = live_calls.load(Ordering::Relaxed) - before;
        let quarantined: Vec<String> = out.quarantine.iter().map(|r| r.key.clone()).collect();
        (trial_bytes(&out), quarantined, calls)
    };

    let (bytes_off, quarantine_off, calls_off) = run(Arc::new(TrialCache::disabled()));
    assert!(
        !quarantine_off.is_empty(),
        "shallow genomes must fail and quarantine"
    );

    // Cache on, cold: byte-identical, same quarantine log, never more live
    // calls than uncached (duplicates are served from the cache).
    let shared = Arc::new(TrialCache::default());
    let (bytes_on, quarantine_on, calls_on) = run(shared.clone());
    assert_eq!(bytes_on, bytes_off, "cache-on run diverged from cache-off");
    assert_eq!(quarantine_on, quarantine_off, "quarantine logs diverged");
    assert!(calls_on <= calls_off, "{calls_on} > {calls_off}");

    // Cache on, warm (same shared cache, same seed): every outcome —
    // including every failure — replays from the cache. Zero live calls
    // proves no cached failure was retried past its exhausted policy.
    let (bytes_replay, quarantine_replay, calls_replay) = run(shared);
    assert_eq!(calls_replay, 0, "a cached outcome re-invoked the objective");
    assert_eq!(bytes_replay, bytes_off, "replayed run diverged");
    assert_eq!(
        quarantine_replay, quarantine_off,
        "replayed quarantine log diverged from the uncached run"
    );
}

#[test]
fn retried_fault_injection_is_invisible_with_the_cache_enabled() {
    // The companion of `default_retry_makes_fault_injection_invisible_in_
    // results`: with the cache enabled on top of an AUTOMODEL_FAULTS-style
    // drill, the default policy's retry still absorbs every injected fault
    // and the run stays byte-identical to a clean, uncached one. (Recovered
    // outcomes are cached post-retry, so a replayed success never hides a
    // quarantine decision — nothing is quarantined in either run.)
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(80);
    let ga_config = GaConfig {
        population: 10,
        generations: 100,
        ..GaConfig::default()
    };
    let run = |policy: TrialPolicy, cache: Arc<TrialCache>| {
        let mut ga = GeneticAlgorithm::with_config(97, ga_config.clone())
            .with_policy(policy)
            .with_cache(cache);
        let out = ga
            .optimize(&space, &mut FnObjective(fitness), &budget)
            .expect("trials recorded");
        (trial_bytes(&out), out.quarantine.len())
    };
    let (clean, q_clean) = run(TrialPolicy::default(), Arc::new(TrialCache::disabled()));
    let drilled_policy =
        TrialPolicy::default().with_faults(FaultPlan::with_rates(5, 0.1, 0.1, 0.05));
    let (drilled, q_drilled) = run(drilled_policy, Arc::new(TrialCache::default()));
    assert_eq!(
        clean, drilled,
        "cached + retried fault injection must be invisible in serialized results"
    );
    assert_eq!(q_clean, 0);
    assert_eq!(
        q_drilled, 0,
        "default retry must absorb every injected fault"
    );
}

#[test]
fn hostile_faults_with_cache_stay_contained_for_every_optimizer() {
    // Under rate-based index-keyed faults with no retries the cached run is
    // not required to equal the uncached one (a duplicate whose first
    // occurrence succeeded replays that success instead of drawing the
    // later index's fault) — but containment must still hold: finite
    // incumbent, usable trials, named quarantine records.
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(60);

    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100,
            ..GaConfig::default()
        },
    )
    .with_policy(hostile_policy())
    .with_cache(Arc::new(TrialCache::default()));
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("GA finds a usable incumbent under faults");
    assert_contained(&out, "GA+cache");

    let mut bo = BayesianOptimization::new(11)
        .with_policy(hostile_policy())
        .with_cache(Arc::new(TrialCache::default()));
    let out = bo
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("BO finds a usable incumbent under faults");
    assert_contained(&out, "BO+cache");

    let mut smac = SmacLite::new(23)
        .with_policy(hostile_policy())
        .with_cache(Arc::new(TrialCache::default()));
    let out = smac
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("SMAC finds a usable incumbent under faults");
    assert_contained(&out, "SMAC+cache");
}
