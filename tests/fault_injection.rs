//! Fault containment, end to end: with a seeded [`FaultPlan`] injecting
//! panics and NaN losses into ~10% of trial indices, every search must
//! still return a valid incumbent, quarantine the configs whose retries
//! were exhausted, and stay byte-identical across thread counts. This is
//! the runtime counterpart of the `no-adhoc-catch-unwind` (L7) rule: the
//! single containment site in `crates/parallel` is what makes these
//! guarantees provable.

use auto_model::hpo::{
    BayesianOptimization, Budget, Config, Domain, Executor, FaultPlan, FnObjective, GaConfig,
    GeneticAlgorithm, OptOutcome, Optimizer, SearchSpace, SmacLite, TrialPolicy,
};

/// Injected panics run the panic hook before `contain` catches them, and
/// executor workers print outside libtest's capture. Silence exactly the
/// injected ones; real panics still report.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !message.contains("injected fault") {
                previous(info);
            }
        }));
    });
}

fn space() -> SearchSpace {
    SearchSpace::builder()
        .add("lr", Domain::float(1e-4, 1.0))
        .add("depth", Domain::int(1, 16))
        .add("kernel", Domain::cat(&["rbf", "poly", "linear"]))
        .build()
        .expect("space builds")
}

fn fitness(c: &Config) -> f64 {
    c.float_or("lr", 0.0) + c.int_or("depth", 0) as f64 / 16.0
}

/// ~10% of trial indices panic and ~10% score NaN, with no retry to
/// absorb them — the worst case the acceptance criterion names.
fn hostile_policy() -> TrialPolicy {
    TrialPolicy::default()
        .with_max_attempts(1)
        .with_faults(FaultPlan::with_rates(5, 0.1, 0.1, 0.0))
}

/// Canonical bytes for a run: every trial's index, serialized config,
/// exact score bits, and failure (if any). Any nondeterminism — including
/// in *which* trials fail and how — changes these bytes.
fn trial_bytes(out: &OptOutcome) -> String {
    out.trials
        .iter()
        .map(|t| {
            format!(
                "{}|{}#{:016x}{}\n",
                t.index,
                serde_json::to_string(&t.config).expect("config serializes"),
                t.score.to_bits(),
                t.failure
                    .as_ref()
                    .map(|f| format!("!{f}"))
                    .unwrap_or_default(),
            )
        })
        .collect()
}

/// The acceptance checks shared by all three optimizers: a valid finite
/// incumbent backed by a usable trial, and a quarantine log naming the
/// configs that exhausted their retries.
fn assert_contained(out: &OptOutcome, label: &str) {
    assert!(
        out.best_score.is_finite(),
        "{label}: incumbent score must be finite"
    );
    assert!(
        out.best_score > TrialPolicy::default().penalty,
        "{label}: incumbent must beat the failure penalty"
    );
    assert!(
        out.trials.iter().any(|t| t.is_usable()),
        "{label}: at least one usable trial must back the incumbent"
    );
    assert!(
        !out.quarantine.is_empty(),
        "{label}: ~10% fault rates with no retries must quarantine configs"
    );
    for record in &out.quarantine {
        assert!(
            !record.key.is_empty(),
            "{label}: quarantine records name the config"
        );
        let failure = record.failure.to_string();
        assert!(
            failure.contains("injected fault") || failure.contains("non-finite"),
            "{label}: unexpected quarantined failure: {failure}"
        );
    }
}

#[test]
fn ga_bo_and_smac_survive_ten_percent_panics_and_nans() {
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(60);

    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100, // bounded by the budget
            ..GaConfig::default()
        },
    )
    .with_policy(hostile_policy());
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("GA finds a usable incumbent under faults");
    assert_contained(&out, "GA");

    let mut bo = BayesianOptimization::new(11).with_policy(hostile_policy());
    let out = bo
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("BO finds a usable incumbent under faults");
    assert_contained(&out, "BO");

    let mut smac = SmacLite::new(23).with_policy(hostile_policy());
    let out = smac
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("SMAC finds a usable incumbent under faults");
    assert_contained(&out, "SMAC");
}

#[test]
fn failed_trials_are_recorded_at_the_penalty_and_never_win() {
    quiet_injected_panics();
    let space = space();
    let policy = hostile_policy();
    let penalty = policy.penalty;
    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100,
            ..GaConfig::default()
        },
    )
    .with_policy(policy);
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &Budget::evals(60))
        .expect("trials recorded");
    let failed: Vec<_> = out.trials.iter().filter(|t| t.failure.is_some()).collect();
    assert!(!failed.is_empty(), "the plan must actually inject faults");
    for t in &failed {
        assert_eq!(
            t.score.to_bits(),
            penalty.to_bits(),
            "failed trial {} must be recorded at the policy penalty",
            t.index
        );
    }
    // The incumbent is a usable trial, never a penalized one.
    let best = out
        .trials
        .iter()
        .filter(|t| t.is_usable())
        .map(|t| t.score)
        .max_by(f64::total_cmp)
        .expect("a usable trial exists");
    assert_eq!(out.best_score.to_bits(), best.to_bits());
}

#[test]
fn ga_under_faults_is_byte_identical_at_1_2_and_8_threads() {
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(120);
    // Panics + NaNs + scheduling delays: delays perturb worker timing and
    // must not perturb results.
    let policy = TrialPolicy::default()
        .with_max_attempts(1)
        .with_faults(FaultPlan::with_rates(5, 0.1, 0.1, 0.05));
    let ga_config = GaConfig {
        population: 10,
        generations: 100,
        ..GaConfig::default()
    };
    let serial = {
        let mut ga =
            GeneticAlgorithm::with_config(97, ga_config.clone()).with_policy(policy.clone());
        trial_bytes(
            &ga.optimize(&space, &mut FnObjective(fitness), &budget)
                .expect("trials recorded"),
        )
    };
    let ga = GeneticAlgorithm::with_config(97, ga_config).with_policy(policy);
    let run = |threads: usize| -> String {
        let out = ga
            .optimize_batch(&space, &fitness, &budget, &Executor::new(threads))
            .expect("trials recorded");
        trial_bytes(&out)
    };
    let one = run(1);
    assert_eq!(
        serial, one,
        "faulted batch path diverged from the serial trait path"
    );
    assert_eq!(one, run(2), "2-thread faulted GA diverged from 1-thread");
    assert_eq!(one, run(8), "8-thread faulted GA diverged from 1-thread");
}

#[test]
fn default_retry_makes_fault_injection_invisible_in_results() {
    quiet_injected_panics();
    let space = space();
    let budget = Budget::evals(80);
    let ga_config = GaConfig {
        population: 10,
        generations: 100,
        ..GaConfig::default()
    };
    let run = |policy: TrialPolicy| -> String {
        let mut ga = GeneticAlgorithm::with_config(97, ga_config.clone()).with_policy(policy);
        trial_bytes(
            &ga.optimize(&space, &mut FnObjective(fitness), &budget)
                .expect("trials recorded"),
        )
    };
    // Faults fire on attempt 0 only; the default policy's one retry must
    // therefore recover every injected fault and reproduce the clean run
    // byte for byte — which is why CI can run the whole suite with
    // AUTOMODEL_FAULTS set and expect identical results.
    let clean = run(TrialPolicy::default());
    let drilled = run(TrialPolicy::default().with_faults(FaultPlan::with_rates(5, 0.1, 0.1, 0.05)));
    assert_eq!(
        clean, drilled,
        "retried fault injection must be invisible in serialized results"
    );
}

#[test]
fn automodel_faults_env_format_parses() {
    let plan = FaultPlan::parse("seed=3,panic=0.1,nan=0.1,delay=0.05");
    assert_eq!(plan, FaultPlan::with_rates(3, 0.1, 0.1, 0.05));
    // Malformed pieces are ignored — a drill must never abort the run.
    let sloppy = FaultPlan::parse(" seed=3 , panic=0.1, nan=oops, bogus=1, delay ");
    assert_eq!(sloppy.seed, 3);
    assert_eq!(sloppy.panic_rate, 0.1);
    assert_eq!(sloppy.nan_rate, 0.0);
    assert!(FaultPlan::parse("").is_empty());
}

#[test]
fn explicit_fault_indices_quarantine_exactly_those_configs() {
    quiet_injected_panics();
    let space = space();
    let mut plan = FaultPlan::none();
    plan.panic_at = [3u64, 7].into_iter().collect();
    plan.nan_at = [5u64].into_iter().collect();
    let policy = TrialPolicy::default()
        .with_max_attempts(1)
        .with_faults(plan);
    let mut ga = GeneticAlgorithm::with_config(
        97,
        GaConfig {
            population: 10,
            generations: 100,
            ..GaConfig::default()
        },
    )
    .with_policy(policy);
    let out = ga
        .optimize(&space, &mut FnObjective(fitness), &Budget::evals(40))
        .expect("trials recorded");
    let failed: Vec<usize> = out
        .trials
        .iter()
        .filter(|t| t.failure.is_some())
        .map(|t| t.index)
        .collect();
    assert_eq!(failed, vec![3, 5, 7], "exactly the planned indices fail");
    let quarantined: Vec<usize> = out.quarantine.iter().map(|r| r.trial_index).collect();
    assert_eq!(quarantined, vec![3, 5, 7]);
}
