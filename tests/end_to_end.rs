//! End-to-end integration tests: corpus → DMD → UDR → solution, plus the
//! Auto-Weka baseline, exercising every crate through the public facade.

use auto_model::hpo::Budget;
use auto_model::prelude::*;

fn trained_dmd() -> (Dmd, DmdInput) {
    let corpus = CorpusSpec::small().build();
    let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
    let dmd = DmdConfig::fast().run(&input).expect("DMD pipeline");
    (dmd, input)
}

#[test]
fn full_auto_model_loop_solves_a_fresh_task() {
    let (dmd, _) = trained_dmd();
    let dataset = SynthSpec::new("fresh", 180, 4, 1, 2, SynthFamily::Hyperplane, 31)
        .with_label_noise(0.05)
        .generate();
    let solution = UdrConfig::fast().solve(&dmd, &dataset).expect("UDR");
    assert!(dmd.registry.get(&solution.algorithm).is_some());
    assert!(
        solution.score > 0.6,
        "tuned accuracy too low: {}",
        solution.score
    );
    // The returned configuration must be valid for the returned algorithm.
    let spec = dmd.registry.get(&solution.algorithm).unwrap();
    spec.param_space().validate(&solution.config).unwrap();
}

#[test]
fn auto_model_and_auto_weka_answer_the_same_cash_problem() {
    let (dmd, _) = trained_dmd();
    let dataset = SynthSpec::new("duel", 160, 3, 1, 2, SynthFamily::Mixed, 37).generate();
    let budget = Budget::evals(20);

    let mut udr = UdrConfig::fast();
    udr.tuning_budget = budget.clone();
    let am = udr.solve(&dmd, &dataset).expect("Auto-Model");

    let aw = AutoWekaConfig {
        budget,
        cv_folds: 3,
        seed: 2,
        ..AutoWekaConfig::fast()
    }
    .solve(&dmd.registry, &dataset)
    .expect("Auto-Weka");

    for solution in [&am, &aw] {
        assert!(
            solution.score > 0.5,
            "{}: {}",
            solution.algorithm,
            solution.score
        );
        let spec = dmd.registry.get(&solution.algorithm).unwrap();
        spec.param_space().validate(&solution.config).unwrap();
        assert!(spec.check_applicable(&dataset).is_ok());
    }
}

#[test]
fn dmd_key_features_flow_into_sna_scoring() {
    let (dmd, input) = trained_dmd();
    // Every knowledge dataset must be scorable, and the score vector spans
    // the registry.
    for dataset in input.datasets.values() {
        let scores = dmd.scores(dataset);
        assert_eq!(scores.len(), dmd.registry.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }
    assert!(dmd.n_key_features() >= 1);
    assert!(dmd.n_key_features() <= 23);
}

#[test]
fn solutions_are_reproducible_under_fixed_seeds() {
    let (dmd, _) = trained_dmd();
    let dataset = SynthSpec::new("repro", 140, 3, 0, 2, SynthFamily::Hyperplane, 41).generate();
    let a = UdrConfig::fast().solve(&dmd, &dataset).unwrap();
    let b = UdrConfig::fast().solve(&dmd, &dataset).unwrap();
    assert_eq!(a.algorithm, b.algorithm);
    assert_eq!(a.config, b.config);
    assert_eq!(a.score, b.score);
}

#[test]
fn udr_reports_technique_following_the_probe_rule() {
    use auto_model::hpo::ManualClock;
    use std::sync::Arc;
    let (dmd, _) = trained_dmd();
    let dataset = SynthSpec::new("probe", 150, 3, 0, 2, SynthFamily::Hyperplane, 43).generate();
    // The probe reads the injected clock, which never advances: probe_time
    // is exactly zero, so the routing decision depends only on the
    // threshold — no wall-clock flake either way.
    let clock = Arc::new(ManualClock::new());
    // Forced-GA path: 0 < any positive threshold.
    let mut ga_udr = UdrConfig::fast();
    ga_udr.probe_clock = clock.clone();
    ga_udr.eval_time_threshold = std::time::Duration::from_secs(3600);
    let ga_solution = ga_udr.solve(&dmd, &dataset).unwrap();
    assert_eq!(ga_solution.technique, "genetic-algorithm");
    // Forced-BO path: 0 < 0 fails, so the probe counts as "expensive".
    let mut bo_udr = UdrConfig::fast();
    bo_udr.probe_clock = clock;
    bo_udr.eval_time_threshold = std::time::Duration::ZERO;
    bo_udr.tuning_budget = Budget::evals(12);
    let bo_solution = bo_udr.solve(&dmd, &dataset).unwrap();
    assert_eq!(bo_solution.technique, "bayesian-optimization");
}

#[test]
fn poratio_pipeline_works_through_the_facade() {
    use auto_model::core::poratio::{po_ratio, EvalContext};
    let registry = auto_model::ml::Registry::fast();
    let ctx = EvalContext::fast(registry);
    let dataset = SynthSpec::new(
        "po",
        130,
        3,
        1,
        2,
        SynthFamily::GaussianBlobs { spread: 0.9 },
        47,
    )
    .generate();
    let sweep = ctx.all_performances(&dataset, 2);
    assert_eq!(sweep.len(), ctx.registry.len());
    let best = EvalContext::p_max(&sweep).unwrap();
    let avg = EvalContext::p_avg(&sweep).unwrap();
    assert!(best >= avg);
    // The best algorithm's PORatio is 1 by definition.
    let best_name = sweep
        .iter()
        .filter(|(_, p)| p.is_some())
        .max_by(|a, b| a.1.unwrap().total_cmp(&b.1.unwrap()))
        .map(|(n, _)| n.clone())
        .unwrap();
    assert_eq!(po_ratio(&sweep, &best_name), Some(1.0));
}
