//! Session-oracle conformance suite for `auto-model serve` (tier-1).
//!
//! Drives a real spawned server over the real TCP JSONL protocol and
//! checks the serving contracts end to end:
//!
//! * **Session isolation / determinism** — N concurrent sessions each
//!   produce a trial history byte-identical to the same session run
//!   alone, at 1, 2 and 8 executor threads, including when one of the
//!   concurrent sessions runs with injected trial faults.
//! * **Cache-sharing correctness** — a warm session (same request
//!   replayed through the shared trial cache) is bit-exact with the
//!   cold one.
//! * **Fault containment** — a session with a hostile fault plan
//!   answers on its own response line and leaves every other session's
//!   bytes untouched.
//! * **Budget enforcement** — sessions never exceed their evaluation
//!   budget, and over-ceiling requests are rejected typed.
//! * **Robustness** — malformed request lines get typed errors and the
//!   server keeps answering on the same connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::thread;

use serde_json::Value;

const BIN: &str = env!("CARGO_BIN_EXE_auto-model");

/// Env vars the oracle controls per server; anything inherited from the
/// surrounding shell must not leak in.
const CONTROLLED_ENV: &[&str] = &[
    "AUTOMODEL_CACHE",
    "AUTOMODEL_FAULTS",
    "AUTOMODEL_TRACE",
    "AUTOMODEL_THREADS",
    "AUTOMODEL_REGOLDEN",
    "AUTOMODEL_CRASH_AFTER",
];

/// A spawned `serve --listen 127.0.0.1:0` child, killed on drop.
struct ServerHandle {
    child: Child,
    addr: String,
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Build one persisted DMD artifact for the whole suite: every server
/// spawn loads it instead of retraining a demo model, which both speeds
/// the suite up and exercises the artifact-loading startup path.
fn artifact() -> &'static PathBuf {
    static ARTIFACT: OnceLock<PathBuf> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("automodel-serve-oracle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let path = dir.join("dmd.store");
        let mut cmd = Command::new(BIN);
        cmd.args(["dmd", "build", "--out"])
            .arg(&path)
            .current_dir(&dir);
        for var in CONTROLLED_ENV {
            cmd.env_remove(var);
        }
        let out = cmd.output().expect("spawn dmd build");
        assert!(
            out.status.success(),
            "dmd build failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        path
    })
}

fn spawn_server(threads: &str, extra: &[&str]) -> ServerHandle {
    let mut cmd = Command::new(BIN);
    cmd.args(["serve", "--listen", "127.0.0.1:0", "--artifact"])
        .arg(artifact())
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for var in CONTROLLED_ENV {
        cmd.env_remove(var);
    }
    cmd.env("AUTOMODEL_THREADS", threads);
    let mut child = cmd.spawn().expect("spawn auto-model serve");
    let stdout = child.stdout.take().expect("server stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    ServerHandle { child, addr }
}

/// One request over its own connection; returns the raw response line.
fn roundtrip(addr: &str, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send request");
    stream.flush().expect("flush request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "server closed without answering");
    line.trim_end().to_string()
}

fn request(id: &str, seed: u64, budget: usize, extra: &str) -> String {
    format!(
        concat!(
            "{{\"id\":\"{}\",\"seed\":{},\"budget\":{},\"folds\":3,",
            "\"algorithm\":\"IBk\",{}\"dataset\":{{\"synth\":{{\"rows\":80,",
            "\"numeric\":3,\"categorical\":1,\"classes\":2,",
            "\"family\":\"hyperplane\",\"seed\":11}}}}}}"
        ),
        id, seed, budget, extra
    )
}

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("bad response JSON {line:?}: {e}"))
}

fn expect_ok(line: &str) -> Value {
    let value = parse(line);
    assert!(
        matches!(value.get("ok"), Some(Value::Bool(true))),
        "session failed: {line}"
    );
    value
}

/// The byte string the determinism contract is stated over: the
/// provenance-filtered history plus the canonical score bits.
fn identity(value: &Value) -> (Vec<String>, String) {
    let history = match value.get("history") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| v.as_str().expect("history lines are strings").to_string())
            .collect(),
        other => panic!("missing history: {other:?}"),
    };
    let bits = value
        .get("score_bits")
        .and_then(|v| v.as_str())
        .expect("score_bits")
        .to_string();
    (history, bits)
}

/// The crown-jewel gate: four concurrent sessions — one of them under
/// injected trial faults — each byte-identical to the same session run
/// alone, at the given executor width.
fn isolation_drill(threads: &str) {
    let server = spawn_server(threads, &[]);
    let sessions: Vec<(u64, &str)> = vec![
        (201, ""),
        (202, ""),
        (203, "\"faults\":\"seed=9,nan=0.4\","),
        (204, ""),
    ];

    // Alone: each session on an otherwise idle server.
    let solo: Vec<_> = sessions
        .iter()
        .map(|(seed, extra)| {
            let line = roundtrip(&server.addr, &request("solo", *seed, 8, extra));
            identity(&expect_ok(&line))
        })
        .collect();

    // Concurrent: the same four sessions at once, each on its own
    // connection, admission-scheduled by the round-robin gate.
    let workers: Vec<_> = sessions
        .iter()
        .map(|(seed, extra)| {
            let addr = server.addr.clone();
            let req = request("conc", *seed, 8, extra);
            thread::spawn(move || {
                let line = roundtrip(&addr, &req);
                identity(&expect_ok(&line))
            })
        })
        .collect();
    for (expected, worker) in solo.iter().zip(workers) {
        let got = worker.join().expect("session thread");
        assert_eq!(
            expected, &got,
            "concurrency changed a session's bytes at {threads} thread(s)"
        );
    }
}

#[test]
fn concurrent_sessions_are_byte_identical_to_solo_one_thread() {
    isolation_drill("1");
}

#[test]
fn concurrent_sessions_are_byte_identical_to_solo_two_threads() {
    isolation_drill("2");
}

#[test]
fn concurrent_sessions_are_byte_identical_to_solo_eight_threads() {
    isolation_drill("8");
}

#[test]
fn warm_session_replays_cold_bit_exactly() {
    let server = spawn_server("2", &[]);
    let cold = expect_ok(&roundtrip(&server.addr, &request("cold", 55, 8, "")));
    let warm = expect_ok(&roundtrip(&server.addr, &request("warm", 55, 8, "")));
    assert_eq!(identity(&cold), identity(&warm));
    // The warm run must actually have used the shared cache, not just
    // recomputed: its hit counter moves.
    let hits = warm
        .get("cache_hits")
        .and_then(|v| v.as_f64())
        .expect("cache_hits");
    assert!(hits > 0.0, "warm session never touched the shared cache");
}

#[test]
fn faulty_session_answers_typed_and_contained() {
    let server = spawn_server("2", &[]);
    let clean_before = identity(&expect_ok(&roundtrip(
        &server.addr,
        &request("fc-clean", 77, 8, ""),
    )));
    // NaN on every first attempt: faults are transient (the policy's
    // retry re-runs clean), so the session still answers — but every
    // trial must show the retry in its durable attempt count, proving
    // the per-session fault plan really fired in this process.
    let hostile = roundtrip(
        &server.addr,
        &request("fc-hostile", 77, 8, "\"faults\":\"seed=3,nan=1.0\","),
    );
    let value = parse(&hostile);
    match value.get("ok") {
        Some(Value::Bool(true)) => {
            let (history, _) = identity(&value);
            let retried = history
                .iter()
                .filter(|line| {
                    line.contains("\"ev\":\"trial_end\"") && line.contains("\"attempts\":2")
                })
                .count();
            assert!(retried > 0, "fault plan never fired: {hostile}");
        }
        Some(Value::Bool(false)) => {
            let kind = value
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str())
                .expect("typed error kind");
            assert_eq!(kind, "session", "unexpected error kind in {hostile}");
        }
        other => panic!("unparseable outcome {other:?} in {hostile}"),
    }
    // The shared substrate is untouched: the clean session still
    // replays byte-identically after the hostile one.
    let clean_after = identity(&expect_ok(&roundtrip(
        &server.addr,
        &request("fc-clean2", 77, 8, ""),
    )));
    assert_eq!(clean_before, clean_after);
}

#[test]
fn budgets_are_enforced_and_over_ceiling_rejected() {
    let server = spawn_server("2", &["--max-budget", "16"]);
    let ok = expect_ok(&roundtrip(&server.addr, &request("bd", 5, 6, "")));
    let trials = ok.get("trials").and_then(|v| v.as_f64()).expect("trials");
    assert!(trials <= 6.0, "budget 6 but ran {trials} trials");

    let rejected = parse(&roundtrip(&server.addr, &request("bd-big", 5, 32, "")));
    assert!(matches!(rejected.get("ok"), Some(Value::Bool(false))));
    let kind = rejected
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .expect("error kind");
    assert_eq!(kind, "invalid-value");
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let server = spawn_server("1", &[]);
    let stream = TcpStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let malformed = [
        ("{not json", "invalid-json"),
        ("[]", "not-object"),
        ("{\"id\":\"x\"}", "missing-field"),
        ("{\"id\":\"x\",\"seed\":1,\"boom\":2}", "unknown-field"),
        (
            "{\"id\":\"../etc\",\"dataset\":{\"csv\":\"a\"}}",
            "invalid-value",
        ),
    ];
    for (line, expected_kind) in malformed {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .expect("send malformed line");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        let value = parse(response.trim_end());
        assert!(
            matches!(value.get("ok"), Some(Value::Bool(false))),
            "malformed line accepted: {line}"
        );
        let kind = value
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str())
            .expect("error kind");
        assert_eq!(kind, expected_kind, "line: {line}");
    }
    // Same connection, now a valid request: the server must still serve.
    writer
        .write_all(format!("{}\n", request("recover", 3, 4, "")).as_bytes())
        .and_then(|()| writer.flush())
        .expect("send valid line");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    expect_ok(response.trim_end());
}
