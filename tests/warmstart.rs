//! Warm-start identity, across every optimizer: restoring a persisted
//! trial-cache snapshot must leave trial histories byte-identical to the
//! cold run that produced the snapshot — the cache contract of
//! `tests/determinism.rs` extended across process boundaries.
//!
//! Every snapshot in these tests is round-tripped through the
//! `automodel-store` wire encoding (the `TCHS` section payload) before it
//! is restored, so what gets checked is the *persisted* form — exactly
//! what `dmd build` writes and `dmd load --rerun` restores — not an
//! in-memory clone.

mod common;

use auto_model::hpo::{
    BayesianOptimization, Budget, CacheSnapshot, Executor, FnObjective, GaConfig, GeneticAlgorithm,
    GridSearch, OptOutcome, Optimizer, OptimizerBuilder, RandomSearch, SmacLite, TrialCache,
};
use auto_model::store::artifact::{decode_cache_snapshot, encode_cache_snapshot};
use common::{fitness, space, trial_bytes};
use std::sync::Arc;

/// Round-trip a snapshot through the store wire format; any encoding
/// asymmetry (lost entries, reordered FIFO, perturbed score bits) would
/// break the byte-identity assertions downstream.
fn persist(snapshot: &CacheSnapshot) -> CacheSnapshot {
    let restored =
        decode_cache_snapshot(&encode_cache_snapshot(snapshot)).expect("own encoding decodes");
    assert_eq!(&restored, snapshot, "wire round-trip must be lossless");
    restored
}

/// Assert `warm` (run seeded from `snapshot` via the given cache) matches
/// the cold history and actually consumed restored entries.
fn assert_warm_identical(
    label: &str,
    cold: &OptOutcome,
    warm: &OptOutcome,
    warm_cache: &TrialCache,
) {
    assert_eq!(
        trial_bytes(cold),
        trial_bytes(warm),
        "{label}: warm-started trial history diverged from cold"
    );
    let stats = warm_cache.stats();
    assert!(
        stats.warm_hits > 0,
        "{label}: warm run never hit a restored entry (restored {})",
        stats.restored
    );
    assert_eq!(
        warm.cache.warm_hits, stats.warm_hits,
        "{label}: outcome stats disagree with the cache's own counters"
    );
}

#[test]
fn ga_warm_start_is_byte_identical_to_cold_at_1_2_and_8_threads() {
    let space = space();
    let config = GaConfig {
        population: 10,
        generations: 100, // bounded by the budget
        ..GaConfig::default()
    };
    let budget = Budget::evals(120);

    let cold_cache = Arc::new(TrialCache::default());
    let cold = GeneticAlgorithm::with_config(97, config.clone())
        .with_cache(Arc::clone(&cold_cache))
        .optimize_batch(&space, &fitness, &budget, &Executor::new(1))
        .expect("trials recorded");
    let snapshot = persist(&cold_cache.snapshot());
    assert!(!snapshot.is_empty(), "cold GA run populated no cache");

    for threads in [1usize, 2, 8] {
        let warm_cache = Arc::new(TrialCache::default());
        let warm = GeneticAlgorithm::with_config(97, config.clone())
            .with_cache(Arc::clone(&warm_cache))
            .with_warm_start(&snapshot)
            .optimize_batch(&space, &fitness, &budget, &Executor::new(threads))
            .expect("trials recorded");
        assert_warm_identical(&format!("GA x{threads}"), &cold, &warm, &warm_cache);
    }
}

#[test]
fn grid_warm_start_is_byte_identical_to_cold_at_1_2_and_8_threads() {
    let space = space();
    let budget = Budget::evals(40);

    let cold_cache = Arc::new(TrialCache::default());
    let cold = GridSearch::new(3)
        .with_cache(Arc::clone(&cold_cache))
        .optimize_batch(&space, &fitness, &budget, &Executor::new(1))
        .expect("trials recorded");
    let snapshot = persist(&cold_cache.snapshot());
    assert!(!snapshot.is_empty(), "cold grid run populated no cache");

    for threads in [1usize, 2, 8] {
        let warm_cache = Arc::new(TrialCache::default());
        let warm = GridSearch::new(3)
            .with_cache(Arc::clone(&warm_cache))
            .with_warm_start(&snapshot)
            .optimize_batch(&space, &fitness, &budget, &Executor::new(threads))
            .expect("trials recorded");
        assert_warm_identical(&format!("grid x{threads}"), &cold, &warm, &warm_cache);
    }
}

#[test]
fn random_warm_start_is_byte_identical_to_cold_at_1_2_and_8_threads() {
    let space = space();
    let budget = Budget::evals(60);

    let cold_cache = Arc::new(TrialCache::default());
    let cold = RandomSearch::new(4242)
        .with_cache(Arc::clone(&cold_cache))
        .optimize_batch(&space, &fitness, &budget, &Executor::new(1))
        .expect("trials recorded");
    let snapshot = persist(&cold_cache.snapshot());
    assert!(!snapshot.is_empty(), "cold random run populated no cache");

    for threads in [1usize, 2, 8] {
        let warm_cache = Arc::new(TrialCache::default());
        let warm = RandomSearch::new(4242)
            .with_cache(Arc::clone(&warm_cache))
            .with_warm_start(&snapshot)
            .optimize_batch(&space, &fitness, &budget, &Executor::new(threads))
            .expect("trials recorded");
        assert_warm_identical(&format!("random x{threads}"), &cold, &warm, &warm_cache);
    }
}

#[test]
fn bo_warm_start_is_byte_identical_to_cold() {
    let space = space();
    let budget = Budget::evals(25);

    let cold_cache = Arc::new(TrialCache::default());
    let mut bo = BayesianOptimization::new(97).with_cache(Arc::clone(&cold_cache));
    let cold = bo
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("trials recorded");
    let snapshot = persist(&cold_cache.snapshot());
    assert!(!snapshot.is_empty(), "cold BO run populated no cache");

    let warm_cache = Arc::new(TrialCache::default());
    let mut warm_bo = BayesianOptimization::new(97)
        .with_cache(Arc::clone(&warm_cache))
        .with_warm_start(&snapshot);
    let warm = warm_bo
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("trials recorded");
    assert_warm_identical("BO", &cold, &warm, &warm_cache);
}

#[test]
fn smac_warm_start_is_byte_identical_to_cold() {
    let space = space();
    let budget = Budget::evals(30);

    let cold_cache = Arc::new(TrialCache::default());
    let mut smac = SmacLite::new(4242).with_cache(Arc::clone(&cold_cache));
    let cold = smac
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("trials recorded");
    let snapshot = persist(&cold_cache.snapshot());
    assert!(!snapshot.is_empty(), "cold SMAC run populated no cache");

    let warm_cache = Arc::new(TrialCache::default());
    let mut warm_smac = SmacLite::new(4242)
        .with_cache(Arc::clone(&warm_cache))
        .with_warm_start(&snapshot);
    let warm = warm_smac
        .optimize(&space, &mut FnObjective(fitness), &budget)
        .expect("trials recorded");
    assert_warm_identical("SMAC", &cold, &warm, &warm_cache);
}

/// A warm start under a *different* seed is still a legal run (warm hits
/// just replay whatever overlaps); it must match that seed's own cold
/// history, not the snapshot producer's.
#[test]
fn warm_start_under_a_different_seed_matches_that_seeds_cold_history() {
    let space = space();
    let config = GaConfig {
        population: 10,
        generations: 100,
        ..GaConfig::default()
    };
    let budget = Budget::evals(120);

    let producer_cache = Arc::new(TrialCache::default());
    GeneticAlgorithm::with_config(97, config.clone())
        .with_cache(Arc::clone(&producer_cache))
        .optimize_batch(&space, &fitness, &budget, &Executor::new(1))
        .expect("trials recorded");
    let snapshot = persist(&producer_cache.snapshot());

    let cold_98 = GeneticAlgorithm::with_config(98, config.clone())
        .with_cache(Arc::new(TrialCache::default()))
        .optimize_batch(&space, &fitness, &budget, &Executor::new(1))
        .expect("trials recorded");

    let warm_cache = Arc::new(TrialCache::default());
    let warm_98 = GeneticAlgorithm::with_config(98, config)
        .with_cache(Arc::clone(&warm_cache))
        .with_warm_start(&snapshot)
        .optimize_batch(&space, &fitness, &budget, &Executor::new(1))
        .expect("trials recorded");
    assert_eq!(
        trial_bytes(&cold_98),
        trial_bytes(&warm_98),
        "seed-98 history must not be perturbed by seed-97's snapshot"
    );
}
