//! Promotion-oracle conformance for the multi-fidelity schedulers.
//!
//! Successive halving and Hyperband narrate their elimination schedule
//! through `RungStart`/`Promote`/`Eliminate` trace events. This suite
//! replays those traces and re-derives every decision independently:
//!
//! * each rung's promotion set must equal the top `⌊n/η⌋` (min 1) of the
//!   rung's *recorded* `trial_end` scores, compared by canonical float
//!   bits with lower-trial-index tie-breaks — in exact rank order;
//! * rung budgets must follow the `R/η` geometry exactly — candidate
//!   counts divide by `η` rung over rung, and fidelity fractions climb
//!   `r·η/r_max` to full;
//! * an eliminated configuration must never reappear at any higher
//!   fidelity of the same bracket, and the promoted set must be exactly
//!   the next rung's candidate set;
//! * a budget-interrupted rung must be the bracket's last and must emit
//!   no promotion events at all.
//!
//! On top of the oracle, the determinism matrix: trial histories *and*
//! trace bytes byte-identical at 1/2/8 threads with hostile faults and
//! the cache on; trace-on == trace-off; cache-on == cache-off; and
//! golden SHA/Hyperband histories pinned for seeds 97 and 4242
//! (regenerate deliberately with `AUTOMODEL_REGOLDEN=1`).
//!
//! The shared harness (space, fitness, hostile policy, serialization)
//! lives in `tests/common/mod.rs`.

mod common;

use auto_model::hpo::{
    canonical_f64_bits, Budget, Config, Executor, Fidelity, Hyperband, OptOutcome,
    OptimizerBuilder, SuccessiveHalving, TrialCache, TrialPolicy,
};
use auto_model::trace::{decode, TraceEvent, TraceRecord, Tracer};
use common::{
    assert_matches_golden, fitness, hostile_policy, quiet_injected_panics, space, trial_bytes,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Fidelity-aware fitness over the shared [`space`]: the full-fidelity
/// score scaled by the row fraction, so cheap rungs measure a correlated
/// proxy and every (config, fidelity) pair scores deterministically.
fn mf_fitness(c: &Config, f: &Fidelity) -> f64 {
    fitness(c) * (0.5 + 0.5 * f.num() as f64 / f.den() as f64)
}

fn canon(score: f64) -> f64 {
    f64::from_bits(canonical_f64_bits(score))
}

/// Run one multi-fidelity optimizer; returns the outcome plus (when
/// `traced`) the decoded trace and its raw bytes.
fn mf_run(
    kind: &str,
    seed: u64,
    policy: TrialPolicy,
    budget: &Budget,
    threads: Option<usize>,
    cache: Arc<TrialCache>,
    traced: bool,
) -> (OptOutcome, Vec<TraceRecord>, String) {
    quiet_injected_panics();
    let space = space();
    let (tracer, handle) = Tracer::in_memory();
    let out = {
        match kind {
            "sha" => {
                let mut sha = SuccessiveHalving::new(seed)
                    .with_policy(policy)
                    .with_cache(cache);
                if traced {
                    sha = sha.with_tracer(Arc::new(tracer));
                }
                match threads {
                    Some(n) => {
                        sha.optimize_fidelity_batch(&space, &mf_fitness, budget, &Executor::new(n))
                    }
                    None => {
                        let mut obj = |c: &Config, f: &Fidelity| mf_fitness(c, f);
                        sha.optimize_fidelity(&space, &mut obj, budget)
                    }
                }
            }
            "hyperband" => {
                let mut hb = Hyperband::new(seed).with_policy(policy).with_cache(cache);
                if traced {
                    hb = hb.with_tracer(Arc::new(tracer));
                }
                match threads {
                    Some(n) => {
                        hb.optimize_fidelity_batch(&space, &mf_fitness, budget, &Executor::new(n))
                    }
                    None => {
                        let mut obj = |c: &Config, f: &Fidelity| mf_fitness(c, f);
                        hb.optimize_fidelity(&space, &mut obj, budget)
                    }
                }
            }
            other => panic!("unknown optimizer kind {other}"),
        }
    }
    .expect("run yields an outcome");
    let raw = handle.contents();
    let records = if traced {
        decode(&raw).expect("captured trace decodes")
    } else {
        Vec::new()
    };
    (out, records, raw)
}

/// One rung as narrated by the trace.
#[derive(Debug)]
struct RungRecord {
    bracket: u64,
    rung: u64,
    candidates: u64,
    num: u64,
    den: u64,
    /// Trial indices evaluated in this rung, with their recorded scores,
    /// in emission (= trial-index) order.
    trials: Vec<(u64, f64)>,
    /// Promotion events at this rung's boundary, in emission order.
    promoted: Vec<u64>,
    eliminated: Vec<u64>,
}

/// Replay a trace into its rung schedule. Trial and promotion events are
/// attributed to the most recent `rung_start`; the events' own rung
/// numbers are cross-checked against it.
fn parse_rungs(records: &[TraceRecord]) -> Vec<RungRecord> {
    let mut rungs: Vec<RungRecord> = Vec::new();
    for r in records {
        match &r.event {
            TraceEvent::RungStart {
                bracket,
                rung,
                candidates,
                num,
                den,
            } => rungs.push(RungRecord {
                bracket: *bracket,
                rung: *rung,
                candidates: *candidates,
                num: *num,
                den: *den,
                trials: Vec::new(),
                promoted: Vec::new(),
                eliminated: Vec::new(),
            }),
            TraceEvent::TrialEnd { trial, score, .. } => {
                let current = rungs.last_mut().expect("trial_end before any rung_start");
                current.trials.push((*trial, *score));
            }
            TraceEvent::Promote { trial, rung } => {
                let current = rungs.last_mut().expect("promote before any rung_start");
                assert_eq!(*rung, current.rung, "promote names a foreign rung");
                current.promoted.push(*trial);
            }
            TraceEvent::Eliminate { trial, rung } => {
                let current = rungs.last_mut().expect("eliminate before any rung_start");
                assert_eq!(*rung, current.rung, "eliminate names a foreign rung");
                current.eliminated.push(*trial);
            }
            _ => {}
        }
    }
    rungs
}

/// The independent re-derivation: given the rung's recorded scores, the
/// promotion set is the top `⌊n/η⌋` (min 1) by canonical score bits,
/// lower trial index first on ties — returned in rank order.
fn derive_promotions(trials: &[(u64, f64)], eta: u64) -> (Vec<u64>, Vec<u64>) {
    let mut ranked: Vec<(u64, f64)> = trials.to_vec();
    ranked.sort_by(|a, b| {
        canon(a.1)
            .total_cmp(&canon(b.1))
            .reverse()
            .then(a.0.cmp(&b.0))
    });
    let keep = (trials.len() / eta as usize).max(1);
    let promoted = ranked[..keep].iter().map(|t| t.0).collect();
    let eliminated = ranked[keep..].iter().map(|t| t.0).collect();
    (promoted, eliminated)
}

/// Check the full oracle over one run's trace: promotion sets re-derive
/// from recorded scores, rung budgets follow the `R/η` geometry, and
/// eliminated configurations stay eliminated. `eta`/`r_max` are the
/// geometry the run was configured with.
fn assert_promotion_oracle(out: &OptOutcome, records: &[TraceRecord], eta: u64, r_max: u64) {
    let rungs = parse_rungs(records);
    assert!(!rungs.is_empty(), "no rung_start events in the trace");
    let config_of = |trial: u64| -> String {
        serde_json::to_string(&out.trials[trial as usize].config).expect("config serializes")
    };
    let gcd = |mut a: u64, mut b: u64| {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    };
    let last = rungs.len() - 1;
    for (i, rung) in rungs.iter().enumerate() {
        let first_of_bracket = rung.rung == 0;
        if !first_of_bracket {
            // Geometry: candidates divide by η rung over rung (min 1),
            // and the fidelity fraction multiplies by η.
            let prev = &rungs[i - 1];
            assert_eq!(
                prev.bracket, rung.bracket,
                "rung {i}: bracket skipped a rung"
            );
            assert_eq!(
                rung.rung,
                prev.rung + 1,
                "rung {i}: rung numbers must be dense"
            );
            assert_eq!(
                rung.candidates,
                (prev.candidates / eta).max(1),
                "rung {i}: candidate count violates the η-geometry"
            );
            // prev fraction · η == this fraction (compare cross-multiplied).
            assert_eq!(
                prev.num * eta * rung.den,
                rung.num * prev.den,
                "rung {i}: fidelity did not climb by η"
            );
        }
        // Every fraction is r/r_max for an integer resource r.
        assert_eq!(
            rung.num * r_max % rung.den,
            0,
            "rung {i}: fidelity {}/{} is not a resource level over r_max={r_max}",
            rung.num,
            rung.den
        );
        assert_eq!(gcd(rung.num, rung.den), 1, "rung {i}: fraction not reduced");

        let complete = rung.trials.len() as u64 == rung.candidates;
        if !complete {
            // Budget-interrupted rung: strictly fewer trials than
            // candidates, must be the very last rung, and must not have
            // promoted or eliminated anyone.
            assert!(
                (rung.trials.len() as u64) < rung.candidates,
                "rung {i}: more trials than candidates"
            );
            assert_eq!(i, last, "rung {i}: an incomplete rung must end the run");
            assert!(
                rung.promoted.is_empty() && rung.eliminated.is_empty(),
                "rung {i}: an incomplete rung must not eliminate anyone"
            );
            continue;
        }
        let final_rung = rung.num == rung.den || i == last || rungs[i + 1].rung == 0; // next bracket starts ⇒ this one ended
        if final_rung {
            assert!(
                rung.promoted.is_empty() && rung.eliminated.is_empty(),
                "rung {i}: a bracket's final rung has nothing to promote into"
            );
            continue;
        }
        // The oracle proper: re-derive the promotion decision from the
        // recorded scores alone and demand exact, ordered agreement.
        let (promoted, eliminated) = derive_promotions(&rung.trials, eta);
        assert_eq!(
            rung.promoted, promoted,
            "rung {i}: promotion events disagree with the score-derived ranking"
        );
        assert_eq!(
            rung.eliminated, eliminated,
            "rung {i}: elimination events disagree with the score-derived ranking"
        );
        // Promoted configs are exactly the next rung's candidates…
        let next = &rungs[i + 1];
        let promoted_configs: BTreeSet<String> =
            rung.promoted.iter().map(|&t| config_of(t)).collect();
        let next_configs: BTreeSet<String> =
            next.trials.iter().map(|&(t, _)| config_of(t)).collect();
        if next.trials.len() as u64 == next.candidates {
            assert_eq!(
                promoted_configs, next_configs,
                "rung {i}: the next rung's candidates are not the promoted set"
            );
        } else {
            assert!(
                next_configs.is_subset(&promoted_configs),
                "rung {i}: the next (partial) rung evaluated a non-promoted config"
            );
        }
        // …and eliminated configs never reappear at any higher fidelity
        // of the same bracket.
        let eliminated_configs: BTreeSet<String> =
            rung.eliminated.iter().map(|&t| config_of(t)).collect();
        for later in &rungs[i + 1..] {
            if later.bracket != rung.bracket {
                break;
            }
            for &(t, _) in &later.trials {
                assert!(
                    !eliminated_configs.contains(&config_of(t)),
                    "rung {i}: eliminated config resurfaced in bracket {} rung {}",
                    later.bracket,
                    later.rung
                );
            }
        }
    }
    // Every recorded trial belongs to exactly one rung.
    let rung_trials: usize = rungs.iter().map(|r| r.trials.len()).sum();
    assert_eq!(
        rung_trials,
        out.trials.len(),
        "trace rungs and outcome history disagree on trial count"
    );
}

#[test]
fn sha_promotions_re_derive_from_recorded_scores() {
    let (out, records, _) = mf_run(
        "sha",
        97,
        TrialPolicy::default(),
        &Budget::evals(40),
        Some(2),
        Arc::new(TrialCache::default()),
        true,
    );
    assert_eq!(out.trials.len(), 40, "one full bracket is 27+9+3+1 trials");
    assert_promotion_oracle(&out, &records, 3, 27);
}

#[test]
fn sha_oracle_holds_under_hostile_faults() {
    // ~10% injected panics + ~10% NaNs with no retries: failed trials
    // sink to the penalty score and the promotion ranking must still
    // re-derive exactly.
    let (out, records, _) = mf_run(
        "sha",
        4242,
        hostile_policy(),
        &Budget::evals(40),
        Some(8),
        Arc::new(TrialCache::default()),
        true,
    );
    assert_promotion_oracle(&out, &records, 3, 27);
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Fault { .. })),
        "hostile policy injected no faults — the oracle was not stressed"
    );
}

#[test]
fn hyperband_oracle_holds_across_all_brackets() {
    let (out, records, _) = mf_run(
        "hyperband",
        97,
        TrialPolicy::default(),
        &Budget::evals(69),
        Some(2),
        Arc::new(TrialCache::default()),
        true,
    );
    assert_eq!(out.trials.len(), 69, "the full bracket grid is 40+17+8+4");
    let brackets: BTreeSet<u64> = parse_rungs(&records).iter().map(|r| r.bracket).collect();
    assert_eq!(
        brackets,
        (0..4).collect(),
        "η=3, R=27 Hyperband runs four brackets"
    );
    assert_promotion_oracle(&out, &records, 3, 27);
}

#[test]
fn budget_tripped_rung_eliminates_no_one() {
    // 30 evals: rung 0 (27 trials) completes and promotes; rung 1 stops
    // after 3 of 9 — the oracle demands that partial rung stays silent.
    let (out, records, _) = mf_run(
        "sha",
        7,
        TrialPolicy::default(),
        &Budget::evals(30),
        Some(4),
        Arc::new(TrialCache::default()),
        true,
    );
    assert_eq!(out.trials.len(), 30);
    assert_promotion_oracle(&out, &records, 3, 27);
    let rungs = parse_rungs(&records);
    let tail = rungs.last().expect("two rungs ran");
    assert!(tail.trials.len() < tail.candidates as usize);
    assert!(tail.promoted.is_empty() && tail.eliminated.is_empty());
}

#[test]
fn histories_and_traces_are_identical_at_1_2_and_8_threads_under_faults() {
    for kind in ["sha", "hyperband"] {
        let budget = Budget::evals(if kind == "sha" { 40 } else { 69 });
        let run = |threads: usize| {
            mf_run(
                kind,
                97,
                hostile_policy(),
                &budget,
                Some(threads),
                Arc::new(TrialCache::default()),
                true,
            )
        };
        let (out_1, _, trace_1) = run(1);
        let bytes_1 = trial_bytes(&out_1);
        for threads in [2usize, 8] {
            let (out_n, _, trace_n) = run(threads);
            assert_eq!(
                bytes_1,
                trial_bytes(&out_n),
                "{kind}: {threads}-thread trial history diverged"
            );
            assert_eq!(
                trace_1, trace_n,
                "{kind}: {threads}-thread trace bytes diverged"
            );
        }
        // The serial entry point walks the same chunks: same bytes again.
        let (serial, _, serial_trace) = mf_run(
            kind,
            97,
            hostile_policy(),
            &budget,
            None,
            Arc::new(TrialCache::default()),
            true,
        );
        assert_eq!(
            bytes_1,
            trial_bytes(&serial),
            "{kind}: serial trial history diverged from parallel"
        );
        assert_eq!(
            trace_1, serial_trace,
            "{kind}: serial trace bytes diverged from parallel"
        );
    }
}

#[test]
fn tracing_and_caching_are_pure_observers() {
    for kind in ["sha", "hyperband"] {
        let budget = Budget::evals(if kind == "sha" { 40 } else { 69 });
        let run = |cache: Arc<TrialCache>, traced: bool| {
            let (out, _, _) = mf_run(
                kind,
                4242,
                TrialPolicy::default(),
                &budget,
                Some(2),
                cache,
                traced,
            );
            trial_bytes(&out)
        };
        let baseline = run(Arc::new(TrialCache::disabled()), false);
        assert_eq!(
            baseline,
            run(Arc::new(TrialCache::disabled()), true),
            "{kind}: tracing changed the trial history"
        );
        assert_eq!(
            baseline,
            run(Arc::new(TrialCache::default()), false),
            "{kind}: caching changed the trial history"
        );
        assert_eq!(
            baseline,
            run(Arc::new(TrialCache::default()), true),
            "{kind}: tracing+caching changed the trial history"
        );
    }
}

/// Golden serialization of a run: the incumbent (config + exact score
/// bits) followed by the full trial history.
fn golden_bytes(out: &OptOutcome) -> String {
    format!(
        "best|{}#{:016x}\n{}",
        serde_json::to_string(&out.best_config).expect("config serializes"),
        out.best_score.to_bits(),
        trial_bytes(out)
    )
}

/// Every (scheduler, seed) run must be byte-identical with the cache on
/// and off and match the history checked into `tests/golden/`.
/// Regenerate deliberately with `AUTOMODEL_REGOLDEN=1`.
#[test]
fn golden_sha_hyperband_histories_match_for_two_seeds() {
    for kind in ["sha", "hyperband"] {
        let budget = Budget::evals(if kind == "sha" { 40 } else { 69 });
        for seed in [97u64, 4242] {
            let run = |cache: Arc<TrialCache>| {
                let (out, _, _) = mf_run(
                    kind,
                    seed,
                    TrialPolicy::default(),
                    &budget,
                    Some(2),
                    cache,
                    false,
                );
                golden_bytes(&out)
            };
            let off = run(Arc::new(TrialCache::disabled()));
            let on = run(Arc::new(TrialCache::default()));
            assert_eq!(
                off, on,
                "{kind} seed {seed}: cache-on history diverged from cache-off"
            );
            assert_matches_golden(&format!("{kind}_seed{seed}.txt"), &off);
        }
    }
    assert!(
        !common::regolden(),
        "golden files regenerated; unset AUTOMODEL_REGOLDEN and re-run"
    );
}
