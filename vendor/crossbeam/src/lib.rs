//! Vendored, std-only shim for `crossbeam::scope`, the only crossbeam API
//! this workspace uses. Implemented over `std::thread::scope` (stable since
//! Rust 1.63), preserving crossbeam's call shape: the spawned closure
//! receives the scope handle again (`scope.spawn(|_| …)`), and `scope`
//! returns `Err` if any worker panicked instead of propagating the panic.

use std::any::Any;

/// Scope handle passed to [`scope`]'s closure and to each spawned closure.
/// A lightweight `Copy` wrapper over `std::thread::Scope`.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives the scope handle, like
    /// crossbeam's API shape (`scope.spawn(|_| …)`).
    pub fn spawn<F, T>(self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = self;
        self.inner.spawn(move || f(handle))
    }
}

/// Run `f` with a thread scope; all spawned workers are joined before this
/// returns. Returns `Err` with the panic payload if a worker panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                counter.fetch_add(1, Ordering::SeqCst);
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
