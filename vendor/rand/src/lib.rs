//! Vendored, std-only shim for the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched; this shim keeps the public call sites
//! (`StdRng::seed_from_u64`, `Rng::gen_range`, `SliceRandom::shuffle`, …)
//! source-compatible.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every draw is a pure
//! function of the seed, which is the property the workspace's
//! determinism tests and the `xtask lint` L2 rule actually rely on.
//!
//! Deliberately ABSENT: `thread_rng`, `rand::random`, `from_entropy` —
//! every generator must be constructed from an explicit seed. This makes
//! the L2 determinism lint enforceable at the API level, not just by
//! convention.

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Mirrors `rand::SeedableRng`: `from_seed` is
/// required, `seed_from_u64` expands a `u64` through SplitMix64.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = SplitMix64 { state };
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = sm.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used to expand `u64` seeds into full generator state.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution in
/// upstream rand).
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

// Widening-multiply bounded draw: `floor(x * span / 2^64)` is uniform
// enough for simulation work and, crucially, a pure function of the seed.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi - lo) as u64;
                lo + bounded_u64(rng, span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(bounded_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = <$t as SampleStandard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the open bound.
                if v < hi { v } else { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument for `Rng::gen_range` (upstream `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level draws; blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as SampleStandard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x2545_F491_4F6C_DD1D,
                    0x27BB_2EE6_87B0_B0FD,
                    0x1656_67B1_E3C8_C065,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (upstream `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low, matching upstream's loop shape.
            for i in (1..self.len()).rev() {
                let j = usize::sample_bounded(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_bounded(rng, self.len())])
            }
        }
    }

    trait SampleBounded {
        fn sample_bounded<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize;
    }

    impl SampleBounded for usize {
        fn sample_bounded<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
            ((u128::from(rng.next_u64()) * bound as u128) >> 64) as usize
        }
    }
}

pub use rngs::StdRng as _StdRngForPrelude;

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let n: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&n));
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }
}
