//! Vendored, std-only JSON front-end for the serde shim: compact and pretty
//! writers, a recursive-descent parser, and a `json!` macro covering the
//! object/array/literal forms this workspace uses.
//!
//! Output is deterministic: struct fields serialize in declaration order,
//! `BTreeMap`s in key order, and floats through Rust's shortest-round-trip
//! formatter — equal inputs always produce identical bytes.

use std::fmt;

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    Ok(T::from_value(v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            '[',
            ']',
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            '{',
            '}',
            |out, (k, v), indent, depth| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)] // one generic writer backs arrays and objects
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips; it
        // always includes a `.` or exponent, so the value re-parses as a
        // float (matching serde_json's ryu behaviour closely enough).
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no non-finite literals; serde_json writes null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: only the BMP subset this
                            // workspace emits is supported.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported surrogate escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&nb) = self.bytes.get(end) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a JSON-shaped literal. Covers the forms used in
/// this workspace: objects with string-literal keys, arrays, `null`, and
/// arbitrary serializable expressions as values. (Nested object literals
/// inside values should be written as explicit inner `json!` calls.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        let x: f64 = from_str("1.0").unwrap();
        assert_eq!(x, 1.0);
        let n: i64 = from_str("-3").unwrap();
        assert_eq!(n, -3);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        let back: Vec<Vec<u64>> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("b".to_string(), 2.0f64);
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1.0,\"b\":2.0}");
    }

    #[test]
    fn options_and_tuples() {
        let v: Vec<Option<u32>> = vec![Some(1), None];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null]");
        let back: Vec<Option<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let t = vec![("a".to_string(), 1.5f64)];
        let s = to_string(&t).unwrap();
        assert_eq!(s, "[[\"a\",1.5]]");
        let back: Vec<(String, f64)> = from_str(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn pretty_printing_is_stable() {
        let empty: Vec<u32> = Vec::new();
        let v = json!({ "name": "x", "vals": [1u32, 2u32], "empty": empty });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn nonfinite_floats_write_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str("\"a\\u0041\\n\\\"é\"").unwrap();
        assert_eq!(s, "aA\n\"é");
    }
}
