//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde
//! shim. Parses the item declaration directly from the token stream (no
//! `syn`/`quote` — the build environment is offline) and emits impls of the
//! shim's value-tree traits.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields
//! - tuple structs (newtype serializes transparently, wider ones as arrays)
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation)
//!
//! Unsupported (emits a compile error): generics, unions, `#[serde(...)]`
//! attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with `n` fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, variant shape).
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => return compile_error(&msg),
    };
    let body = match (&shape, mode) {
        (Shape::Struct(fields), Mode::Serialize) => ser_struct(&name, fields),
        (Shape::Struct(fields), Mode::Deserialize) => de_struct(&name, fields),
        (Shape::Tuple(n), Mode::Serialize) => ser_tuple(&name, *n),
        (Shape::Tuple(n), Mode::Deserialize) => de_tuple(&name, *n),
        (Shape::Unit, Mode::Serialize) => ser_unit(&name),
        (Shape::Unit, Mode::Deserialize) => de_unit(&name),
        (Shape::Enum(variants), Mode::Serialize) => ser_enum(&name, variants),
        (Shape::Enum(variants), Mode::Deserialize) => de_enum(&name, variants),
    };
    body.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde shim derive produced invalid code: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("literal")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility / auxiliary keywords until `struct` or `enum`.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("serde shim derive: expected `struct` or `enum`".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                match word.as_str() {
                    "struct" | "enum" => {
                        i += 1;
                        break word;
                    }
                    "union" => return Err("serde shim derive: unions are unsupported".into()),
                    // `pub`, `pub(crate)` (the group is a separate tree), etc.
                    _ => i += 1,
                }
            }
            Some(_) => i += 1,
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected type name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is unsupported"
            ));
        }
    }

    if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok((name, Shape::Enum(variants)))
            }
            _ => Err("serde shim derive: expected enum body".into()),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok((name, Shape::Struct(fields)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                Ok((name, Shape::Tuple(n)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::Unit)),
            None => Ok((name, Shape::Unit)),
            _ => Err("serde shim derive: unrecognized struct body".into()),
        }
    }
}

/// Field names of a named-field struct body (attributes, visibility, and
/// types skipped; commas inside `<...>` do not split fields).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes.
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            i += 2;
        }
        // Skip visibility.
        if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens[i..], [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            return Err("serde shim derive: expected field name".into());
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde shim derive: expected `:` after field name".into()),
        }
        // Skip the type: advance to the comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                n += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        n -= 1; // trailing comma
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            return Err("serde shim derive: expected variant name".into());
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then reparsed)
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";

fn ser_header(name: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {VALUE} {{\n"
    )
}

fn de_header(name: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &{VALUE}) -> ::std::result::Result<Self, ::serde::de::Error> {{\n"
    )
}

fn ser_struct(name: &str, fields: &[String]) -> String {
    let mut out = ser_header(name);
    out.push_str(&format!("{VALUE}::Object(::std::vec![\n"));
    for f in fields {
        out.push_str(&format!(
            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),\n"
        ));
    }
    out.push_str("])\n}\n}\n");
    out
}

fn de_struct(name: &str, fields: &[String]) -> String {
    let mut out = de_header(name);
    out.push_str(&format!(
        "let __obj = ::serde::de::as_object(__v, {name:?})?;\n"
    ));
    out.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
    for f in fields {
        out.push_str(&format!(
            "{f}: ::serde::de::field(__obj, {f:?}, {name:?})?,\n"
        ));
    }
    out.push_str("})\n}\n}\n");
    out
}

fn ser_tuple(name: &str, n: usize) -> String {
    let mut out = ser_header(name);
    if n == 1 {
        out.push_str("::serde::Serialize::to_value(&self.0)\n");
    } else {
        out.push_str(&format!("{VALUE}::Array(::std::vec![\n"));
        for i in 0..n {
            out.push_str(&format!("::serde::Serialize::to_value(&self.{i}),\n"));
        }
        out.push_str("])\n");
    }
    out.push_str("}\n}\n");
    out
}

fn de_tuple(name: &str, n: usize) -> String {
    let mut out = de_header(name);
    if n == 1 {
        out.push_str(&format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
        ));
    } else {
        out.push_str(&format!(
            "let __arr = ::serde::de::as_array_of_len(__v, {n}, {name:?})?;\n"
        ));
        out.push_str(&format!("::std::result::Result::Ok({name}(\n"));
        for i in 0..n {
            out.push_str(&format!(
                "::serde::Deserialize::from_value(&__arr[{i}])?,\n"
            ));
        }
        out.push_str("))\n");
    }
    out.push_str("}\n}\n");
    out
}

fn ser_unit(name: &str) -> String {
    let mut out = ser_header(name);
    out.push_str(&format!("{VALUE}::Null\n}}\n}}\n"));
    out
}

fn de_unit(name: &str) -> String {
    let mut out = de_header(name);
    out.push_str(&format!(
        "let _ = __v;\n::std::result::Result::Ok({name})\n}}\n}}\n"
    ));
    out
}

fn ser_enum(name: &str, variants: &[(String, VariantShape)]) -> String {
    let mut out = ser_header(name);
    out.push_str("match self {\n");
    for (v, shape) in variants {
        match shape {
            VariantShape::Unit => {
                out.push_str(&format!(
                    "{name}::{v} => {VALUE}::String(::std::string::String::from({v:?})),\n"
                ));
            }
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("{VALUE}::Array(::std::vec![{}])", items.join(", "))
                };
                out.push_str(&format!(
                    "{name}::{v}({}) => {VALUE}::Object(::std::vec![(::std::string::String::from({v:?}), {inner})]),\n",
                    binds.join(", ")
                ));
            }
            VariantShape::Struct(fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "{name}::{v} {{ {} }} => {VALUE}::Object(::std::vec![(::std::string::String::from({v:?}), {VALUE}::Object(::std::vec![{}]))]),\n",
                    fields.join(", "),
                    pairs.join(", ")
                ));
            }
        }
    }
    out.push_str("}\n}\n}\n");
    out
}

fn de_enum(name: &str, variants: &[(String, VariantShape)]) -> String {
    let unit: Vec<&String> = variants
        .iter()
        .filter(|(_, s)| matches!(s, VariantShape::Unit))
        .map(|(v, _)| v)
        .collect();
    let data: Vec<&(String, VariantShape)> = variants
        .iter()
        .filter(|(_, s)| !matches!(s, VariantShape::Unit))
        .collect();

    let mut out = de_header(name);
    out.push_str("match __v {\n");

    out.push_str(&format!("{VALUE}::String(__s) => match __s.as_str() {{\n"));
    for v in &unit {
        out.push_str(&format!(
            "{v:?} => ::std::result::Result::Ok({name}::{v}),\n"
        ));
    }
    out.push_str(&format!(
        "__other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(__other, {name:?})),\n}},\n"
    ));

    if !data.is_empty() {
        out.push_str(&format!(
            "{VALUE}::Object(__pairs) if __pairs.len() == 1 => {{\n\
             let (__k, __inner) = &__pairs[0];\nmatch __k.as_str() {{\n"
        ));
        for (v, shape) in &data {
            match shape {
                VariantShape::Unit => unreachable!("filtered above"),
                VariantShape::Tuple(n) => {
                    if *n == 1 {
                        out.push_str(&format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    } else {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "{v:?} => {{ let __arr = ::serde::de::as_array_of_len(__inner, {n}, {name:?})?;\n\
                             ::std::result::Result::Ok({name}::{v}({})) }},\n",
                            elems.join(", ")
                        ));
                    }
                }
                VariantShape::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::de::field(__obj, {f:?}, {name:?})?"))
                        .collect();
                    out.push_str(&format!(
                        "{v:?} => {{ let __obj = ::serde::de::as_object(__inner, {name:?})?;\n\
                         ::std::result::Result::Ok({name}::{v} {{ {} }}) }},\n",
                        inits.join(", ")
                    ));
                }
            }
        }
        out.push_str(&format!(
            "__other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(__other, {name:?})),\n}}\n}},\n"
        ));
    }

    out.push_str(&format!(
        "__other => ::std::result::Result::Err(::serde::de::Error::invalid_type({name:?}, __other)),\n}}\n}}\n}}\n"
    ));
    out
}
