//! Vendored, std-only micro-benchmark harness exposing the slice of the
//! criterion 0.5 API this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `sample_size`, `iter`, plus the
//! `criterion_group!` / `criterion_main!` macros and `black_box`.
//!
//! Statistics are intentionally simple (median of per-sample means); the
//! point is that `cargo bench` compiles, runs, and prints comparable
//! timings without network access, not publication-grade estimation.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle, one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.group, name.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut impl FnMut(&mut Bencher)) {
    // Warm-up pass; also seeds the per-sample iteration count so each
    // sample runs long enough to time meaningfully.
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warm);
    let per_iter = warm
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut per_iter_times: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    per_iter_times.sort_by(f64::total_cmp);
    let median = per_iter_times
        .get(per_iter_times.len() / 2)
        .copied()
        .unwrap_or(0.0);
    println!("{name:<50} median {}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions under one name (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_closure() {
        let mut c = super::Criterion::default();
        c.sample_size(2);
        let mut calls = 0usize;
        c.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 1 + 1);
        });
        assert!(calls >= 2, "warm-up plus samples");
    }
}
