//! Vendored, std-only shim for the `parking_lot` API this workspace uses:
//! `Mutex` (and `RwLock` for completeness) whose guards are acquired without
//! a `Result`, matching parking_lot's no-poisoning semantics. Built on
//! `std::sync`; a poisoned std lock is entered anyway (poison is stripped),
//! which is exactly parking_lot's observable behaviour.

/// Mutual exclusion lock with parking_lot's panic-transparent locking.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-transparent locking.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
