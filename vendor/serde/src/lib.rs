//! Vendored, std-only shim for the subset of `serde` this workspace uses.
//!
//! The real serde drives a visitor-based data model; this shim collapses it
//! to a concrete JSON-like [`value::Value`] tree, which is all the
//! workspace needs (artifact persistence and experiment reports via
//! `serde_json`). `#[derive(Serialize)]` / `#[derive(Deserialize)]` come
//! from the companion `serde_derive` shim and target these traits.
//!
//! Determinism note: map serialization iterates `BTreeMap` (sorted) and
//! sorts `HashMap` keys, so equal data always serializes to identical
//! bytes — a property the workspace's reproducibility tests assert.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    /// A JSON-shaped value tree: the shim's entire data model.
    ///
    /// Objects preserve insertion order (serde_json's default behaviour).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::F64(x) => Some(x),
                Value::I64(x) => Some(x as f64),
                Value::U64(x) => Some(x as f64),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;

        /// Panics if the key is absent or `self` is not an object
        /// (serde_json instead returns `Null`; the stricter behaviour only
        /// shows up in tests, where a loud failure is preferable).
        fn index(&self, key: &str) -> &Value {
            self.get(key)
                .unwrap_or_else(|| panic!("no key `{key}` in value"))
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;

        fn index(&self, i: usize) -> &Value {
            match self {
                Value::Array(items) => &items[i],
                other => panic!("cannot index non-array value {other:?}"),
            }
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }

    impl PartialEq<Value> for &str {
        fn eq(&self, other: &Value) -> bool {
            other.as_str() == Some(*self)
        }
    }

    impl PartialEq<String> for Value {
        fn eq(&self, other: &String) -> bool {
            self.as_str() == Some(other.as_str())
        }
    }
}

use value::Value;

/// Convert `self` into the shim's value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the shim's value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

pub mod de {
    use super::value::Value;
    use super::Deserialize;
    use std::fmt;

    /// Deserialization error: a message plus the offending context.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        pub fn custom(msg: impl Into<String>) -> Error {
            Error { msg: msg.into() }
        }

        pub fn unknown_variant(variant: &str, ty: &str) -> Error {
            Error::custom(format!("unknown variant `{variant}` for `{ty}`"))
        }

        pub fn invalid_type(expected: &str, got: &Value) -> Error {
            let kind = match got {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::I64(_) | Value::U64(_) => "integer",
                Value::F64(_) => "float",
                Value::String(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            };
            Error::custom(format!("invalid type: expected {expected}, found {kind}"))
        }

        pub fn missing_field(field: &str, ty: &str) -> Error {
            Error::custom(format!("missing field `{field}` for `{ty}`"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Derive-support: view a value as an object's pair list.
    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
        match v {
            Value::Object(pairs) => Ok(pairs),
            other => Err(Error::invalid_type(ty, other)),
        }
    }

    /// Derive-support: view a value as an array of exactly `n` elements.
    pub fn as_array_of_len<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], Error> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "invalid length for `{ty}`: expected {n}, found {}",
                items.len()
            ))),
            other => Err(Error::invalid_type(ty, other)),
        }
    }

    /// Derive-support: extract and deserialize a named field.
    pub fn field<T: Deserialize>(
        obj: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        let v = obj
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::missing_field(name, ty))?;
        T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
    }
}

pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::invalid_type("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, de::Error> {
                let n = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| de::Error::custom("integer out of range"))?,
                    ref other => return Err(de::Error::invalid_type("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, de::Error> {
                let n = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) => u64::try_from(x)
                        .map_err(|_| de::Error::custom("integer out of range"))?,
                    ref other => return Err(de::Error::invalid_type("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, de::Error> {
        // Null maps to NaN so artifacts containing non-finite scores (which
        // JSON cannot express) round-trip without erroring.
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(de::Error::invalid_type("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::invalid_type("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($n:literal => $($t:ident . $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), de::Error> {
                let items = de::as_array_of_len(v, $n, "tuple")?;
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    };
}
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::invalid_type("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (HashMap iteration order is not).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::invalid_type("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, de::Error> {
        Ok(v.clone())
    }
}
