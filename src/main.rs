//! `auto-model` — command-line interface to the Auto-Model CASH solver.
//!
//! ```text
//! auto-model algorithms                      list the registry (Table IV)
//! auto-model inspect   --csv data.csv        dataset shape + Table III features
//! auto-model train-dmd --out dmd.json        train a decision model, save it
//! auto-model solve     --csv data.csv        solve the CASH problem for a dataset
//!                      [--artifact dmd.json] [--budget N] [--folds K]
//! ```
//!
//! The CSV format is the typed one of `automodel_data::csv`: header cells
//! are `num:<name>` / `cat:<name>`, the last column `class:<name>`; missing
//! cells are empty strings.

use auto_model::core::DmdArtifact;
use auto_model::data::csv::read_csv;
use auto_model::data::{meta_features, Dataset, FEATURE_NAMES};
use auto_model::hpo::Budget;
use auto_model::ml::Registry;
use auto_model::prelude::*;
use std::io::BufReader;
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load_csv(args: &[String]) -> Result<Dataset, String> {
    let path = arg_value(args, "--csv").ok_or("missing --csv <file>")?;
    let file = std::fs::File::open(&path).map_err(|e| format!("open {path}: {e}"))?;
    let name = std::path::Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string();
    read_csv(&name, BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn demo_dmd(registry: Registry) -> Result<Dmd, String> {
    eprintln!("training a demo decision model (synthetic corpus)...");
    let corpus = CorpusSpec::small().build();
    let input = DmdInput::synthetic_from_corpus(&corpus, 80, 5);
    DmdConfig::fast_with(registry)
        .run(&input)
        .map_err(|e| format!("DMD failed: {e}"))
}

fn cmd_algorithms() -> Result<(), String> {
    let registry = Registry::full();
    println!("{} algorithms registered:", registry.len());
    for spec in registry.iter() {
        let space = spec.param_space();
        println!(
            "  {:<28} {:<28} {} hyperparameter(s)",
            spec.name(),
            spec.family().weka_package(),
            space.len()
        );
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let data = load_csv(args)?;
    println!(
        "{}: {} rows, {} attributes ({} numeric, {} categorical), {} classes, {:.1}% missing",
        data.name(),
        data.n_rows(),
        data.n_attrs(),
        data.numeric_columns().len(),
        data.categorical_columns().len(),
        data.n_classes(),
        data.missing_rate() * 100.0
    );
    println!("\nTable III meta-features:");
    for (name, value) in FEATURE_NAMES.iter().zip(meta_features(&data)) {
        println!("  {name:<36} {value:>12.4}");
    }
    let registry = Registry::full();
    let inapplicable: Vec<&str> = registry
        .iter()
        .filter(|s| s.check_applicable(&data).is_err())
        .map(|s| s.name())
        .collect();
    if !inapplicable.is_empty() {
        println!("\nalgorithms that cannot process this dataset: {inapplicable:?}");
    }
    Ok(())
}

fn cmd_train_dmd(args: &[String]) -> Result<(), String> {
    let out = arg_value(args, "--out").unwrap_or_else(|| "dmd.json".to_string());
    let dmd = demo_dmd(Registry::full())?;
    let json = dmd
        .to_artifact()
        .to_json()
        .map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&out, &json).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "saved {out} ({} bytes): {} CRelations pairs, {}/23 key features",
        json.len(),
        dmd.records.len(),
        dmd.n_key_features()
    );
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let data = load_csv(args)?;
    let budget: usize = arg_value(args, "--budget")
        .map(|v| v.parse().map_err(|e| format!("--budget: {e}")))
        .transpose()?
        .unwrap_or(40);
    let folds: usize = arg_value(args, "--folds")
        .map(|v| v.parse().map_err(|e| format!("--folds: {e}")))
        .transpose()?
        .unwrap_or(5);

    let registry = Registry::full();
    let dmd = match arg_value(args, "--artifact") {
        Some(path) => {
            let json = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
            DmdArtifact::from_json(&json)
                .map_err(|e| format!("parse {path}: {e}"))?
                .into_dmd(registry)
                .map_err(|e| format!("load artifact: {e}"))?
        }
        None => demo_dmd(registry)?,
    };

    let mut udr = UdrConfig::fast();
    udr.tuning_budget = Budget::evals(budget);
    udr.cv_folds = folds;
    let solution = udr.solve(&dmd, &data).map_err(|e| format!("solve: {e}"))?;
    println!("algorithm      : {}", solution.algorithm);
    println!("configuration  : {}", solution.config);
    println!("CV accuracy    : {:.4} ({folds}-fold)", solution.score);
    println!("HPO technique  : {}", solution.technique);
    println!("evaluations    : {}", solution.trials);
    Ok(())
}

fn usage() -> &'static str {
    "usage: auto-model <command> [options]\n\
     commands:\n\
       algorithms                          list the registered classifiers\n\
       inspect   --csv <file>              dataset shape + Table III features\n\
       train-dmd [--out dmd.json]          train & save a decision model\n\
       solve     --csv <file> [--artifact dmd.json] [--budget N] [--folds K]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("algorithms") => cmd_algorithms(),
        Some("inspect") => cmd_inspect(&args),
        Some("train-dmd") => cmd_train_dmd(&args),
        Some("solve") => cmd_solve(&args),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
