//! `auto-model` — command-line interface to the Auto-Model CASH solver.
//!
//! ```text
//! auto-model algorithms                      list the registry (Table IV)
//! auto-model inspect   --csv data.csv        dataset shape + Table III features
//! auto-model train-dmd --out dmd.json        train a decision model, save it (JSON)
//! auto-model dmd build --out dmd.store       derive + persist a binary artifact
//!                      [--history hist.txt]  (weights, mask, architecture,
//!                      [--checkpoint c.ckpt] CRelations, trial-cache snapshot);
//!                      [--resume]            --checkpoint durably snapshots
//!                                            every batch boundary, --resume
//!                                            warm-replays a killed run
//! auto-model dmd load  --artifact dmd.store  verify digests, load, serve — or
//!                      [--rerun]             warm-start a rebuild from the
//!                      [--history hist.txt]  persisted trial history
//! auto-model solve     --csv data.csv        solve the CASH problem for a dataset
//!                      [--artifact dmd.json] [--budget N] [--folds K]
//!                      [--optimizer auto|sha|hyperband]
//! auto-model serve     [--artifact dmd.store] long-running multi-session JSONL
//!                      [--listen host:port]   service; sessions share the loaded
//!                      [--max-budget N]       artifact and a warm trial cache.
//!                      [--trace-dir DIR]      With no --listen, requests are
//!                      [--checkpoint-dir DIR] read line-by-line from stdin
//! ```
//!
//! The CSV format is the typed one of `automodel_data::csv`: header cells
//! are `num:<name>` / `cat:<name>`, the last column `class:<name>`; missing
//! cells are empty strings.

use auto_model::core::{DmdArtifact, InnerOptimizer};
use auto_model::data::csv::read_csv;
use auto_model::data::{meta_features, Dataset, FEATURE_NAMES};
use auto_model::hpo::Budget;
use auto_model::ml::Registry;
use auto_model::parallel::TrialCache;
use auto_model::prelude::*;
use auto_model::store::{
    load_latest, Checkpointer, RecoveryError, StoreArtifact, StoreReader, DEFAULT_KEEP,
};
use std::io::BufReader;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load_csv(args: &[String]) -> Result<Dataset, String> {
    let path = arg_value(args, "--csv").ok_or("missing --csv <file>")?;
    let file = std::fs::File::open(&path).map_err(|e| format!("open {path}: {e}"))?;
    let name = std::path::Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string();
    read_csv(&name, BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn demo_dmd(registry: Registry) -> Result<Dmd, String> {
    eprintln!("training a demo decision model (synthetic corpus)...");
    let corpus = CorpusSpec::small().build();
    let input = DmdInput::synthetic_from_corpus(&corpus, 80, 5);
    DmdConfig::fast_with(registry)
        .run(&input)
        .map_err(|e| format!("DMD failed: {e}"))
}

fn cmd_algorithms() -> Result<(), String> {
    let registry = Registry::full();
    println!("{} algorithms registered:", registry.len());
    for spec in registry.iter() {
        let space = spec.param_space();
        println!(
            "  {:<28} {:<28} {} hyperparameter(s)",
            spec.name(),
            spec.family().weka_package(),
            space.len()
        );
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let data = load_csv(args)?;
    println!(
        "{}: {} rows, {} attributes ({} numeric, {} categorical), {} classes, {:.1}% missing",
        data.name(),
        data.n_rows(),
        data.n_attrs(),
        data.numeric_columns().len(),
        data.categorical_columns().len(),
        data.n_classes(),
        data.missing_rate() * 100.0
    );
    println!("\nTable III meta-features:");
    for (name, value) in FEATURE_NAMES.iter().zip(meta_features(&data)) {
        println!("  {name:<36} {value:>12.4}");
    }
    let registry = Registry::full();
    let inapplicable: Vec<&str> = registry
        .iter()
        .filter(|s| s.check_applicable(&data).is_err())
        .map(|s| s.name())
        .collect();
    if !inapplicable.is_empty() {
        println!("\nalgorithms that cannot process this dataset: {inapplicable:?}");
    }
    Ok(())
}

fn cmd_train_dmd(args: &[String]) -> Result<(), String> {
    let out = arg_value(args, "--out").unwrap_or_else(|| "dmd.json".to_string());
    let dmd = demo_dmd(Registry::full())?;
    let json = dmd
        .to_artifact()
        .to_json()
        .map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&out, &json).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "saved {out} ({} bytes): {} CRelations pairs, {}/23 key features",
        json.len(),
        dmd.records.len(),
        dmd.n_key_features()
    );
    Ok(())
}

/// The demo training setup `dmd build`/`dmd load --rerun` share. Cold and
/// warm runs must be configured identically — same corpus, same seeds,
/// same cache capacity — for the warm-start identity contract (byte-equal
/// trial histories) to be checkable.
fn demo_build_parts(registry: Registry) -> (DmdInput, DmdConfig, Arc<TrialCache>) {
    let corpus = CorpusSpec::small().build();
    let input = DmdInput::synthetic_from_corpus(&corpus, 80, 5);
    let cache = Arc::new(TrialCache::default());
    let config = DmdConfig::fast_with(registry).with_cache(Arc::clone(&cache));
    (input, config, cache)
}

fn write_history(args: &[String], dmd: &Dmd) -> Result<(), String> {
    if let Some(path) = arg_value(args, "--history") {
        std::fs::write(&path, dmd.trial_history()).map_err(|e| format!("write {path}: {e}"))?;
        println!("trial history  : {path} ({} trials)", dmd.meta_trials.len());
    }
    Ok(())
}

/// Parse `--checkpoint <path>` / `--resume` and configure recovery: on
/// `--resume`, restore the newest verifiable checkpoint's cache snapshot
/// into `cache` (cold-starting with a warning when there is none, or
/// none survives verification); with `--checkpoint`, return the durable
/// sink to attach. Never fails the run: recovery degradation is
/// reported, not fatal.
fn recovery_setup(
    args: &[String],
    cache: &Arc<TrialCache>,
    tracer: &Tracer,
) -> Result<Option<Arc<Checkpointer>>, String> {
    let base = arg_value(args, "--checkpoint");
    let resume = args.iter().any(|a| a == "--resume");
    let Some(base) = base else {
        if resume {
            return Err("--resume requires --checkpoint <path>".to_string());
        }
        return Ok(None);
    };
    if resume {
        match load_latest(Path::new(&base), DEFAULT_KEEP) {
            Ok(state) => {
                let restored = cache.restore(&state.cache);
                if tracer.is_enabled() {
                    tracer.emit(TraceEvent::Recovery {
                        seq: state.seq,
                        trials: state.trials,
                        restored: restored as u64,
                    });
                }
                eprintln!(
                    "resuming from checkpoint seq {} ({} of {} trial(s) restored; warm replay)",
                    state.seq,
                    restored,
                    state.cache.len()
                );
            }
            Err(e @ RecoveryError::NoCheckpoint(_)) => {
                eprintln!("{e}; cold-starting");
            }
            Err(e) => {
                eprintln!("checkpoint recovery failed ({e}); cold-starting");
            }
        }
    }
    Ok(Some(Arc::new(Checkpointer::new(&base))))
}

/// Surface degraded durability after a checkpointed run: a latched
/// write failure is a warning (the run itself succeeded), a clean run
/// reports how many checkpoints were written.
fn report_checkpoints(sink: &Option<Arc<Checkpointer>>) {
    if let Some(ck) = sink {
        match ck.last_error() {
            Some(err) => eprintln!("warning: checkpointing degraded: {err}"),
            None => println!(
                "checkpoints    : {} written under {}",
                ck.written(),
                ck.base().display()
            ),
        }
    }
}

fn cmd_dmd_build(args: &[String]) -> Result<(), String> {
    let out = arg_value(args, "--out").unwrap_or_else(|| "dmd.store".to_string());
    eprintln!("training a demo decision model (synthetic corpus)...");
    let (input, mut config, cache) = demo_build_parts(Registry::full());
    let tracer = Arc::new(Tracer::from_env().map_err(|e| e.to_string())?);
    config = config.with_tracer(Arc::clone(&tracer));
    let sink = recovery_setup(args, &cache, &tracer)?;
    if let Some(ck) = &sink {
        config = config.with_checkpoint(Arc::clone(ck) as _);
    }
    let dmd = config.run(&input).map_err(|e| format!("DMD failed: {e}"))?;
    report_checkpoints(&sink);
    if let Some(e) = tracer.io_error() {
        eprintln!("warning: trace sink degraded: {e}");
    }
    let snapshot = cache.snapshot();
    let cached = snapshot.len();
    let artifact = dmd.to_artifact().into_store(snapshot);
    artifact
        .save(Path::new(&out))
        .map_err(|e| format!("save {out}: {e}"))?;
    println!(
        "saved {out}: {} CRelations pairs, {}/23 key features, {cached} cached trial(s)",
        dmd.records.len(),
        dmd.n_key_features()
    );
    write_history(args, &dmd)
}

fn cmd_dmd_load(args: &[String]) -> Result<(), String> {
    let path = arg_value(args, "--artifact").ok_or("missing --artifact <file>")?;
    let reader = StoreReader::open(Path::new(&path)).map_err(|e| format!("open {path}: {e}"))?;
    reader
        .verify_all()
        .map_err(|e| format!("verify {path}: {e}"))?;
    let sections = reader.tags().len() as u64;
    let bytes = reader.payload_bytes();
    let artifact =
        StoreArtifact::from_reader(&reader).map_err(|e| format!("decode {path}: {e}"))?;
    let tracer = Tracer::from_env().map_err(|e| e.to_string())?;
    if tracer.is_enabled() {
        tracer.emit(TraceEvent::ArtifactLoad {
            path: path.clone(),
            sections,
            bytes,
        });
    }
    println!("verified {path}: {sections} section(s), {bytes} payload byte(s)");
    let (dmd_artifact, snapshot) = DmdArtifact::from_store(artifact);
    if args.iter().any(|a| a == "--rerun") {
        // Warm-start a rebuild: seed the trial cache from the persisted
        // snapshot, then re-run the exact cold configuration. The trial
        // history must come out byte-identical (diffable via --history).
        eprintln!(
            "re-deriving with a warm cache ({} restored trial(s))...",
            snapshot.len()
        );
        let (input, config, cache) = demo_build_parts(Registry::full());
        let restored = cache.restore(&snapshot);
        let dmd = config.run(&input).map_err(|e| format!("DMD failed: {e}"))?;
        let stats = cache.stats();
        println!(
            "warm rerun     : {restored} restored, {} warm hit(s) of {} hit(s)",
            stats.warm_hits, stats.hits
        );
        write_history(args, &dmd)
    } else {
        let dmd = dmd_artifact
            .into_dmd(Registry::full())
            .map_err(|e| format!("load artifact: {e}"))?;
        println!(
            "loaded model   : {} algorithm(s), {}/23 key features, architecture {}",
            dmd.registry.len(),
            dmd.n_key_features(),
            dmd.architecture
        );
        println!("cache snapshot : {} persisted trial(s)", snapshot.len());
        Ok(())
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let max_budget: usize = arg_value(args, "--max-budget")
        .map(|v| v.parse().map_err(|e| format!("--max-budget: {e}")))
        .transpose()?
        .unwrap_or(512);
    let config = auto_model::serve::ServerConfig {
        max_budget,
        trace_dir: arg_value(args, "--trace-dir").map(Into::into),
        checkpoint_dir: arg_value(args, "--checkpoint-dir").map(Into::into),
    };
    if let Some(dir) = &config.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    if let Some(dir) = &config.checkpoint_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let server = match arg_value(args, "--artifact") {
        Some(path) => {
            let server = auto_model::serve::Server::from_artifact(
                Path::new(&path),
                Registry::full(),
                config,
            )?;
            eprintln!(
                "loaded {path}: {} warm trial(s) restored into the shared cache",
                server.warm_entries()
            );
            server
        }
        None => {
            let dmd = demo_dmd(Registry::full())?;
            let snapshot = TrialCache::new(1).snapshot();
            auto_model::serve::Server::new(dmd, &snapshot, config)
        }
    };
    let server = Arc::new(server);
    match arg_value(args, "--listen") {
        Some(addr) => auto_model::serve::serve_tcp(server, &addr),
        None => auto_model::serve::serve_stdio(server),
    }
}

fn cmd_dmd(args: &[String]) -> Result<(), String> {
    match args.get(1).map(String::as_str) {
        Some("build") => cmd_dmd_build(args),
        Some("load") => cmd_dmd_load(args),
        _ => Err("usage: auto-model dmd <build|load> [options]".to_string()),
    }
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let data = load_csv(args)?;
    let budget: usize = arg_value(args, "--budget")
        .map(|v| v.parse().map_err(|e| format!("--budget: {e}")))
        .transpose()?
        .unwrap_or(40);
    let folds: usize = arg_value(args, "--folds")
        .map(|v| v.parse().map_err(|e| format!("--folds: {e}")))
        .transpose()?
        .unwrap_or(5);
    let optimizer = match arg_value(args, "--optimizer") {
        Some(name) => InnerOptimizer::parse(&name).ok_or_else(|| {
            format!("--optimizer: unknown optimizer '{name}' (expected auto, sha or hyperband)")
        })?,
        None => InnerOptimizer::Auto,
    };

    let registry = Registry::full();
    let dmd = match arg_value(args, "--artifact") {
        Some(path) => {
            let json = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
            DmdArtifact::from_json(&json)
                .map_err(|e| format!("parse {path}: {e}"))?
                .into_dmd(registry)
                .map_err(|e| format!("load artifact: {e}"))?
        }
        None => demo_dmd(registry)?,
    };

    let mut udr = UdrConfig::fast().with_optimizer(optimizer);
    udr.tuning_budget = Budget::evals(budget);
    udr.cv_folds = folds;
    let tracer = Arc::new(Tracer::from_env().map_err(|e| e.to_string())?);
    udr = udr.with_tracer(Arc::clone(&tracer));
    let cache = Arc::new(TrialCache::default());
    udr = udr.with_cache(Arc::clone(&cache));
    let sink = recovery_setup(args, &cache, &tracer)?;
    if let Some(ck) = &sink {
        udr = udr.with_checkpoint(Arc::clone(ck) as _);
    }
    let solution = udr.solve(&dmd, &data).map_err(|e| format!("solve: {e}"))?;
    report_checkpoints(&sink);
    println!("algorithm      : {}", solution.algorithm);
    println!("configuration  : {}", solution.config);
    println!("CV accuracy    : {:.4} ({folds}-fold)", solution.score);
    println!("HPO technique  : {}", solution.technique);
    println!("evaluations    : {}", solution.trials);
    Ok(())
}

fn usage() -> &'static str {
    "usage: auto-model <command> [options]\n\
     commands:\n\
       algorithms                          list the registered classifiers\n\
       inspect   --csv <file>              dataset shape + Table III features\n\
       train-dmd [--out dmd.json]          train & save a decision model (JSON)\n\
       dmd build [--out dmd.store] [--history h.txt]\n\
                 [--checkpoint c.ckpt] [--resume]\n\
                                           derive + persist a binary artifact,\n\
                                           checkpointing every batch boundary\n\
       dmd load  --artifact dmd.store [--rerun] [--history h.txt]\n\
                                           verify, load & serve — or warm-start\n\
       solve     --csv <file> [--artifact dmd.json] [--budget N] [--folds K]\n\
                 [--optimizer auto|sha|hyperband] [--checkpoint c.ckpt] [--resume]\n\
       serve     [--artifact dmd.store] [--listen host:port]\n\
                 [--max-budget N] [--trace-dir DIR] [--checkpoint-dir DIR]\n\
                                           long-running JSONL session service;\n\
                                           no --listen reads requests on stdin"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Strict env validation up front: a malformed AUTOMODEL_* variable
    // aborts with one clear message instead of silently reconfiguring
    // the run somewhere down the pipeline.
    if let Err(e) = auto_model::parallel::validate_env() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let result = match args.first().map(String::as_str) {
        Some("algorithms") => cmd_algorithms(),
        Some("inspect") => cmd_inspect(&args),
        Some("train-dmd") => cmd_train_dmd(&args),
        Some("dmd") => cmd_dmd(&args),
        Some("solve") => cmd_solve(&args),
        Some("serve") => cmd_serve(&args),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
