//! # auto-model
//!
//! Facade crate for the Auto-Model reproduction (Wang et al., ICDE 2020,
//! "Auto-Model: Utilizing Research Papers and HPO Techniques to Deal with the
//! CASH problem").
//!
//! Auto-Model answers the *Combined Algorithm Selection and Hyperparameter
//! optimization* (CASH) question — "which classifier, with which
//! hyperparameters, for *this* dataset?" — by (1) mining best-algorithm
//! knowledge from a corpus of research-paper experiences, (2) training a
//! neural decision-making model on dataset meta-features, and (3) tuning only
//! the selected algorithm's hyperparameters with GA or Bayesian optimization.
//!
//! ```no_run
//! use auto_model::prelude::*;
//!
//! // Offline: design the decision-making model from a paper corpus
//! // (synthetic datasets attached per corpus instance for this demo).
//! let corpus = CorpusSpec::small().build();
//! let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
//! let dmd = DmdConfig::fast().run(&input).unwrap();
//!
//! // Online: answer a user demand for a concrete dataset.
//! let dataset = SynthSpec::new("demo", 300, 6, 2, 3,
//!     SynthFamily::GaussianBlobs { spread: 1.0 }, 7).generate();
//! let solution = UdrConfig::fast().solve(&dmd, &dataset).unwrap();
//! println!("algorithm = {}, accuracy = {:.3}",
//!          solution.algorithm, solution.score);
//! ```
//!
//! See the individual crates for the substrates:
//! [`automodel_data`], [`automodel_nn`], [`automodel_ml`], [`automodel_hpo`],
//! [`automodel_knowledge`], and the contribution itself in [`automodel_core`].

pub use automodel_core as core;
pub use automodel_data as data;
pub use automodel_hpo as hpo;
pub use automodel_knowledge as knowledge;
pub use automodel_ml as ml;
pub use automodel_nn as nn;
pub use automodel_parallel as parallel;
pub use automodel_serve as serve;
pub use automodel_store as store;
pub use automodel_trace as trace;

/// The most common imports for working with Auto-Model.
pub mod prelude {
    pub use automodel_core::autoweka::AutoWekaConfig;
    pub use automodel_core::dmd::{Dmd, DmdConfig, DmdInput};
    pub use automodel_core::poratio::{po_ratio, EvalContext};
    pub use automodel_core::udr::{Solution, UdrConfig};
    pub use automodel_data::suites::{knowledge_suite, paper_test_suite};
    pub use automodel_data::{meta_features, Dataset, SynthFamily, SynthSpec};
    pub use automodel_hpo::budget::Budget;
    pub use automodel_knowledge::corpus::CorpusSpec;
    pub use automodel_ml::registry::Registry;
    pub use automodel_parallel::Executor;
    pub use automodel_trace::{TraceEvent, TraceRecord, Tracer};
}
